//! Workspace lint pass: text/AST-lite rules the compiler does not enforce.
//!
//! Six rules, each scoped to where it matters:
//!
//! 1. **`missing-forbid-unsafe`** — every crate root (`src/lib.rs` of the
//!    facade, every `crates/*` member and every `shims/*` member) must
//!    carry `#![forbid(unsafe_code)]`; the whole reproduction is safe
//!    Rust by policy.
//! 2. **`hot-path-unwrap` / `hot-path-expect`** — no `.unwrap()` /
//!    `.expect(` in the scheduler and kernel hot paths (`core::dp`,
//!    `core::pattern`, everything under `gpu` and `taskgraph`). Panics
//!    there either poison a worker pool or abort a long routing run;
//!    recoverable paths must return errors. Deliberate invariant panics
//!    are granted case-by-case through the allowlist file.
//! 3. **`dp-alloc`** — the pattern-routing dynamic program, the maze
//!    search and the cost prober's rebuild path all promise a
//!    zero-allocation steady state (`DpScratch` / `MazeScratch` /
//!    `RebuildScratch` are reused across nets and batches); inside every
//!    `fn *_into` of `core::dp`, `maze::router` and `grid::prober` no
//!    allocating call (`Vec::new`, `vec!`, `with_capacity`, `collect`,
//!    `Box::new`, `format!`, …) and no `Mutex` may appear.
//! 4. **`timing-instant`** — no `Instant::now()` outside
//!    `crates/telemetry` (the `fastgr-telemetry::Stopwatch` clock).
//!    Every crate measures wall time through the one clock, so reported
//!    seconds are mutually comparable and the telemetry layer is the
//!    single place timestamps originate. Scope: the facade `src/` and
//!    every `crates/*/src/` except the telemetry crate (shims keep their
//!    own clocks — they substitute external crates).
//! 5. **`rrr-rwlock`** — no `RwLock` in `core::rrr`. The RRR stage shares
//!    the grid between tasks through the lock-free atomic congestion
//!    store (`GridGraph::commit_atomic`); reintroducing a reader–writer
//!    lock around the grid would serialise every commit and defeat the
//!    parallel design. (Per-task result slots may keep plain mutexes.)
//! 6. **`dp-direct-cost`** — no `wire_edge_cost` call sites in `core::dp`.
//!    The pattern kernels read wire-run and via-stack costs through the
//!    prefix-sum `CostProber` (or its quantised direct-walk twin) in O(1)
//!    per probe; summing per-edge costs inline would silently reintroduce
//!    the O(span) inner loop the prober exists to remove.
//!
//! The scanner strips line/block comments and string-literal contents, and
//! skips `#[cfg(test)] mod` bodies by brace tracking, so doc examples and
//! unit tests do not trip hot-path rules. Findings suppressed by the
//! allowlist (`lint-allow.txt` at the workspace root; `rule path
//! substring` per line) are dropped; unused allowlist entries surface as
//! warnings so the file cannot rot.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::diagnostics::{Diagnostic, Severity, ValidationReport};

/// One allowlist entry: suppress `rule` findings in `path` on lines
/// containing `pattern` (an empty pattern matches any line of the file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier the entry suppresses.
    pub rule: String,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Substring the offending source line must contain.
    pub pattern: String,
}

/// Parses the allowlist format: one `rule path substring...` entry per
/// line; `#` starts a comment; blank lines are ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path)) = (parts.next(), parts.next()) else {
            continue;
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            pattern: parts.next().unwrap_or("").trim().to_string(),
        });
    }
    entries
}

/// Runs every lint rule over the workspace rooted at `root` (the directory
/// holding the top-level `Cargo.toml`). Reads `lint-allow.txt` from the
/// root if present. I/O failures surface as `lint-io` diagnostics rather
/// than panics, so a truncated checkout still yields a report.
pub fn lint_workspace(root: &Path) -> ValidationReport {
    let allowlist = match fs::read_to_string(root.join("lint-allow.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };
    let mut used = vec![false; allowlist.len()];
    let mut report = ValidationReport::default();

    // --- Rule 1: #![forbid(unsafe_code)] in every crate root. ---
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for members in ["crates", "shims"] {
        for dir in list_dirs(&root.join(members)) {
            let lib = dir.join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    for lib in &roots {
        let rel = rel_path(root, lib);
        match fs::read_to_string(lib) {
            Ok(text) => {
                report.tasks_checked += 1;
                if !text.contains("#![forbid(unsafe_code)]") {
                    push_allowed(
                        &mut report,
                        &allowlist,
                        &mut used,
                        Diagnostic::error(
                            "missing-forbid-unsafe",
                            format!("{rel}: crate root lacks #![forbid(unsafe_code)]"),
                        ),
                        &rel,
                        "",
                    );
                }
            }
            Err(e) => report.push(Diagnostic::error("lint-io", format!("{rel}: {e}"))),
        }
    }

    // --- Rules 2–4 over per-file rule sets. Rule 4 scans every crate
    // except the telemetry crate (which owns the clock); rules 2 and 3
    // additionally apply on the hot-path subset.
    let mut hot: Vec<PathBuf> = vec![
        root.join("crates/core/src/dp.rs"),
        root.join("crates/core/src/pattern.rs"),
    ];
    hot.extend(list_rust_files(&root.join("crates/gpu/src")));
    hot.extend(list_rust_files(&root.join("crates/taskgraph/src")));
    let mut files = list_rust_files(&root.join("src"));
    for dir in list_dirs(&root.join("crates")) {
        if dir.file_name().is_some_and(|n| n == "telemetry") {
            continue;
        }
        files.extend(list_rust_files(&dir.join("src")));
    }
    for file in &files {
        let rel = rel_path(root, file);
        let text = match fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                report.push(Diagnostic::error("lint-io", format!("{rel}: {e}")));
                continue;
            }
        };
        report.tasks_checked += 1;
        let rules = Rules {
            hot: hot.contains(file),
            dp: rel.ends_with("core/src/dp.rs")
                || rel.ends_with("maze/src/router.rs")
                || rel.ends_with("grid/src/prober.rs"),
            timing: true,
            rrr_lock: rel.ends_with("core/src/rrr.rs"),
            dp_direct: rel.ends_with("core/src/dp.rs"),
        };
        lint_file(&text, &rel, rules, &allowlist, &mut used, &mut report);
    }

    for (entry, &was_used) in allowlist.iter().zip(used.iter()) {
        if !was_used {
            report.push(Diagnostic {
                severity: Severity::Warning,
                rule: "allowlist-unused",
                message: format!(
                    "allowlist entry never matched: {} {} {}",
                    entry.rule, entry.path, entry.pattern
                ),
                tasks: None,
                witness: Vec::new(),
            });
        }
    }
    report
}

/// Which per-file rules apply to a scanned file.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rules {
    /// Rule 2: hot-path `.unwrap()` / `.expect(` ban.
    pub hot: bool,
    /// Rule 3: zero-alloc `fn *_into` DP body ban.
    pub dp: bool,
    /// Rule 4: `Instant::now` ban (timing goes through the telemetry
    /// crate's `Stopwatch`).
    pub timing: bool,
    /// Rule 5: `RwLock` ban in the RRR stage (grid sharing goes through
    /// the lock-free atomic congestion store).
    pub rrr_lock: bool,
    /// Rule 6: `wire_edge_cost` ban in the pattern DP (costs go through
    /// the prefix-sum `CostProber` probes, not per-edge summation).
    pub dp_direct: bool,
}

/// Scans one file for whichever of rules 2–6 `rules` enables.
pub fn lint_file(
    text: &str,
    rel: &str,
    rules: Rules,
    allowlist: &[AllowEntry],
    used: &mut [bool],
    report: &mut ValidationReport,
) {
    let mut in_block_comment = 0usize;
    // > 0 while inside a `#[cfg(test)] mod { ... }` body (brace depth).
    let mut test_depth = 0i64;
    let mut pending_test_attr = false;
    let mut seen_test_mod_open = false;
    // > 0 while inside a `fn *_into(...) { ... }` body.
    let mut into_depth = 0i64;
    let mut seen_into_open = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_comments_and_strings(raw, &mut in_block_comment);
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        if test_depth > 0 || (seen_test_mod_open && !code.trim().is_empty()) {
            // Inside (or just opened) a test module: only track braces.
            test_depth += opens - closes;
            if test_depth <= 0 && opens + closes > 0 {
                test_depth = 0;
                seen_test_mod_open = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_test_attr = true;
            continue;
        }
        if pending_test_attr {
            if code.trim().is_empty() || code.trim_start().starts_with("#[") {
                continue; // further attributes between cfg(test) and the item
            }
            pending_test_attr = false;
            if code.contains("mod ") {
                test_depth = opens - closes;
                if test_depth > 0 {
                    continue;
                }
                // `mod tests;` or one-line module: nothing to skip.
                seen_test_mod_open = opens == 0 && closes == 0 && !code.contains(';');
                continue;
            }
            // `#[cfg(test)]` on a non-module item (fn, use): just that item
            // is test-only; fall through and keep linting — hot-path rules
            // firing on it is conservative but harmless in this codebase.
        }

        // Rule 3 state: entering / leaving a `fn *_into` body.
        if into_depth > 0 || seen_into_open {
            if seen_into_open && opens > 0 {
                seen_into_open = false;
                into_depth = opens - closes;
            } else {
                into_depth += opens - closes;
            }
            if into_depth <= 0 {
                into_depth = 0;
            }
        } else if rules.dp && declares_into_fn(&code) {
            into_depth = opens - closes;
            if into_depth <= 0 {
                into_depth = 0;
                seen_into_open = opens == 0; // signature spans lines
            }
        }

        // Rule 2: no unwrap/expect on the hot path.
        if rules.hot {
            for (needle, rule) in
                [(".unwrap()", "hot-path-unwrap"), (".expect(", "hot-path-expect")]
            {
                if code.contains(needle) {
                    push_allowed(
                        report,
                        allowlist,
                        used,
                        Diagnostic::error(
                            rule,
                            format!("{rel}:{line_no}: `{needle}` in a hot-path module"),
                        ),
                        rel,
                        raw,
                    );
                }
            }
        }

        // Rule 4: one wall-clock source for the whole workspace.
        if rules.timing && code.contains("Instant::now") {
            push_allowed(
                report,
                allowlist,
                used,
                Diagnostic::error(
                    "timing-instant",
                    format!(
                        "{rel}:{line_no}: `Instant::now` outside fastgr-telemetry \
                         (time through `fastgr_telemetry::Stopwatch`)"
                    ),
                ),
                rel,
                raw,
            );
        }

        // Rule 5: the RRR stage must stay lock-free on the grid.
        if rules.rrr_lock && code.contains("RwLock") {
            push_allowed(
                report,
                allowlist,
                used,
                Diagnostic::error(
                    "rrr-rwlock",
                    format!(
                        "{rel}:{line_no}: `RwLock` in the RRR stage (share the grid \
                         through `GridGraph::commit_atomic` instead)"
                    ),
                ),
                rel,
                raw,
            );
        }

        // Rule 6: DP kernels must probe aggregate costs, never walk edges.
        if rules.dp_direct && code.contains("wire_edge_cost") {
            push_allowed(
                report,
                allowlist,
                used,
                Diagnostic::error(
                    "dp-direct-cost",
                    format!(
                        "{rel}:{line_no}: `wire_edge_cost` in the pattern DP \
                         (probe through `CostProber::wire_run_cost` or \
                         `GridGraph::wire_run_cost_fixed` instead)"
                    ),
                ),
                rel,
                raw,
            );
        }

        // Rule 3: no allocation / locking inside the zero-alloc DP body.
        if rules.dp && (into_depth > 0 || seen_into_open) {
            const MARKERS: &[&str] = &[
                "Vec::new",
                "vec!",
                "with_capacity",
                ".collect(",
                ".to_vec(",
                "Box::new",
                "String::new",
                ".to_string(",
                "format!",
                "HashMap::new",
                "HashSet::new",
                "BinaryHeap::new",
                "Mutex",
                "RwLock",
            ];
            for marker in MARKERS {
                if code.contains(marker) {
                    push_allowed(
                        report,
                        allowlist,
                        used,
                        Diagnostic::error(
                            "dp-alloc",
                            format!(
                                "{rel}:{line_no}: `{marker}` inside a zero-alloc \
                                 `fn *_into` body"
                            ),
                        ),
                        rel,
                        raw,
                    );
                }
            }
        }
    }
}

/// Whether the (comment-stripped) line declares a function whose name ends
/// in `_into`.
fn declares_into_fn(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("fn ") {
        // Reject identifier characters immediately before ("pub fn" is
        // fine, "often " is not — the space in the needle handles most).
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + 3..];
        let name: String = after
            .chars()
            .take_while(|&c| c.is_alphanumeric() || c == '_')
            .collect();
        if before_ok && name.ends_with("_into") {
            return true;
        }
        rest = after;
    }
    false
}

/// Pushes `diagnostic` unless an allowlist entry covers it; marks matching
/// entries used either way.
fn push_allowed(
    report: &mut ValidationReport,
    allowlist: &[AllowEntry],
    used: &mut [bool],
    diagnostic: Diagnostic,
    rel: &str,
    raw_line: &str,
) {
    let mut suppressed = false;
    for (i, entry) in allowlist.iter().enumerate() {
        if entry.rule == diagnostic.rule
            && entry.path == rel
            && (entry.pattern.is_empty() || raw_line.contains(entry.pattern.as_str()))
        {
            used[i] = true;
            suppressed = true;
        }
    }
    if !suppressed {
        report.push(diagnostic);
    }
}

/// Removes `//` and (possibly nested, possibly multi-line) `/* */`
/// comments and blanks out string-literal contents, so lint needles only
/// match real code. `in_block_comment` carries nesting depth across lines.
fn strip_comments_and_strings(line: &str, in_block_comment: &mut usize) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_string = false;
    while i < bytes.len() {
        if *in_block_comment > 0 {
            if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                *in_block_comment += 1;
                i += 2;
            } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment -= 1;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_string {
            if bytes[i] == b'\\' {
                i += 2; // skip the escaped byte
                continue;
            }
            if bytes[i] == b'"' {
                in_string = false;
                out.push('"');
            }
            i += 1;
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment += 1;
                i += 2;
            }
            b'"' => {
                in_string = true;
                out.push('"');
                i += 1;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    // An unterminated plain string at end-of-line cannot happen in valid
    // Rust (raw/multi-line strings are not handled; none appear in the
    // linted set — a false match would surface as a visible finding, not a
    // silent pass).
    out
}

/// Immediate subdirectories of `dir` (empty if unreadable).
fn list_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Every `.rs` file under `dir`, recursively, sorted.
fn list_rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if let Ok(entries) = fs::read_dir(&d) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    out.push(path);
                }
            }
        }
    }
    out.sort();
    out
}

/// Workspace-relative path with forward slashes (for stable diagnostics
/// and allowlist matching across platforms).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut out = String::new();
    for (i, comp) in rel.components().enumerate() {
        if i > 0 {
            out.push('/');
        }
        let _ = write!(out, "{}", comp.as_os_str().to_string_lossy());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_line_and_block_comments() {
        let mut depth = 0;
        assert_eq!(
            strip_comments_and_strings("let x = 1; // .unwrap()", &mut depth),
            "let x = 1; "
        );
        assert_eq!(
            strip_comments_and_strings("a /* .expect( */ b", &mut depth),
            "a  b"
        );
        assert_eq!(depth, 0);
        // Nested block comment spanning lines.
        assert_eq!(strip_comments_and_strings("x /* outer /* inner", &mut depth), "x ");
        assert_eq!(depth, 2);
        assert_eq!(strip_comments_and_strings("inner */ still out */ y", &mut depth), " y");
        assert_eq!(depth, 0);
    }

    #[test]
    fn stripper_blanks_string_contents() {
        let mut depth = 0;
        assert_eq!(
            strip_comments_and_strings(r#"let m = "call .unwrap() now";"#, &mut depth),
            r#"let m = "";"#
        );
        assert_eq!(
            strip_comments_and_strings(r#"let e = "esc \" .expect(";"#, &mut depth),
            r#"let e = "";"#
        );
    }

    #[test]
    fn into_fn_declarations_are_recognised() {
        assert!(declares_into_fn("pub fn route_net_into(&mut self) {"));
        assert!(declares_into_fn("    fn bottom_cost_into("));
        assert!(!declares_into_fn("pub fn route_net(&self) {"));
        assert!(!declares_into_fn("let into = fn_pointer;"));
    }

    #[test]
    fn allowlist_parses_rules_paths_and_patterns() {
        let entries = parse_allowlist(
            "# comment\n\
             hot-path-expect crates/gpu/src/pool.rs expect(\"every index produced a value\")\n\
             \n\
             dp-alloc crates/core/src/dp.rs\n",
        );
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "hot-path-expect");
        assert_eq!(entries[0].path, "crates/gpu/src/pool.rs");
        assert!(entries[0].pattern.contains("every index"));
        assert_eq!(entries[1].pattern, "");
    }

    #[test]
    fn lint_file_flags_hot_path_unwrap_but_not_tests_or_comments() {
        let src = "\
//! Doc: .unwrap() here is fine.\n\
pub fn hot(x: Option<u32>) -> u32 {\n\
    x.unwrap()\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { Some(1).unwrap(); Some(2).expect(\"fine in tests\"); }\n\
}\n";
        let mut report = ValidationReport::default();
        let rules = Rules { hot: true, ..Rules::default() };
        lint_file(src, "x.rs", rules, &[], &mut [], &mut report);
        assert_eq!(report.error_count(), 1, "{report}");
        assert!(report.diagnostics[0].message.contains("x.rs:3"));
    }

    #[test]
    fn lint_file_flags_alloc_in_into_fn_only() {
        let src = "\
pub fn setup() -> Vec<u32> {\n\
    Vec::with_capacity(8)\n\
}\n\
pub fn route_net_into(&mut self, out: &mut Vec<u32>) {\n\
    let tmp = Vec::new();\n\
    out.push(1);\n\
}\n\
pub fn after() { let v = vec![1]; }\n";
        let mut report = ValidationReport::default();
        let rules = Rules { hot: true, dp: true, ..Rules::default() };
        lint_file(src, "crates/core/src/dp.rs", rules, &[], &mut [], &mut report);
        let fired: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(fired, vec!["dp-alloc"], "{report}");
        assert!(report.diagnostics[0].message.contains(":5:"));
    }

    #[test]
    fn rwlock_rule_fires_only_in_rrr_scope() {
        let src = "\
use parking_lot::RwLock;\n\
pub fn share(graph: &RwLock<u32>) -> u32 {\n\
    *graph.read()\n\
}\n";
        let mut report = ValidationReport::default();
        let rules = Rules { rrr_lock: true, ..Rules::default() };
        lint_file(src, "crates/core/src/rrr.rs", rules, &[], &mut [], &mut report);
        let fired: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(fired, vec!["rrr-rwlock", "rrr-rwlock"], "{report}");
        // The same file with the rule off is clean; comments never count.
        let mut off = ValidationReport::default();
        lint_file(src, "x.rs", Rules::default(), &[], &mut [], &mut off);
        assert!(off.is_clean(), "{off}");
        let mut comment = ValidationReport::default();
        lint_file(
            "// RwLock was removed here.\npub fn f() {}\n",
            "crates/core/src/rrr.rs",
            rules,
            &[],
            &mut [],
            &mut comment,
        );
        assert!(comment.is_clean(), "{comment}");
    }

    #[test]
    fn zero_alloc_rule_covers_the_maze_search_body() {
        let src = "\
pub fn search_into(&self, scratch: &mut MazeScratch) {\n\
    let extra: Vec<u32> = (0..4).collect();\n\
    scratch.path.push(extra.len());\n\
}\n";
        let mut report = ValidationReport::default();
        let rules = Rules { dp: true, ..Rules::default() };
        lint_file(src, "crates/maze/src/router.rs", rules, &[], &mut [], &mut report);
        let fired: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(fired, vec!["dp-alloc"], "{report}");
    }

    #[test]
    fn direct_cost_rule_bans_wire_edge_cost_in_the_dp() {
        let src = "\
fn l_shape_into(&self, scratch: &mut DpScratch) {\n\
    let w = self.graph.params().wire_edge_cost(demand, capacity);\n\
    scratch.w1.push(w);\n\
}\n";
        let mut report = ValidationReport::default();
        let rules = Rules { dp_direct: true, ..Rules::default() };
        lint_file(src, "crates/core/src/dp.rs", rules, &[], &mut [], &mut report);
        let fired: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(fired, vec!["dp-direct-cost"], "{report}");
        assert!(report.diagnostics[0].message.contains(":2:"), "{report}");
        // Probe-based cost reads are clean; so are comments.
        let clean = "\
//! wire_edge_cost is banned here — probe instead.\n\
fn l_shape_into(&self) { let w = self.run_cost(l, a, b); }\n";
        let mut off = ValidationReport::default();
        lint_file(clean, "crates/core/src/dp.rs", rules, &[], &mut [], &mut off);
        assert!(off.is_clean(), "{off}");
    }

    #[test]
    fn zero_alloc_rule_covers_the_prober_rebuild_path() {
        let src = "\
fn rebuild_wire_row_into(&self, graph: &GridGraph, row: usize) {\n\
    let acc: Vec<u64> = (0..8).collect();\n\
    let _ = acc;\n\
}\n";
        let mut report = ValidationReport::default();
        let rules = Rules { dp: true, ..Rules::default() };
        lint_file(src, "crates/grid/src/prober.rs", rules, &[], &mut [], &mut report);
        let fired: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(fired, vec!["dp-alloc"], "{report}");
    }

    #[test]
    fn timing_rule_flags_instant_outside_tests_and_comments() {
        let src = "\
//! Doc: Instant::now() here is fine.\n\
use std::time::Instant;\n\
pub fn measure() -> f64 {\n\
    let t0 = Instant::now();\n\
    t0.elapsed().as_secs_f64()\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { let _ = std::time::Instant::now(); }\n\
}\n";
        let mut report = ValidationReport::default();
        let rules = Rules { timing: true, ..Rules::default() };
        lint_file(src, "crates/core/src/router.rs", rules, &[], &mut [], &mut report);
        assert_eq!(report.error_count(), 1, "{report}");
        assert_eq!(report.diagnostics[0].rule, "timing-instant");
        assert!(report.diagnostics[0].message.contains(":4:"), "{report}");
        // The same file with the rule off is clean.
        let mut off = ValidationReport::default();
        lint_file(src, "x.rs", Rules::default(), &[], &mut [], &mut off);
        assert!(off.is_clean(), "{off}");
    }

    #[test]
    fn allowlist_suppresses_and_is_marked_used() {
        let src = "pub fn hot() { q().expect(\"queue open\"); }\n";
        let allow = parse_allowlist("hot-path-expect x.rs expect(\"queue open\")");
        let mut used = vec![false];
        let mut report = ValidationReport::default();
        let rules = Rules { hot: true, ..Rules::default() };
        lint_file(src, "x.rs", rules, &allow, &mut used, &mut report);
        assert!(report.is_clean(), "{report}");
        assert!(used[0]);
    }

    #[test]
    fn whole_workspace_lints_clean() {
        // The real tree, with the real allowlist: must be clean, and every
        // allowlist entry must still be needed.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root);
        assert!(report.is_clean(), "{report}");
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.rule == "allowlist-unused"),
            "{report}"
        );
        assert!(report.tasks_checked > 10, "scanned {report}");
    }
}
