//! The top-level FastGR router: pattern stage + RRR + scoring (Fig. 5).

use std::fmt;

use fastgr_design::Design;
use fastgr_gpu::DeviceConfig;
use fastgr_grid::{CongestionReport, CostParams, Route};
use fastgr_maze::MazeConfig;
use fastgr_telemetry::{Recorder, RunTrace};

use crate::dp::PatternMode;
use crate::error::RouteError;
use crate::guides::RouteGuides;
use crate::metrics::QualityMetrics;
use crate::ordering::SortingScheme;
use crate::pattern::{PatternEngine, PatternStage};
use crate::rrr::{RrrStage, RrrStrategy};
use crate::selection::SelectionThresholds;

/// Full configuration of one router variant.
///
/// Use the presets ([`RouterConfig::cugr`], [`RouterConfig::fastgr_l`],
/// [`RouterConfig::fastgr_h`]) and tweak fields as needed.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Pattern candidate set per two-pin net.
    pub pattern_mode: PatternMode,
    /// Pattern execution engine.
    pub engine: PatternEngine,
    /// Internet net-ordering scheme (both stages unless overridden).
    pub sorting: SortingScheme,
    /// Optional override of the ordering scheme for the rip-up-and-reroute
    /// stage only (the Table V experiment swaps schemes there while keeping
    /// the pattern stage fixed). `None` uses [`RouterConfig::sorting`].
    pub rrr_sorting: Option<SortingScheme>,
    /// Number of rip-up-and-reroute iterations.
    pub rrr_iterations: usize,
    /// RRR parallelisation strategy.
    pub rrr_strategy: RrrStrategy,
    /// Worker count for the RRR executor and parallel-time model.
    pub workers: usize,
    /// Edge cost model parameters.
    pub cost: CostParams,
    /// Maze router configuration.
    pub maze: MazeConfig,
    /// Steiner tree optimisation passes (0 = raw MST, for ablations).
    pub steiner_passes: usize,
    /// Negotiation-style history cost per RRR round (0 = paper-faithful;
    /// positive enables the negotiated-congestion extension).
    pub history_increment: f64,
    /// Congestion-aware (RUDY-guided) edge shifting during planning.
    pub congestion_aware_planning: bool,
    /// Prefix-sum cost prober in the pattern stage: wire-run and via-stack
    /// costs become O(1) prefix differences instead of O(span) gcell walks.
    /// Routes are bit-identical either way; this only changes the work the
    /// kernels do. On in every preset; off is an ablation knob.
    pub cost_probing: bool,
    /// Debug-assert-style soundness checking in both stages: batches and
    /// schedules are verified with the `fastgr-analysis` static validator
    /// and task-graph executions run under the happens-before race
    /// checker; violations panic with structured diagnostics. Off in the
    /// presets; turned on by tests and `cargo xtask check`.
    pub validate: bool,
}

impl RouterConfig {
    /// The CUGR-style baseline: sequential CPU L-shape pattern routing and
    /// batch-barrier parallel rip-up and reroute.
    pub fn cugr() -> Self {
        Self {
            pattern_mode: PatternMode::LShape,
            engine: PatternEngine::SequentialCpu,
            sorting: SortingScheme::HpwlAscending,
            rrr_sorting: None,
            rrr_iterations: 3,
            rrr_strategy: RrrStrategy::BatchBarrier,
            workers: 8,
            cost: CostParams::default(),
            maze: MazeConfig::default(),
            steiner_passes: 4,
            history_increment: 0.0,
            congestion_aware_planning: false,
            cost_probing: true,
            validate: false,
        }
    }

    /// FastGR_L: the GPU-accelerated L-shape kernel plus the task graph
    /// scheduler in both stages (the runtime-oriented variant).
    pub fn fastgr_l() -> Self {
        Self {
            engine: PatternEngine::GpuFlow(DeviceConfig::rtx3090_like()),
            rrr_strategy: RrrStrategy::TaskGraph,
            ..Self::cugr()
        }
    }

    /// FastGR_H: the GPU-accelerated hybrid-shape kernel with the selection
    /// technique (the quality-oriented variant).
    pub fn fastgr_h() -> Self {
        Self {
            pattern_mode: PatternMode::Hybrid(SelectionThresholds::default()),
            ..Self::fastgr_l()
        }
    }

    /// FastGR_H without the selection technique (hybrid kernel on every
    /// two-pin net) — the Table VI ablation.
    pub fn fastgr_h_no_selection() -> Self {
        Self {
            pattern_mode: PatternMode::HybridAll,
            ..Self::fastgr_l()
        }
    }

    // --- Fluent builder. Start from a preset, chain `with_*` calls:
    // `RouterConfig::fastgr_h().with_workers(8).with_rrr_iterations(3)`.
    // Direct field access keeps working for back-compat.

    /// Returns the configuration with the pattern candidate set replaced.
    pub fn with_pattern_mode(mut self, mode: PatternMode) -> Self {
        self.pattern_mode = mode;
        self
    }

    /// Returns the configuration with the pattern engine replaced.
    pub fn with_engine(mut self, engine: PatternEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns the configuration with the net-ordering scheme replaced.
    pub fn with_sorting(mut self, sorting: SortingScheme) -> Self {
        self.sorting = sorting;
        self
    }

    /// Returns the configuration with an RRR-only ordering override (the
    /// Table V experiment swaps schemes there while keeping the pattern
    /// stage fixed).
    pub fn with_rrr_sorting(mut self, sorting: SortingScheme) -> Self {
        self.rrr_sorting = Some(sorting);
        self
    }

    /// Returns the configuration with the rip-up-and-reroute iteration
    /// count replaced.
    pub fn with_rrr_iterations(mut self, iterations: usize) -> Self {
        self.rrr_iterations = iterations;
        self
    }

    /// Returns the configuration with the RRR parallelisation strategy
    /// replaced.
    pub fn with_rrr_strategy(mut self, strategy: RrrStrategy) -> Self {
        self.rrr_strategy = strategy;
        self
    }

    /// Returns the configuration with the worker count replaced (RRR
    /// executor and parallel-time model).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns the configuration with the edge cost model replaced.
    pub fn with_cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// Returns the configuration with the maze router settings replaced.
    pub fn with_maze(mut self, maze: MazeConfig) -> Self {
        self.maze = maze;
        self
    }

    /// Returns the configuration with the Steiner optimisation pass count
    /// replaced (0 = raw MST, for ablations).
    pub fn with_steiner_passes(mut self, passes: usize) -> Self {
        self.steiner_passes = passes;
        self
    }

    /// Returns the configuration with the negotiation history increment
    /// replaced (0 = paper-faithful).
    pub fn with_history_increment(mut self, increment: f64) -> Self {
        self.history_increment = increment;
        self
    }

    /// Returns the configuration with congestion-aware (RUDY-guided)
    /// planning switched on or off.
    pub fn with_congestion_aware_planning(mut self, enabled: bool) -> Self {
        self.congestion_aware_planning = enabled;
        self
    }

    /// Returns the configuration with the pattern-stage prefix-sum cost
    /// prober switched on or off (see [`RouterConfig::cost_probing`]).
    pub fn with_cost_probing(mut self, enabled: bool) -> Self {
        self.cost_probing = enabled;
        self
    }

    /// Returns the configuration with soundness checking switched on or
    /// off (see [`RouterConfig::validate`]).
    pub fn with_validate(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }
}

/// Stage timing breakdown of one routing run.
///
/// "Reported" times follow the paper's accounting: PATTERN is modelled
/// device time for GPU engines and measured wall time for the CPU engine;
/// MAZE is the modelled parallel runtime of the chosen strategy on
/// [`RouterConfig::workers`] workers (plus measured host time for
/// reference).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Host seconds for planning (Steiner + sorting + batching).
    pub planning_seconds: f64,
    /// Reported PATTERN seconds.
    pub pattern_seconds: f64,
    /// Measured host seconds of the pattern stage's routing work.
    pub pattern_host_seconds: f64,
    /// Modelled device seconds (GPU engines only).
    pub pattern_gpu_seconds: Option<f64>,
    /// Reported MAZE seconds (modelled parallel).
    pub maze_seconds: f64,
    /// Measured host seconds of the RRR stage.
    pub maze_host_seconds: f64,
}

impl StageTimings {
    /// Reported total: planning + PATTERN + MAZE.
    pub fn total_seconds(&self) -> f64 {
        self.planning_seconds + self.pattern_seconds + self.maze_seconds
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "planning {:.3}s, pattern {:.3}s, maze {:.3}s (total {:.3}s)",
            self.planning_seconds,
            self.pattern_seconds,
            self.maze_seconds,
            self.total_seconds()
        )
    }
}

/// Everything a routing run produces.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// Final per-net routed geometry.
    pub routes: Vec<Route>,
    /// Routing guides for the detailed router.
    pub guides: RouteGuides,
    /// Solution quality (wirelength / vias / shorts / score).
    pub metrics: QualityMetrics,
    /// Final congestion statistics.
    pub report: CongestionReport,
    /// Stage timings.
    pub timings: StageTimings,
    /// The run trace: deterministic counters plus (when routed through
    /// [`Router::run_with_recorder`] with an enabled recorder) the full
    /// span/kernel/task timeline. Always carries the run summary —
    /// `trace.nets_ripped()`, `trace.pattern_shorts()`,
    /// `trace.pattern_batches()` — whether or not telemetry was on.
    pub trace: RunTrace,
    /// Nets ripped up per RRR iteration.
    #[deprecated(since = "0.2.0", note = "use `outcome.trace.nets_ripped()`")]
    pub nets_ripped: Vec<usize>,
    /// Shorts (overflow) right after the pattern routing stage, before any
    /// rip-up and reroute — the quantity the pattern kernels directly
    /// influence.
    #[deprecated(since = "0.2.0", note = "use `outcome.trace.pattern_shorts()`")]
    pub pattern_shorts: f64,
    /// Batches formed in the pattern stage.
    #[deprecated(since = "0.2.0", note = "use `outcome.trace.pattern_batches()`")]
    pub pattern_batches: usize,
}

impl RoutingOutcome {
    /// The final grid graph state is not retained; recompute metrics from
    /// the stored routes against a fresh graph if needed. This helper
    /// recomputes the quality metrics from `routes` and `report`.
    fn metrics_from(routes: &[Route], report: &CongestionReport) -> QualityMetrics {
        QualityMetrics {
            wirelength: routes.iter().map(Route::wirelength).sum(),
            vias: routes.iter().map(Route::via_count).sum(),
            shorts: report.shorts(),
        }
    }
}

/// The FastGR router. See the crate docs for a quickstart.
#[derive(Debug, Clone, Copy)]
pub struct Router {
    config: RouterConfig,
}

impl Router {
    /// Creates a router from a configuration.
    pub fn new(config: RouterConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Routes `design` end to end: builds the grid, runs the pattern stage,
    /// then the rip-up-and-reroute iterations, and scores the result.
    ///
    /// # Errors
    ///
    /// Propagates [`RouteError`] from any stage; see the stage docs.
    pub fn run(&self, design: &Design) -> Result<RoutingOutcome, RouteError> {
        self.run_with_recorder(design, &Recorder::disabled())
    }

    /// [`Router::run`] reporting into a telemetry recorder: planning /
    /// pattern / per-RRR-iteration spans, per-kernel device events,
    /// per-task executor events and the deterministic run counters, all
    /// drained into [`RoutingOutcome::trace`]. With a disabled recorder
    /// (what [`Router::run`] passes) only the run summary lands in the
    /// trace and the recording calls cost a branch each.
    pub fn run_with_recorder(
        &self,
        design: &Design,
        recorder: &Recorder,
    ) -> Result<RoutingOutcome, RouteError> {
        let c = &self.config;
        let mut graph = design.build_graph(c.cost)?;

        let pattern = PatternStage {
            mode: c.pattern_mode,
            engine: c.engine,
            sorting: c.sorting,
            steiner_passes: c.steiner_passes,
            congestion_aware_planning: c.congestion_aware_planning,
            cost_probing: c.cost_probing,
            validate: c.validate,
        }
        .run_traced(design, &mut graph, recorder)?;
        let mut routes = pattern.routes;
        let pattern_shorts = graph.report().shorts();

        let rrr = RrrStage {
            iterations: c.rrr_iterations,
            strategy: c.rrr_strategy,
            sorting: c.rrr_sorting.unwrap_or(c.sorting),
            maze: c.maze,
            workers: c.workers,
            history_increment: c.history_increment,
            validate: c.validate,
        }
        .run_traced(design, &mut graph, &mut routes, recorder)?;

        let report = graph.report();
        let metrics = RoutingOutcome::metrics_from(&routes, &report);
        let guides = RouteGuides::from_routes(design, &routes);
        let timings = StageTimings {
            planning_seconds: pattern.planning_seconds,
            pattern_seconds: pattern.reported_seconds,
            pattern_host_seconds: pattern.host_seconds,
            pattern_gpu_seconds: pattern.modeled_gpu_seconds,
            maze_seconds: rrr.modeled_parallel_seconds,
            maze_host_seconds: rrr.host_seconds,
        };
        let mut trace = recorder.take_trace();
        trace.set_pattern_summary(pattern.batch_count, pattern_shorts);
        trace.set_rrr_nets_ripped(rrr.nets_ripped.clone());
        trace.set_rrr_scan_summary(rrr.dirty_edges, rrr.rescans_avoided);
        // The deprecated fields stay populated for back-compat until
        // their removal.
        #[allow(deprecated)]
        Ok(RoutingOutcome {
            routes,
            guides,
            metrics,
            report,
            timings,
            trace,
            nets_ripped: rrr.nets_ripped,
            pattern_shorts,
            pattern_batches: pattern.batch_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::{Generator, GeneratorParams};

    fn congested_design() -> Design {
        Generator::new(GeneratorParams {
            name: "router-test".into(),
            width: 24,
            height: 24,
            layers: 6,
            num_nets: 300,
            capacity: 4.0,
            hotspots: 3,
            hotspot_affinity: 0.5,
            blockages: 2,
            seed: 21,
        })
        .generate()
    }

    #[test]
    fn all_presets_route_end_to_end() {
        let design = congested_design();
        for config in [
            RouterConfig::cugr(),
            RouterConfig::fastgr_l(),
            RouterConfig::fastgr_h(),
            RouterConfig::fastgr_h_no_selection(),
        ] {
            // Soundness checking on: the analysis validator and the race
            // checker audit every schedule this run builds.
            let config = config.with_validate(true);
            let outcome = Router::new(config).run(&design).expect("routable");
            assert_eq!(outcome.routes.len(), design.nets().len());
            assert!(outcome.metrics.wirelength > 0);
            assert!(outcome.metrics.score() > 0.0);
            assert!(outcome.guides.covers_pins(&design));
            assert!(outcome.timings.total_seconds() > 0.0);
        }
    }

    #[test]
    fn fastgr_l_reports_gpu_time_cugr_does_not() {
        let design = Generator::tiny(4).generate();
        let l = Router::new(RouterConfig::fastgr_l())
            .run(&design)
            .expect("ok");
        let c = Router::new(RouterConfig::cugr()).run(&design).expect("ok");
        assert!(l.timings.pattern_gpu_seconds.is_some());
        assert!(c.timings.pattern_gpu_seconds.is_none());
    }

    #[test]
    fn rrr_improves_or_preserves_score_vs_pattern_only() {
        let design = congested_design();
        let no_rrr = RouterConfig::cugr().with_rrr_iterations(0);
        let with_rrr = RouterConfig::cugr();
        let a = Router::new(no_rrr).run(&design).expect("ok");
        let b = Router::new(with_rrr).run(&design).expect("ok");
        assert!(
            b.metrics.shorts <= a.metrics.shorts,
            "rrr must not increase shorts: {} -> {}",
            a.metrics.shorts,
            b.metrics.shorts
        );
    }

    #[test]
    fn deterministic_given_config() {
        let design = Generator::tiny(8).generate();
        let a = Router::new(RouterConfig::fastgr_l())
            .run(&design)
            .expect("ok");
        let b = Router::new(RouterConfig::fastgr_l())
            .run(&design)
            .expect("ok");
        assert_eq!(a.routes, b.routes);
        assert_eq!(a.metrics.wirelength, b.metrics.wirelength);
        assert_eq!(a.metrics.shorts, b.metrics.shorts);
    }

    /// Denser than [`congested_design`]: guaranteed to overflow after the
    /// pattern stage, so RRR iterations actually run.
    fn overflowing_design() -> Design {
        Generator::new(GeneratorParams {
            name: "router-overflow".into(),
            width: 24,
            height: 24,
            layers: 5,
            num_nets: 360,
            capacity: 3.0,
            hotspots: 2,
            hotspot_affinity: 0.6,
            blockages: 2,
            seed: 5,
        })
        .generate()
    }

    #[test]
    fn builder_chains_match_field_mutation() {
        let built = RouterConfig::fastgr_h()
            .with_workers(3)
            .with_rrr_iterations(5)
            .with_sorting(SortingScheme::HpwlDescending)
            .with_rrr_sorting(SortingScheme::HpwlAscending)
            .with_steiner_passes(2)
            .with_history_increment(0.25)
            .with_congestion_aware_planning(true)
            .with_cost_probing(false)
            .with_validate(true);
        let mut mutated = RouterConfig::fastgr_h();
        mutated.workers = 3;
        mutated.rrr_iterations = 5;
        mutated.sorting = SortingScheme::HpwlDescending;
        mutated.rrr_sorting = Some(SortingScheme::HpwlAscending);
        mutated.steiner_passes = 2;
        mutated.history_increment = 0.25;
        mutated.congestion_aware_planning = true;
        mutated.cost_probing = false;
        mutated.validate = true;
        assert_eq!(built.workers, mutated.workers);
        assert_eq!(built.rrr_iterations, mutated.rrr_iterations);
        assert_eq!(built.sorting, mutated.sorting);
        assert_eq!(built.rrr_sorting, mutated.rrr_sorting);
        assert_eq!(built.steiner_passes, mutated.steiner_passes);
        assert_eq!(built.history_increment, mutated.history_increment);
        assert_eq!(
            built.congestion_aware_planning,
            mutated.congestion_aware_planning
        );
        assert_eq!(built.cost_probing, mutated.cost_probing);
        assert_eq!(built.validate, mutated.validate);
        // The remaining builders cover engine/mode/strategy/cost/maze.
        let cfg = RouterConfig::cugr()
            .with_engine(crate::PatternEngine::ParallelCpu { workers: 2 })
            .with_pattern_mode(PatternMode::HybridAll)
            .with_rrr_strategy(RrrStrategy::Sequential)
            .with_cost(CostParams::default())
            .with_maze(MazeConfig::default());
        assert_eq!(cfg.rrr_strategy, RrrStrategy::Sequential);
        assert_eq!(cfg.pattern_mode, PatternMode::HybridAll);
    }

    #[test]
    fn outcome_trace_carries_run_summary_without_recorder() {
        let design = overflowing_design();
        let outcome = Router::new(RouterConfig::cugr()).run(&design).expect("ok");
        // Telemetry off: no timeline, but the summary is there.
        assert!(!outcome.trace.has_timeline());
        assert!(!outcome.trace.nets_ripped().is_empty());
        assert!(outcome.trace.pattern_batches() >= 1);
        assert!(outcome.trace.pattern_shorts() > 0.0);
        #[allow(deprecated)]
        {
            assert_eq!(outcome.trace.nets_ripped(), &outcome.nets_ripped[..]);
            assert_eq!(outcome.trace.pattern_shorts(), outcome.pattern_shorts);
            assert_eq!(outcome.trace.pattern_batches(), outcome.pattern_batches);
        }
    }

    #[test]
    fn recorded_run_traces_all_stages() {
        let design = overflowing_design();
        let recorder = Recorder::enabled();
        let outcome = Router::new(RouterConfig::fastgr_l().with_validate(true))
            .run_with_recorder(&design, &recorder)
            .expect("ok");
        let trace = &outcome.trace;
        assert!(trace.has_timeline());
        let span_names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(span_names.contains(&"planning"), "{span_names:?}");
        assert!(span_names.contains(&"pattern"), "{span_names:?}");
        assert!(span_names.contains(&"rrr.iter0"), "{span_names:?}");
        // One kernel event per launch, one launch per batch.
        assert_eq!(trace.kernels().len(), trace.pattern_batches());
        assert_eq!(
            trace.counter("pattern.kernel_launches"),
            Some(trace.pattern_batches() as f64)
        );
        // One rrr.nets_ripped sample per iteration that ran.
        let samples = trace
            .counter_samples()
            .iter()
            .filter(|s| s.name == "rrr.nets_ripped")
            .count();
        assert_eq!(samples, trace.nets_ripped().len());
        // Executor task events were recorded (task-graph strategy).
        assert!(trace.events().iter().any(|e| e.cat == "task"));
    }

    #[test]
    fn counter_values_identical_across_recorded_and_plain_runs() {
        let design = overflowing_design();
        let config = RouterConfig::fastgr_l();
        let plain = Router::new(config).run(&design).expect("ok");
        let recorder = Recorder::enabled();
        let traced = Router::new(config)
            .run_with_recorder(&design, &recorder)
            .expect("ok");
        // Telemetry must not perturb the routing result.
        assert_eq!(plain.routes, traced.routes);
        assert_eq!(plain.trace.nets_ripped(), traced.trace.nets_ripped());
        assert_eq!(plain.trace.pattern_batches(), traced.trace.pattern_batches());
        assert_eq!(plain.trace.pattern_shorts(), traced.trace.pattern_shorts());
    }

    #[test]
    fn hybrid_variant_does_not_increase_shorts() {
        let design = congested_design();
        let l = Router::new(RouterConfig::fastgr_l())
            .run(&design)
            .expect("ok");
        let h = Router::new(RouterConfig::fastgr_h())
            .run(&design)
            .expect("ok");
        // The headline claim (27.855% shorts reduction) is checked in the
        // experiment harness; here we only require "not worse" on this
        // small fixture, with a small tolerance for noise.
        assert!(
            h.metrics.shorts <= l.metrics.shorts * 1.1 + 1.0,
            "hybrid shorts {} vs L shorts {}",
            h.metrics.shorts,
            l.metrics.shorts
        );
    }
}
