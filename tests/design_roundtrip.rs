//! Property tests of the design interchange format and generator
//! determinism across crates.

use fastgr::design::{Design, Generator, GeneratorParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_generated_design_round_trips(
        seed in 0u64..10_000,
        nets in 1usize..200,
        side in 8u16..48,
        layers in 3u8..9,
    ) {
        let design = Generator::new(GeneratorParams {
            name: format!("rt-{seed}"),
            width: side,
            height: side,
            layers,
            num_nets: nets,
            seed,
            ..GeneratorParams::default()
        })
        .generate();
        let text = design.to_text();
        let back = Design::from_text(&text).expect("own output must parse");
        prop_assert_eq!(design, back);
    }

    #[test]
    fn generation_is_stable_per_seed(seed in 0u64..10_000) {
        let p = GeneratorParams { seed, num_nets: 64, ..GeneratorParams::default() };
        let a = Generator::new(p.clone()).generate();
        let b = Generator::new(p).generate();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn suite_designs_round_trip() {
    for spec in fastgr::design::suite().into_iter().take(2) {
        let design = spec.generate();
        let back = Design::from_text(&design.to_text()).expect("parses");
        assert_eq!(design, back, "{} did not round trip", spec.name);
    }
}

#[test]
fn corrupted_text_is_rejected_not_panicking() {
    let design = Generator::tiny(3).generate();
    let text = design.to_text();
    // Mutate every line in turn into garbage; the parser must return Err
    // (never panic) for each corruption.
    let lines: Vec<&str> = text.lines().collect();
    for i in 0..lines.len().min(40) {
        let mut corrupted: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        corrupted[i] = "garbage tokens here".to_string();
        let joined = corrupted.join("\n");
        let _ = Design::from_text(&joined); // must not panic
    }
}
