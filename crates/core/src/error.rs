//! Error type of the FastGR router.

use std::error::Error;
use std::fmt;

use fastgr_grid::GridError;
use fastgr_maze::MazeError;

/// Errors reported by the FastGR router.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RouteError {
    /// The design's grid could not be built or mutated.
    Grid(GridError),
    /// Maze routing failed during rip-up and reroute.
    Maze(MazeError),
    /// The design has too few metal layers for 3-D pattern routing (at
    /// least one routable layer per direction is required, i.e. 3 layers
    /// counting the pin layer).
    TooFewLayers {
        /// Number of layers in the design.
        layers: u8,
    },
    /// A net admits no finite-cost pattern (should not occur on designs
    /// with both routing directions available).
    NoFinitePattern {
        /// The dense id of the offending net.
        net: u32,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Grid(e) => write!(f, "grid error: {e}"),
            RouteError::Maze(e) => write!(f, "maze routing error: {e}"),
            RouteError::TooFewLayers { layers } => write!(
                f,
                "design has {layers} layers but 3-D pattern routing needs at least 3"
            ),
            RouteError::NoFinitePattern { net } => {
                write!(f, "net n{net} admits no finite-cost routing pattern")
            }
        }
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RouteError::Grid(e) => Some(e),
            RouteError::Maze(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for RouteError {
    fn from(e: GridError) -> Self {
        RouteError::Grid(e)
    }
}

impl From<MazeError> for RouteError {
    fn from(e: MazeError) -> Self {
        RouteError::Maze(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = RouteError::from(MazeError::EmptyNet);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("maze"));
    }

    #[test]
    fn grid_variant_wraps_source() {
        let grid_err = GridError::InvalidDimensions {
            width: 0,
            height: 0,
            layers: 0,
        };
        let e = RouteError::from(grid_err.clone());
        assert_eq!(e, RouteError::Grid(grid_err.clone()));
        let source = e.source().expect("grid errors carry a source");
        assert_eq!(source.to_string(), grid_err.to_string());
        assert!(e.to_string().contains("grid error"));
    }

    #[test]
    fn question_mark_converts_both_sources() {
        // `?` must lift stage errors without manual mapping.
        fn from_grid() -> Result<(), RouteError> {
            Err(GridError::InvalidDimensions {
                width: 1,
                height: 1,
                layers: 1,
            })?
        }
        fn from_maze() -> Result<(), RouteError> {
            Err(MazeError::EmptyNet)?
        }
        assert!(matches!(from_grid(), Err(RouteError::Grid(_))));
        assert!(matches!(from_maze(), Err(RouteError::Maze(_))));
    }

    #[test]
    fn leaf_variants_have_no_source() {
        assert!(RouteError::TooFewLayers { layers: 2 }.source().is_none());
        assert!(RouteError::NoFinitePattern { net: 7 }.source().is_none());
    }

    #[test]
    fn layer_error_mentions_requirement() {
        let e = RouteError::TooFewLayers { layers: 2 };
        assert!(e.to_string().contains("at least 3"));
    }
}
