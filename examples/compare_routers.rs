//! Compare the three router variants (CUGR baseline, FastGR_L, FastGR_H)
//! on one congested suite benchmark — a one-design slice of Tables VII–IX.
//!
//! ```text
//! cargo run --release --example compare_routers [benchmark-name]
//! ```

use fastgr::core::{Router, RouterConfig};
use fastgr::design::BenchmarkSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s18t5m".to_owned());
    let spec = BenchmarkSpec::find(&name)
        .ok_or_else(|| format!("unknown benchmark {name:?}; see `fastgr::design::suite()`"))?;
    let design = spec.generate();
    println!("{design} (analogue of ICCAD2019 {})\n", spec.paper_analogue);

    let variants = [
        ("CUGR (baseline)", RouterConfig::cugr()),
        ("FastGR_L", RouterConfig::fastgr_l()),
        ("FastGR_H", RouterConfig::fastgr_h()),
    ];

    let mut baseline_total = None;
    for (label, config) in variants {
        let outcome = Router::new(config).run(&design)?;
        let total = outcome.timings.total_seconds();
        let speedup = baseline_total
            .map(|b: f64| format!("{:.2}x", b / total))
            .unwrap_or_else(|| "1.00x".to_owned());
        baseline_total.get_or_insert(total);
        println!("{label}");
        println!("  quality:  {}", outcome.metrics);
        println!("  timings:  {}", outcome.timings);
        println!("  speedup:  {speedup} over the baseline");
        println!("  ripped:   {:?}", outcome.trace.nets_ripped());
        println!();
    }
    Ok(())
}
