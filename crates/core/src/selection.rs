//! The selection technique of FastGR_H (paper Section IV-D).
//!
//! Applying the hybrid-shape kernel to *every* two-pin net hurts both
//! runtime (a handful of giant nets generate thousands of candidate bend
//! pairs) and quality (small nets routed first grab resources the large
//! nets need). FastGR_H therefore splits two-pin nets by bounding-box HPWL
//! into small / medium / large classes and applies the hybrid kernel only
//! to the medium class; small and large nets use the L-shape kernel.

use std::fmt;

/// Size class of a two-pin net under the selection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetClass {
    /// `hpwl <= t1`: routed with the L-shape kernel (~99% of nets).
    Small,
    /// `t1 < hpwl <= t2`: routed with the hybrid-shape kernel (~1%).
    Medium,
    /// `hpwl > t2`: routed with the L-shape kernel (~0.1%).
    Large,
}

impl fmt::Display for NetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetClass::Small => "small",
            NetClass::Medium => "medium",
            NetClass::Large => "large",
        })
    }
}

/// The two HPWL thresholds `t1 < t2` splitting two-pin nets into classes.
///
/// The paper picks `t1 = 100`, `t2 = 500` on the ICCAD2019 grids (up to a
/// few thousand G-cells per side); our suite is 10-20x smaller linearly,
/// so the scaled defaults are `t1 = 4`, `t2 = 80` (calibrated once on
/// `s18t5m`; Fig. 12 is reproduced by sweeping `t2`).
///
/// # Example
///
/// ```
/// use fastgr_core::{NetClass, SelectionThresholds};
///
/// let sel = SelectionThresholds::default();
/// assert_eq!(sel.classify(3), NetClass::Small);
/// assert_eq!(sel.classify(25), NetClass::Medium);
/// assert_eq!(sel.classify(500), NetClass::Large);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionThresholds {
    /// Small/medium boundary (inclusive on the small side).
    pub t1: u32,
    /// Medium/large boundary (inclusive on the medium side).
    pub t2: u32,
}

impl Default for SelectionThresholds {
    fn default() -> Self {
        Self { t1: 4, t2: 80 }
    }
}

impl SelectionThresholds {
    /// Creates thresholds, validating `t1 <= t2`.
    ///
    /// # Panics
    ///
    /// Panics if `t1 > t2`.
    pub fn new(t1: u32, t2: u32) -> Self {
        assert!(t1 <= t2, "selection thresholds must satisfy t1 <= t2");
        Self { t1, t2 }
    }

    /// Classifies a two-pin net by its bounding-box HPWL.
    pub fn classify(&self, hpwl: u32) -> NetClass {
        if hpwl <= self.t1 {
            NetClass::Small
        } else if hpwl <= self.t2 {
            NetClass::Medium
        } else {
            NetClass::Large
        }
    }
}

impl fmt::Display for SelectionThresholds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t1 = {}, t2 = {}", self.t1, self.t2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_inclusive_downwards() {
        let s = SelectionThresholds::new(10, 50);
        assert_eq!(s.classify(10), NetClass::Small);
        assert_eq!(s.classify(11), NetClass::Medium);
        assert_eq!(s.classify(50), NetClass::Medium);
        assert_eq!(s.classify(51), NetClass::Large);
        assert_eq!(s.classify(0), NetClass::Small);
    }

    #[test]
    #[should_panic(expected = "t1 <= t2")]
    fn inverted_thresholds_panic() {
        let _ = SelectionThresholds::new(60, 50);
    }

    #[test]
    fn equal_thresholds_eliminate_medium() {
        let s = SelectionThresholds::new(10, 10);
        assert_eq!(s.classify(10), NetClass::Small);
        assert_eq!(s.classify(11), NetClass::Large);
    }

    #[test]
    fn display_shows_thresholds() {
        assert_eq!(
            SelectionThresholds::default().to_string(),
            "t1 = 4, t2 = 80"
        );
    }
}
