//! Integration and property tests of the 2-D + layer-assignment flow
//! against the 3-D router on shared designs.

use fastgr::assign::TwoDFlow;
use fastgr::core::{LayerUsage, Router, RouterConfig};
use fastgr::design::{Design, Generator, GeneratorParams};
use fastgr::grid::CostParams;
use proptest::prelude::*;

fn run_two_d(design: &Design) -> (fastgr::grid::GridGraph, Vec<fastgr::grid::Route>) {
    let mut graph = design.build_graph(CostParams::default()).expect("valid");
    let routes = TwoDFlow::new().run(design, &mut graph).expect("assignable");
    (graph, routes)
}

#[test]
fn two_d_flow_routes_a_suite_benchmark() {
    let design = fastgr::design::BenchmarkSpec::find("s18t5")
        .expect("known")
        .generate();
    let (graph, routes) = run_two_d(&design);
    assert_eq!(routes.len(), design.nets().len());
    for (net, route) in design.nets().iter().zip(&routes) {
        assert!(route.is_connected(), "net {} broken", net.name());
    }
    // Demand equals committed union geometry.
    let wl: u64 = routes.iter().map(|r| r.wirelength()).sum();
    assert_eq!(graph.report().total_wire_demand, wl as f64);
}

#[test]
fn two_d_and_three_d_agree_on_wirelength_scale() {
    // Both flows route L-shaped trees, so total wirelength must be close
    // (layer choice cannot change 2-D geometry length by much).
    let design = Generator::tiny(17).generate();
    let (_, routes2d) = run_two_d(&design);
    let config = RouterConfig::cugr().with_rrr_iterations(0);
    let outcome3d = Router::new(config).run(&design).expect("routable");
    let wl2 = routes2d.iter().map(|r| r.wirelength()).sum::<u64>() as f64;
    let wl3 = outcome3d.metrics.wirelength as f64;
    assert!((wl2 - wl3).abs() / wl3 < 0.05, "2d {wl2} vs 3d {wl3}");
}

#[test]
fn layer_usage_respects_directions_for_both_flows() {
    let design = Generator::tiny(23).generate();
    let (_, routes2d) = run_two_d(&design);
    let outcome3d = Router::new(RouterConfig::fastgr_l())
        .run(&design)
        .expect("ok");
    for routes in [&routes2d, &outcome3d.routes] {
        let usage = LayerUsage::from_routes(design.layers(), routes);
        // Pin layer 0 never carries wire.
        assert_eq!(usage.wirelength(0), 0);
        for route in routes.iter() {
            for s in route.segments() {
                let horizontal = s.from.y == s.to.y;
                // Layer direction convention: odd layers horizontal.
                assert_eq!(s.layer % 2 == 1, horizontal, "segment {s} direction");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn two_d_flow_invariants_on_random_designs(seed in 0u64..2_000) {
        let design = Generator::new(GeneratorParams {
            name: format!("prop-{seed}"),
            width: 20,
            height: 20,
            layers: 6,
            num_nets: 120,
            capacity: 3.0,
            hotspots: 2,
            hotspot_affinity: 0.4,
            blockages: 1,
            seed,
        })
        .generate();
        let (graph, routes) = run_two_d(&design);
        for (net, route) in design.nets().iter().zip(&routes) {
            prop_assert!(route.is_connected());
            let pins = net.distinct_positions();
            if pins.len() > 1 {
                let touched = route.touched_points();
                for pin in pins {
                    prop_assert!(touched.contains(&pin.on_layer(0)));
                }
            }
        }
        let wl: u64 = routes.iter().map(|r| r.wirelength()).sum();
        prop_assert_eq!(graph.report().total_wire_demand, wl as f64);
    }
}
