//! FLUTE-substitute Steiner tree construction with edge shifting.
//!
//! Pipeline (paper Fig. 5, "pattern routing planning"):
//!
//! 1. deduplicate pin G-cells;
//! 2. Prim MST over the pins under Manhattan distance;
//! 3. greedy **median Steinerisation**: for every parent with two children
//!    routed separately, insert the component-wise median point when it
//!    shortens the tree (this converts the MST towards an RSMT — the
//!    classical Steiner-point insertion FLUTE would give us via lookup);
//! 4. **edge shifting**: move Steiner nodes to the median of their
//!    neighbours while it reduces wirelength (CUGR's tree optimisation).

use fastgr_design::Net;
use fastgr_grid::Point2;

use crate::tree::RouteTree;

fn median3(a: u16, b: u16, c: u16) -> u16 {
    a.max(b).min(a.max(c)).min(b.max(c))
}

fn median_point(a: Point2, b: Point2, c: Point2) -> Point2 {
    Point2::new(median3(a.x, b.x, c.x), median3(a.y, b.y, c.y))
}

/// Working representation during construction: parent-linked nodes.
#[derive(Debug, Clone)]
struct BuildNode {
    position: Point2,
    parent: Option<usize>,
    children: Vec<usize>,
    is_pin: bool,
}

/// Builds rectilinear Steiner trees for nets.
///
/// # Example
///
/// ```
/// use fastgr_design::{Net, NetId, Pin};
/// use fastgr_grid::Point2;
/// use fastgr_steiner::SteinerBuilder;
///
/// // Three pins forming a T: the optimal tree uses a Steiner point.
/// let net = Net::new(NetId(0), "t", vec![
///     Pin::new(Point2::new(0, 0), 0),
///     Pin::new(Point2::new(8, 0), 0),
///     Pin::new(Point2::new(4, 5), 0),
/// ]);
/// let tree = SteinerBuilder::new().build(&net);
/// assert_eq!(tree.wirelength(), 13); // HPWL-optimal for this instance
/// ```
#[derive(Debug, Clone, Default)]
pub struct SteinerBuilder {
    max_passes: usize,
    density: Option<DensityMap>,
}

/// A congestion density field consulted by the edge-shifting passes.
#[derive(Debug, Clone)]
struct DensityMap {
    values: Vec<f64>,
    width: u16,
    weight: f64,
}

impl DensityMap {
    fn at(&self, p: Point2) -> f64 {
        self.values
            .get(p.y as usize * self.width as usize + p.x as usize)
            .copied()
            .unwrap_or(0.0)
    }
}

impl SteinerBuilder {
    /// Creates a builder with the default number of optimisation passes.
    pub fn new() -> Self {
        Self {
            max_passes: 4,
            density: None,
        }
    }

    /// Overrides the number of Steinerisation / edge-shifting passes
    /// (0 disables optimisation, leaving the raw MST).
    pub fn with_passes(mut self, passes: usize) -> Self {
        self.max_passes = passes;
        self
    }

    /// Makes edge shifting congestion-aware (CUGR's planning behaviour,
    /// Fig. 5 of the paper): a Steiner node move must reduce
    /// `wirelength + weight * density(position)` rather than wirelength
    /// alone, so trees bend away from predicted hot spots. `density` is a
    /// row-major `height x width` field (e.g. a RUDY map); `weight` scales
    /// density units into G-cell-edge units.
    pub fn with_density(mut self, density: Vec<f64>, width: u16, weight: f64) -> Self {
        self.density = Some(DensityMap {
            values: density,
            width,
            weight,
        });
        self
    }

    /// Builds the routing tree for `net`.
    pub fn build(&self, net: &Net) -> RouteTree {
        let positions = net.distinct_positions();
        self.build_from_positions(&positions)
    }

    /// Builds the routing tree over explicit distinct G-cell positions.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn build_from_positions(&self, positions: &[Point2]) -> RouteTree {
        assert!(!positions.is_empty(), "need at least one position");
        if positions.len() == 1 {
            return RouteTree::singleton(positions[0]);
        }

        let mut nodes = prim_mst(positions);
        for _ in 0..self.max_passes {
            let a = steinerize_pass(&mut nodes);
            let b = edge_shift_pass(&mut nodes, self.density.as_ref());
            if !a && !b {
                break;
            }
        }
        prune_useless_steiner(&mut nodes);
        to_route_tree(nodes)
    }
}

/// Prim MST over the positions; node 0 becomes the root.
fn prim_mst(positions: &[Point2]) -> Vec<BuildNode> {
    let n = positions.len();
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![u32::MAX; n];
    let mut best_link = vec![0usize; n];
    let mut nodes: Vec<BuildNode> = positions
        .iter()
        .map(|&position| BuildNode {
            position,
            parent: None,
            children: Vec::new(),
            is_pin: true,
        })
        .collect();

    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = positions[0].manhattan_distance(positions[j]);
        best_link[j] = 0;
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = u32::MAX;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < pick_d {
                pick_d = best_dist[j];
                pick = j;
            }
        }
        in_tree[pick] = true;
        nodes[pick].parent = Some(best_link[pick]);
        nodes[best_link[pick]].children.push(pick);
        for j in 0..n {
            if !in_tree[j] {
                let d = positions[pick].manhattan_distance(positions[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_link[j] = pick;
                }
            }
        }
    }
    nodes
}

/// One pass of greedy median Steinerisation. Returns whether anything
/// improved.
fn steinerize_pass(nodes: &mut Vec<BuildNode>) -> bool {
    let mut improved = false;
    let mut i = 0;
    while i < nodes.len() {
        // Collect sibling pairs under node i lazily; the child list can
        // change as we insert Steiner nodes.
        'retry: loop {
            let children = nodes[i].children.clone();
            if children.len() < 2 {
                break;
            }
            let p = nodes[i].position;
            for a_idx in 0..children.len() {
                for b_idx in a_idx + 1..children.len() {
                    let (a, b) = (children[a_idx], children[b_idx]);
                    let (pa, pb) = (nodes[a].position, nodes[b].position);
                    let s = median_point(p, pa, pb);
                    if s == p {
                        continue;
                    }
                    let old = p.manhattan_distance(pa) + p.manhattan_distance(pb);
                    let new = p.manhattan_distance(s)
                        + s.manhattan_distance(pa)
                        + s.manhattan_distance(pb);
                    if new < old {
                        // Insert Steiner node s between p and {a, b}.
                        let s_idx = nodes.len();
                        nodes.push(BuildNode {
                            position: s,
                            parent: Some(i),
                            children: vec![a, b],
                            is_pin: false,
                        });
                        nodes[i].children.retain(|&c| c != a && c != b);
                        nodes[i].children.push(s_idx);
                        nodes[a].parent = Some(s_idx);
                        nodes[b].parent = Some(s_idx);
                        improved = true;
                        continue 'retry;
                    }
                }
            }
            break;
        }
        i += 1;
    }
    improved
}

/// One pass of edge shifting: move every Steiner node to the component-wise
/// median of its neighbours when that reduces the (optionally
/// congestion-weighted) cost.
fn edge_shift_pass(nodes: &mut [BuildNode], density: Option<&DensityMap>) -> bool {
    let mut improved = false;
    for i in 0..nodes.len() {
        if nodes[i].is_pin {
            continue;
        }
        let mut xs: Vec<u16> = Vec::new();
        let mut ys: Vec<u16> = Vec::new();
        if let Some(p) = nodes[i].parent {
            xs.push(nodes[p].position.x);
            ys.push(nodes[p].position.y);
        }
        for &c in &nodes[i].children {
            xs.push(nodes[c].position.x);
            ys.push(nodes[c].position.y);
        }
        if xs.is_empty() {
            continue;
        }
        xs.sort_unstable();
        ys.sort_unstable();
        let cost = |at: Point2, nodes: &[BuildNode], i: usize| -> f64 {
            let mut c = 0.0;
            if let Some(p) = nodes[i].parent {
                c += at.manhattan_distance(nodes[p].position) as f64;
            }
            for &ch in &nodes[i].children {
                c += at.manhattan_distance(nodes[ch].position) as f64;
            }
            if let Some(d) = density {
                c += d.weight * d.at(at);
            }
            c
        };
        // Candidates: the exact median plus, when congestion-aware, its
        // axis-aligned neighbours within the median range (so the node can
        // slide off a hot spot without lengthening the tree).
        let median = Point2::new(xs[xs.len() / 2], ys[ys.len() / 2]);
        let mut candidates = vec![median];
        if density.is_some() {
            let (xlo, xhi) = (xs[0], xs[xs.len() - 1]);
            let (ylo, yhi) = (ys[0], ys[ys.len() - 1]);
            if median.x > xlo {
                candidates.push(Point2::new(median.x - 1, median.y));
            }
            if median.x < xhi {
                candidates.push(Point2::new(median.x + 1, median.y));
            }
            if median.y > ylo {
                candidates.push(Point2::new(median.x, median.y - 1));
            }
            if median.y < yhi {
                candidates.push(Point2::new(median.x, median.y + 1));
            }
        }
        let here = cost(nodes[i].position, nodes, i);
        let mut best = here;
        let mut best_at = nodes[i].position;
        for cand in candidates {
            if cand == nodes[i].position {
                continue;
            }
            let c = cost(cand, nodes, i);
            if c < best - 1e-12 {
                best = c;
                best_at = cand;
            }
        }
        if best_at != nodes[i].position {
            nodes[i].position = best_at;
            improved = true;
        }
    }
    improved
}

/// Removes Steiner nodes that ended up colinear-useless: degree <= 2 and
/// coincident with a neighbour, splicing them out.
fn prune_useless_steiner(nodes: &mut Vec<BuildNode>) {
    for i in 0..nodes.len() {
        if nodes[i].is_pin {
            continue;
        }
        let Some(p) = nodes[i].parent else { continue };
        // Coincident with parent: move children up.
        if nodes[i].position == nodes[p].position {
            let children = std::mem::take(&mut nodes[i].children);
            for &c in &children {
                nodes[c].parent = Some(p);
            }
            nodes[p].children.extend(children);
            nodes[p].children.retain(|&c| c != i);
            nodes[i].parent = None; // detached; dropped in `to_route_tree`
        }
    }
    let _ = nodes; // compaction happens in `to_route_tree`
}

/// Converts build nodes into the public tree, dropping detached nodes and
/// re-rooting at the first pin.
fn to_route_tree(nodes: Vec<BuildNode>) -> RouteTree {
    // Collect reachable nodes from root 0.
    let mut keep = Vec::new();
    let mut stack = vec![0usize];
    let mut seen = vec![false; nodes.len()];
    while let Some(i) = stack.pop() {
        if seen[i] {
            continue;
        }
        seen[i] = true;
        keep.push(i);
        for &c in &nodes[i].children {
            if nodes[c].parent == Some(i) {
                stack.push(c);
            }
        }
    }
    keep.sort_unstable();
    let remap: std::collections::HashMap<usize, u32> = keep
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new as u32))
        .collect();

    let mut positions = Vec::with_capacity(keep.len());
    let mut parents = vec![0u32; keep.len()];
    let mut is_pin = Vec::with_capacity(keep.len());
    for (new, &old) in keep.iter().enumerate() {
        positions.push(nodes[old].position);
        is_pin.push(nodes[old].is_pin);
        parents[new] = nodes[old]
            .parent
            .and_then(|p| remap.get(&p).copied())
            .unwrap_or(0);
    }
    RouteTree::from_parents(positions, parents, is_pin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::{NetId, Pin};
    use proptest::prelude::*;

    fn net_of(points: &[(u16, u16)]) -> Net {
        Net::new(
            NetId(0),
            "n",
            points
                .iter()
                .map(|&(x, y)| Pin::new(Point2::new(x, y), 0))
                .collect(),
        )
    }

    #[test]
    fn two_pin_tree_is_direct() {
        let t = SteinerBuilder::new().build(&net_of(&[(0, 0), (5, 3)]));
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.wirelength(), 8);
    }

    #[test]
    fn t_shape_gets_a_steiner_point() {
        // Pins (0,0), (8,0), (4,5): MST costs 8 + 9 = 17, RSMT costs 13.
        let t = SteinerBuilder::new().build(&net_of(&[(0, 0), (8, 0), (4, 5)]));
        assert_eq!(t.wirelength(), 13);
        assert!(
            t.nodes().iter().any(|n| !n.is_pin),
            "expected a Steiner node"
        );
    }

    #[test]
    fn steinerisation_never_hurts() {
        let pts = [(0, 0), (9, 1), (4, 8), (2, 3), (7, 7)];
        let raw = SteinerBuilder::new().with_passes(0).build(&net_of(&pts));
        let opt = SteinerBuilder::new().build(&net_of(&pts));
        assert!(opt.wirelength() <= raw.wirelength());
    }

    #[test]
    fn duplicate_pins_collapse() {
        let t = SteinerBuilder::new().build(&net_of(&[(3, 3), (3, 3), (3, 3)]));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.wirelength(), 0);
    }

    #[test]
    fn colinear_pins_form_a_path_with_exact_length() {
        let t = SteinerBuilder::new().build(&net_of(&[(0, 0), (4, 0), (9, 0), (2, 0)]));
        assert_eq!(t.wirelength(), 9);
    }

    #[test]
    fn density_steers_steiner_nodes_off_hot_spots() {
        // T-shaped net whose natural Steiner point lands at (4, 0); make
        // that column hot and the node must slide sideways.
        let pts = [(0, 0), (8, 0), (4, 5)];
        let width = 16u16;
        let mut density = vec![0.0f64; 16 * 16];
        for y in 0..16 {
            density[y * 16 + 4] = 50.0;
        }
        let plain = SteinerBuilder::new().build(&net_of(&pts));
        let aware = SteinerBuilder::new()
            .with_density(density, width, 1.0)
            .build(&net_of(&pts));
        let steiner_x = |t: &RouteTree| t.nodes().iter().find(|n| !n.is_pin).map(|n| n.position.x);
        assert_eq!(steiner_x(&plain), Some(4));
        let shifted = steiner_x(&aware).expect("steiner node exists");
        assert_ne!(shifted, 4, "node must leave the hot column");
        // The detour cost is bounded: wirelength grows by at most the slide.
        assert!(aware.wirelength() <= plain.wirelength() + 2);
    }

    proptest! {
        #[test]
        fn tree_spans_all_pins_and_is_connected(
            pts in proptest::collection::hash_set((0u16..40, 0u16..40), 1..12)
        ) {
            let pts: Vec<(u16, u16)> = pts.into_iter().collect();
            let net = net_of(&pts);
            let tree = SteinerBuilder::new().build(&net);

            // Every distinct pin position appears as a pin node.
            for p in net.distinct_positions() {
                prop_assert!(
                    tree.nodes().iter().any(|n| n.is_pin && n.position == p),
                    "pin {p} missing from tree"
                );
            }
            // Edge count invariant.
            prop_assert_eq!(tree.ordered_edges().len(), tree.node_count() - 1);
            // Bottom-up order: children before parents.
            let edges = tree.ordered_edges();
            for (i, e) in edges.iter().enumerate() {
                for c in tree.child_edges(*e) {
                    let ci = edges.iter().position(|x| x.child == c.child).unwrap();
                    prop_assert!(ci < i);
                }
            }
        }

        #[test]
        fn wirelength_at_least_hpwl(
            pts in proptest::collection::hash_set((0u16..60, 0u16..60), 2..10)
        ) {
            let pts: Vec<(u16, u16)> = pts.into_iter().collect();
            let net = net_of(&pts);
            let tree = SteinerBuilder::new().build(&net);
            // A connected rectilinear tree must cover the full x- and
            // y-extent of the pins, so HPWL is a lower bound; the MST from
            // pass 0 is an upper bound.
            prop_assert!(tree.wirelength() >= net.hpwl() as u64);
            let mst = SteinerBuilder::new().with_passes(0).build(&net);
            prop_assert!(tree.wirelength() <= mst.wirelength());
        }
    }
}
