//! Zero-copy host-mapped buffer model.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A host buffer mapped into the device address space ("zero-copy", see the
/// CUDA best-practices guide cited as reference 31 in the paper).
///
/// FastGR uses zero-copy to keep CPU–GPU transfer time under one second per
/// design; this model therefore charges *no* per-access simulated time and
/// merely accounts how many bytes crossed the boundary, so experiments can
/// report the (negligible) transfer volume.
///
/// # Example
///
/// ```
/// use fastgr_gpu::ZeroCopyBuffer;
///
/// let mut buf = ZeroCopyBuffer::from_vec(vec![0.0f64; 128]);
/// buf[3] = 1.5;                  // host write through the mapping
/// buf.note_device_read();        // kernel consumed the buffer once
/// assert_eq!(buf.mapped_bytes(), 128 * 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroCopyBuffer<T> {
    data: Vec<T>,
    device_reads: usize,
    device_writes: usize,
}

impl<T> ZeroCopyBuffer<T> {
    /// Wraps an existing vector as a mapped buffer.
    pub fn from_vec(data: Vec<T>) -> Self {
        Self {
            data,
            device_reads: 0,
            device_writes: 0,
        }
    }

    /// Records that a kernel read the whole buffer once.
    pub fn note_device_read(&mut self) {
        self.device_reads += 1;
    }

    /// Records that a kernel wrote the whole buffer once.
    pub fn note_device_write(&mut self) {
        self.device_writes += 1;
    }

    /// Total bytes that crossed the host/device boundary so far.
    pub fn mapped_bytes(&self) -> usize {
        (self.device_reads + self.device_writes) * self.data.len() * std::mem::size_of::<T>()
    }

    /// Extracts the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

impl<T> Deref for ZeroCopyBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for ZeroCopyBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> fmt::Display for ZeroCopyBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "zero-copy buffer: {} elements, {} mapped bytes",
            self.data.len(),
            self.mapped_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounts_reads_and_writes() {
        let mut b = ZeroCopyBuffer::from_vec(vec![0u32; 10]);
        assert_eq!(b.mapped_bytes(), 0);
        b.note_device_read();
        b.note_device_write();
        assert_eq!(b.mapped_bytes(), 2 * 10 * 4);
    }

    #[test]
    fn derefs_like_a_slice() {
        let mut b = ZeroCopyBuffer::from_vec(vec![1, 2, 3]);
        b[1] = 9;
        assert_eq!(&b[..], &[1, 9, 3]);
        assert_eq!(b.into_inner(), vec![1, 9, 3]);
    }
}
