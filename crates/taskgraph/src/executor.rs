//! Taskflow-substitute dependency-graph executor.
//!
//! The paper executes its ordered task graph with Taskflow [30], a C++
//! library that runs a task as soon as all its dependencies completed, using
//! a pool of CPU workers. This module reimplements that execution semantics
//! on top of a crossbeam channel work queue with atomic dependency counters.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::channel;

use crate::schedule::Schedule;

/// Statistics from one executor run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
    /// Number of worker threads used.
    pub workers: usize,
}

impl fmt::Display for ExecutorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks on {} workers in {:.3} ms",
            self.tasks,
            self.workers,
            self.wall_seconds * 1e3
        )
    }
}

/// A dependency-graph executor with a fixed worker pool.
///
/// Tasks become *ready* when their last predecessor completes; ready tasks
/// are distributed to workers through an MPMC channel, so independent tasks
/// run with maximum parallelism while every conflict edge of the
/// [`Schedule`] is honoured.
///
/// # Example
///
/// ```
/// use fastgr_grid::{Point2, Rect};
/// use fastgr_taskgraph::{ConflictGraph, Executor, Schedule};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let boxes = vec![Rect::new(Point2::new(0, 0), Point2::new(1, 1)); 1];
/// let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
/// let schedule = Schedule::build(&[0], &conflicts);
/// let counter = AtomicUsize::new(0);
/// let stats = Executor::new(4).run(&schedule, |_task| {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(counter.into_inner(), 1);
/// assert_eq!(stats.tasks, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Creates an executor with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(workers)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task of `schedule`, calling `task_fn(task_id)` with all
    /// dependencies already completed. Blocks until the whole graph has
    /// executed.
    ///
    /// `task_fn` runs concurrently from multiple threads; share state via
    /// interior mutability (the schedule guarantees conflicting tasks never
    /// overlap, so per-net state needs no locking — only globally shared
    /// accumulators do).
    pub fn run<F>(&self, schedule: &Schedule, task_fn: F) -> ExecutorStats
    where
        F: Fn(u32) + Sync,
    {
        let n = schedule.task_count();
        let start = Instant::now();
        if n == 0 {
            return ExecutorStats {
                tasks: 0,
                wall_seconds: 0.0,
                workers: self.workers,
            };
        }

        const SHUTDOWN: u32 = u32::MAX;
        let pending: Vec<AtomicU32> = (0..n as u32)
            .map(|t| AtomicU32::new(schedule.in_degree(t)))
            .collect();
        let completed = AtomicUsize::new(0);
        let (tx, rx) = channel::unbounded::<u32>();
        for t in 0..n as u32 {
            if schedule.in_degree(t) == 0 {
                tx.send(t).expect("queue open");
            }
        }

        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = rx.clone();
                let tx = tx.clone();
                let pending = &pending;
                let completed = &completed;
                let task_fn = &task_fn;
                scope.spawn(move || {
                    while let Ok(t) = rx.recv() {
                        if t == SHUTDOWN {
                            break;
                        }
                        task_fn(t);
                        for &s in schedule.successors(t) {
                            if pending[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                tx.send(s).expect("queue open");
                            }
                        }
                        if completed.fetch_add(1, Ordering::AcqRel) + 1 == n {
                            for _ in 0..self.workers {
                                tx.send(SHUTDOWN).expect("queue open");
                            }
                        }
                    }
                });
            }
        });

        ExecutorStats {
            tasks: n,
            wall_seconds: start.elapsed().as_secs_f64(),
            workers: self.workers,
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::ConflictGraph;
    use fastgr_grid::{Point2, Rect};
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;

    fn rect(x0: u16, y0: u16, x1: u16, y1: u16) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    fn schedule_of(boxes: &[Rect]) -> Schedule {
        let conflicts = ConflictGraph::from_bounding_boxes(boxes);
        let order: Vec<u32> = (0..boxes.len() as u32).collect();
        Schedule::build(&order, &conflicts)
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let boxes: Vec<Rect> = (0..50).map(|i| rect(i * 2, 0, i * 2 + 3, 3)).collect(); // overlapping chain
        let schedule = schedule_of(&boxes);
        let counts: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let stats = Executor::new(4).run(&schedule, |t| {
            counts[t as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.tasks, 50);
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn dependencies_are_honoured() {
        // Chain 0 <- 1 <- 2 (all overlap): record completion order.
        let boxes = vec![rect(0, 0, 9, 9), rect(1, 1, 8, 8), rect(2, 2, 7, 7)];
        let schedule = schedule_of(&boxes);
        let log = Mutex::new(Vec::new());
        Executor::new(4).run(&schedule, |t| {
            log.lock().push(t);
        });
        assert_eq!(log.into_inner(), vec![0, 1, 2]);
    }

    #[test]
    fn parallel_run_matches_sequential_result() {
        // Each task adds its id to a per-task slot; conflicting tasks share
        // a slot and must serialise — result is order-independent because
        // the schedule fixes the order.
        let boxes: Vec<Rect> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    rect(0, 0, 5, 5)
                } else {
                    rect(20, 20, 25, 25)
                }
            })
            .collect();
        let schedule = schedule_of(&boxes);
        let run = |workers: usize| {
            let acc = Mutex::new(vec![0u64; 2]);
            Executor::new(workers).run(&schedule, |t| {
                let slot = (t % 2) as usize;
                let mut g = acc.lock();
                g[slot] = g[slot] * 31 + t as u64;
            });
            acc.into_inner()
        };
        // Within one conflict class execution order is fixed by the
        // schedule, so the fold value must be identical.
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn empty_schedule_returns_immediately() {
        let schedule = schedule_of(&[]);
        let stats = Executor::new(4).run(&schedule, |_| panic!("no tasks to run"));
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn single_worker_is_a_valid_degenerate_pool() {
        let boxes = vec![rect(0, 0, 1, 1), rect(5, 5, 6, 6)];
        let schedule = schedule_of(&boxes);
        let count = AtomicUsize::new(0);
        Executor::new(0).run(&schedule, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 2);
    }

    #[test]
    fn executor_reports_workers() {
        assert_eq!(Executor::new(3).workers(), 3);
        assert!(Executor::with_available_parallelism().workers() >= 1);
    }
}
