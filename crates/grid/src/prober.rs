//! Prefix-sum cost prober: O(1) wire-run and via-stack cost probes.
//!
//! The pattern kernels (Eqs. 5–14 of the paper) evaluate
//! [`GridGraph::wire_run_cost`]-style straight-run costs inside `L×L` layer
//! loops per candidate bend, which makes every probe an O(run-length) walk
//! over raw congestion state. CUGR (whose 3-D cost model this grid
//! inherits) and GAMER-style GPU routers instead hoist congestion costs
//! into per-layer prefix sums so that any run cost is a two-lookup
//! difference. [`CostProber`] is that cache:
//!
//! * per layer, the Q44.20 fixed-point ([`super::graph::COST_FRAC_BITS`])
//!   quantised `wire_edge_cost + history` of every unit edge is prefix-
//!   summed along its row (horizontal layers) or column (vertical layers);
//! * per G-cell, the quantised via hop costs are prefix-summed over layers.
//!
//! Because each edge cost is quantised *before* summation, a prefix
//! difference is an exact integer subtraction — bit-identical to the naive
//! quantised walk ([`GridGraph::wire_run_cost_fixed`]) and independent of
//! evaluation order, so determinism across worker counts holds by
//! construction rather than by floating-point luck.
//!
//! # Batch-staleness contract
//!
//! Probes reflect the congestion state at the last [`CostProber::build`] /
//! [`CostProber::refresh`], *not* the live demand cells. The pattern stage
//! refreshes the cache between batches (and between nets in sequential
//! mode): within one batch every net deliberately sees the same congestion
//! snapshot, matching the paper's batch semantics. [`CostProber::refresh`]
//! consumes the grid's [`DirtyTracker`](GridGraph::dirty_edges) bitsets to
//! re-sum only the rows/columns/via stacks whose demand changed since the
//! last refresh — O(changed rows), not O(grid).
//!
//! **Caveat**: demand commits are dirty-tracked; history and capacity
//! mutations ([`GridGraph::add_history_on_overflow`],
//! [`GridGraph::fill_capacity`], …) are not. After mutating history or
//! capacity, rebuild from scratch with [`CostProber::build`] — the pattern
//! stage never mutates either mid-stage, so its per-batch refresh is sound.

use std::sync::atomic::{AtomicU64, Ordering};

use fastgr_gpu::HostPool;

use crate::graph::fixed_cost_to_f64;
use crate::layer::Direction;
use crate::{GridGraph, Point2};

/// Reusable dirty-harvest scratch; sized once at build so the steady-state
/// [`CostProber::refresh`] path allocates nothing.
#[derive(Debug)]
struct RebuildScratch {
    /// Global wire-row indices pending rebuild (deduplicated).
    rows: Vec<u32>,
    /// Generation stamp per global wire row.
    row_gen: Vec<u32>,
    /// Flat G-cell positions whose via stack is pending rebuild.
    via_cells: Vec<u32>,
    /// Generation stamp per flat G-cell position.
    via_gen: Vec<u32>,
    /// Current harvest generation (stamps equal to this are "seen").
    generation: u32,
}

/// Prefix-sum cache of quantised wire and via costs over a [`GridGraph`].
///
/// See the module docs above for the exactness and staleness contracts.
///
/// # Example
///
/// ```
/// use fastgr_grid::{CostParams, CostProber, GridGraph, Point2};
///
/// # fn main() -> Result<(), fastgr_grid::GridError> {
/// let mut g = GridGraph::new(8, 8, 4, CostParams::default())?;
/// g.fill_capacity(4.0);
/// let prober = CostProber::build(&g);
/// let a = Point2::new(0, 2);
/// let b = Point2::new(5, 2);
/// // A probe is an O(1) prefix difference, bit-identical to the naive
/// // quantised walk.
/// assert_eq!(prober.wire_run_cost(1, a, b), g.wire_run_cost_fixed(1, a, b));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CostProber {
    width: usize,
    height: usize,
    layers: usize,
    /// `width * height`; one layer's worth of prefix cells.
    wh: usize,
    /// Preferred direction per layer (copied so probes never touch the
    /// graph).
    dirs: Vec<Direction>,
    /// Inclusive-exclusive prefix sums of quantised wire edge costs.
    ///
    /// Horizontal layer `l`, row `y`: `wire_pref[l*wh + y*w + x]` is the sum
    /// of edge costs for `x' < x` in that row. Vertical layer `l`, column
    /// `x`: `wire_pref[l*wh + x*h + y]` sums `y' < y`. Cells are atomics
    /// only so disjoint rows can be rebuilt from pool workers under
    /// `forbid(unsafe_code)`; all accesses are relaxed and the pool's
    /// scoped-thread join supplies the happens-before edge.
    wire_pref: Vec<AtomicU64>,
    /// `via_pref[l*wh + pos]` = sum of quantised via hop costs below layer
    /// `l` at flat cell `pos`, for `l` in `0..layers`.
    via_pref: Vec<AtomicU64>,
    /// Per-layer offset into the global wire-row numbering (horizontal
    /// layers contribute `height` rows, vertical layers `width` columns);
    /// length `layers + 1`.
    row_off: Vec<usize>,
    /// Number of probes served (diagnostic counter, relaxed).
    probes: AtomicU64,
    /// Number of builds + refreshes performed.
    builds: u64,
    /// Total rows/columns/via stacks re-summed across all builds.
    rows_rebuilt: u64,
    scratch: RebuildScratch,
}

impl CostProber {
    /// Builds a full cache of `graph`'s current cost state, serially.
    pub fn build(graph: &GridGraph) -> Self {
        Self::build_with_pool(graph, &HostPool::new(1))
    }

    /// Builds a full cache of `graph`'s current cost state, rebuilding
    /// rows/columns in parallel on `pool`.
    pub fn build_with_pool(graph: &GridGraph, pool: &HostPool) -> Self {
        let (w, h) = (graph.width() as usize, graph.height() as usize);
        let layers = graph.num_layers() as usize;
        let wh = w * h;
        let dirs: Vec<Direction> = (0..layers)
            .map(|l| graph.layer(l as u8).direction)
            .collect();
        let mut row_off = Vec::with_capacity(layers + 1);
        let mut total_rows = 0usize;
        for dir in &dirs {
            row_off.push(total_rows);
            total_rows += match dir {
                Direction::Horizontal => h,
                Direction::Vertical => w,
            };
        }
        row_off.push(total_rows);
        let mut prober = Self {
            width: w,
            height: h,
            layers,
            wh,
            dirs,
            wire_pref: (0..layers * wh).map(|_| AtomicU64::new(0)).collect(),
            via_pref: (0..layers * wh).map(|_| AtomicU64::new(0)).collect(),
            row_off,
            probes: AtomicU64::new(0),
            builds: 0,
            rows_rebuilt: 0,
            scratch: RebuildScratch {
                rows: Vec::with_capacity(total_rows),
                row_gen: vec![0; total_rows],
                via_cells: Vec::with_capacity(wh),
                via_gen: vec![0; wh],
                generation: 0,
            },
        };
        prober.rebuild_all(graph, pool);
        prober
    }

    /// Re-sums every row/column and via stack (used at build time and after
    /// non-dirty-tracked mutations such as history updates).
    fn rebuild_all(&mut self, graph: &GridGraph, pool: &HostPool) {
        let total_rows = self.row_off[self.layers];
        let this: &Self = self;
        pool.for_each(total_rows, |r| this.rebuild_wire_row_into(graph, r));
        pool.for_each(self.wh, |pos| this.rebuild_via_column_into(graph, pos));
        self.builds += 1;
        self.rows_rebuilt += (total_rows + self.wh) as u64;
    }

    /// Incrementally refreshes the cache against `graph`'s current demand,
    /// re-summing only the rows/columns and via stacks marked dirty since
    /// the last [`GridGraph::clear_dirty`], then clears the dirty bitsets.
    ///
    /// Steady-state allocation-free: the harvest buffers are sized at build
    /// time and reused. Rebuilds run in parallel on `pool`.
    pub fn refresh(&mut self, graph: &mut GridGraph, pool: &HostPool) {
        debug_assert_eq!(self.wh, graph.width() as usize * graph.height() as usize);
        // Advance the harvest generation; on wrap, reset the stamp arrays
        // so stale stamps can never collide with a reused generation value.
        self.scratch.generation = self.scratch.generation.wrapping_add(1);
        if self.scratch.generation == 0 {
            self.scratch.row_gen.fill(0);
            self.scratch.via_gen.fill(0);
            self.scratch.generation = 1;
        }
        let generation = self.scratch.generation;
        self.scratch.rows.clear();
        self.scratch.via_cells.clear();

        // Harvest dirty wire edges into distinct global rows. Bits arrive
        // in ascending order, so a single layer cursor suffices.
        let (w, h) = (self.width, self.height);
        let mut layer = 0usize;
        for (wi, word) in graph.dirty_words().iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            while bits != 0 {
                let bit = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                while layer + 1 < self.layers && bit >= graph.edge_offset(layer + 1) {
                    layer += 1;
                }
                let idx = bit - graph.edge_offset(layer);
                let row = match self.dirs[layer] {
                    Direction::Horizontal => idx / (w - 1),
                    Direction::Vertical => idx / (h - 1),
                };
                let global_row = self.row_off[layer] + row;
                if self.scratch.row_gen[global_row] != generation {
                    self.scratch.row_gen[global_row] = generation;
                    self.scratch.rows.push(global_row as u32);
                }
            }
        }

        // Harvest dirty via cells into distinct flat positions.
        for (wi, word) in graph.via_dirty_words().iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            while bits != 0 {
                let bit = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let pos = bit % self.wh;
                if self.scratch.via_gen[pos] != generation {
                    self.scratch.via_gen[pos] = generation;
                    self.scratch.via_cells.push(pos as u32);
                }
            }
        }

        let this: &Self = self;
        let g: &GridGraph = graph;
        pool.for_each(this.scratch.rows.len(), |i| {
            this.rebuild_wire_row_into(g, this.scratch.rows[i] as usize);
        });
        pool.for_each(this.scratch.via_cells.len(), |i| {
            this.rebuild_via_column_into(g, this.scratch.via_cells[i] as usize);
        });
        self.builds += 1;
        self.rows_rebuilt += (self.scratch.rows.len() + self.scratch.via_cells.len()) as u64;
        graph.clear_dirty();
    }

    /// Re-sums one global wire row/column's prefix cells from `graph`.
    fn rebuild_wire_row_into(&self, graph: &GridGraph, global_row: usize) {
        let mut layer = self.layers - 1;
        while self.row_off[layer] > global_row {
            layer -= 1;
        }
        let r = global_row - self.row_off[layer];
        let (w, h) = (self.width, self.height);
        let mut acc = 0u64;
        match self.dirs[layer] {
            Direction::Horizontal => {
                let ebase = r * (w - 1);
                let pbase = layer * self.wh + r * w;
                for x in 0..w {
                    self.wire_pref[pbase + x].store(acc, Ordering::Relaxed);
                    if x + 1 < w {
                        acc += graph.wire_edge_cost_fixed_at(layer, ebase + x);
                    }
                }
            }
            Direction::Vertical => {
                let ebase = r * (h - 1);
                let pbase = layer * self.wh + r * h;
                for y in 0..h {
                    self.wire_pref[pbase + y].store(acc, Ordering::Relaxed);
                    if y + 1 < h {
                        acc += graph.wire_edge_cost_fixed_at(layer, ebase + y);
                    }
                }
            }
        }
    }

    /// Re-sums one G-cell's via-stack prefix cells from `graph`.
    fn rebuild_via_column_into(&self, graph: &GridGraph, pos: usize) {
        let mut acc = 0u64;
        for l in 0..self.layers {
            self.via_pref[l * self.wh + pos].store(acc, Ordering::Relaxed);
            if l + 1 < self.layers {
                acc += graph.via_edge_cost_fixed_at(l, pos);
            }
        }
    }

    /// O(1) probe of the cached cost `cw(a, b, l)` of a straight run on
    /// layer `l` — the prefix-difference equivalent of
    /// [`GridGraph::wire_run_cost_fixed`], bit-identical to it whenever the
    /// cache is fresh.
    ///
    /// Returns 0 for `a == b` and `f64::INFINITY` for runs that leave the
    /// grid or fight the layer's preferred direction, exactly like the
    /// naive walk.
    pub fn wire_run_cost(&self, l: u8, a: Point2, b: Point2) -> f64 {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if a == b {
            return 0.0;
        }
        let (w, h) = (self.width, self.height);
        if (l as usize) >= self.layers
            || a.x as usize >= w
            || a.y as usize >= h
            || b.x as usize >= w
            || b.y as usize >= h
        {
            return f64::INFINITY;
        }
        let dir = self.dirs[l as usize];
        let run_dir = if a.y == b.y {
            Direction::Horizontal
        } else if a.x == b.x {
            Direction::Vertical
        } else {
            return f64::INFINITY;
        };
        if dir != run_dir {
            return f64::INFINITY;
        }
        let raw = match dir {
            Direction::Horizontal => {
                let pbase = l as usize * self.wh + a.y as usize * w;
                let (x0, x1) = (a.x.min(b.x) as usize, a.x.max(b.x) as usize);
                self.wire_pref[pbase + x1].load(Ordering::Relaxed)
                    - self.wire_pref[pbase + x0].load(Ordering::Relaxed)
            }
            Direction::Vertical => {
                let pbase = l as usize * self.wh + a.x as usize * h;
                let (y0, y1) = (a.y.min(b.y) as usize, a.y.max(b.y) as usize);
                self.wire_pref[pbase + y1].load(Ordering::Relaxed)
                    - self.wire_pref[pbase + y0].load(Ordering::Relaxed)
            }
        };
        fixed_cost_to_f64(raw)
    }

    /// O(1) probe of the cached via-stack cost `cv(p, l1, l2)` — the
    /// prefix-difference equivalent of [`GridGraph::via_stack_cost_fixed`].
    ///
    /// Returns 0 when `l1 == l2`; `f64::INFINITY` when out of range.
    pub fn via_stack_cost(&self, p: Point2, l1: u8, l2: u8) -> f64 {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let (lo, hi) = (l1.min(l2) as usize, l1.max(l2) as usize);
        if hi >= self.layers || p.x as usize >= self.width || p.y as usize >= self.height {
            return f64::INFINITY;
        }
        let pos = p.y as usize * self.width + p.x as usize;
        let raw = self.via_pref[hi * self.wh + pos].load(Ordering::Relaxed)
            - self.via_pref[lo * self.wh + pos].load(Ordering::Relaxed);
        fixed_cost_to_f64(raw)
    }

    /// Number of probes served since construction.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Number of cache builds + incremental refreshes performed.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Total rows/columns/via stacks re-summed across all builds and
    /// refreshes (a full build counts every row plus every via stack).
    pub fn rows_rebuilt(&self) -> u64 {
        self.rows_rebuilt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostParams, Route, Segment, Via};

    fn graph() -> GridGraph {
        let mut g = GridGraph::new(10, 8, 5, CostParams::default()).expect("valid dims");
        g.fill_capacity(4.0);
        g
    }

    #[test]
    fn probe_matches_naive_fixed_walk_exactly() {
        let g = graph();
        let prober = CostProber::build(&g);
        for l in 0..5u8 {
            for y in 0..8u16 {
                let a = Point2::new(1, y);
                let b = Point2::new(7, y);
                assert_eq!(prober.wire_run_cost(l, a, b), g.wire_run_cost_fixed(l, a, b));
            }
        }
        let p = Point2::new(3, 4);
        for lo in 0..5u8 {
            for hi in lo..5u8 {
                assert_eq!(
                    prober.via_stack_cost(p, lo, hi),
                    g.via_stack_cost_fixed(p, lo, hi)
                );
            }
        }
    }

    #[test]
    fn probe_matches_illegal_run_semantics() {
        let g = graph();
        let prober = CostProber::build(&g);
        // Wrong direction (layer 1 is horizontal).
        assert!(prober
            .wire_run_cost(1, Point2::new(0, 0), Point2::new(0, 4))
            .is_infinite());
        // Diagonal.
        assert!(prober
            .wire_run_cost(1, Point2::new(0, 0), Point2::new(3, 3))
            .is_infinite());
        // Out of grid / out of layers.
        assert!(prober
            .wire_run_cost(1, Point2::new(0, 0), Point2::new(40, 0))
            .is_infinite());
        assert!(prober
            .wire_run_cost(9, Point2::new(0, 0), Point2::new(3, 0))
            .is_infinite());
        assert!(prober.via_stack_cost(Point2::new(3, 3), 1, 9).is_infinite());
        // Degenerate probes are free.
        assert_eq!(prober.wire_run_cost(1, Point2::new(2, 2), Point2::new(2, 2)), 0.0);
        assert_eq!(prober.via_stack_cost(Point2::new(2, 2), 3, 3), 0.0);
    }

    #[test]
    fn refresh_tracks_commits_incrementally() {
        let mut g = graph();
        g.clear_dirty();
        let pool = HostPool::new(1);
        let mut prober = CostProber::build_with_pool(&g, &pool);
        let full_rows = prober.rows_rebuilt();

        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(1, 2), Point2::new(6, 2)));
        route.push_via(Via::new(Point2::new(6, 2), 1, 2));
        route.push_segment(Segment::new(2, Point2::new(6, 2), Point2::new(6, 5)));
        g.commit(&route).expect("valid");

        prober.refresh(&mut g, &pool);
        // One wire row on layer 1, one column on layer 2, one via cell.
        assert_eq!(prober.rows_rebuilt(), full_rows + 3);
        assert_eq!(prober.builds(), 2);
        assert_eq!(g.dirty_edges(), 0);

        let a = Point2::new(0, 2);
        let b = Point2::new(9, 2);
        assert_eq!(prober.wire_run_cost(1, a, b), g.wire_run_cost_fixed(1, a, b));
        assert_eq!(
            prober.via_stack_cost(Point2::new(6, 2), 0, 4),
            g.via_stack_cost_fixed(Point2::new(6, 2), 0, 4)
        );

        // A refresh with nothing dirty rebuilds nothing.
        prober.refresh(&mut g, &pool);
        assert_eq!(prober.rows_rebuilt(), full_rows + 3);
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let mut g = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(0, 3), Point2::new(8, 3)));
        g.commit(&route).expect("valid");
        let serial = CostProber::build(&g);
        let parallel = CostProber::build_with_pool(&g, &HostPool::new(4));
        for y in 0..8u16 {
            let a = Point2::new(0, y);
            let b = Point2::new(9, y);
            assert_eq!(serial.wire_run_cost(1, a, b), parallel.wire_run_cost(1, a, b));
        }
        assert_eq!(
            serial.via_stack_cost(Point2::new(4, 3), 0, 4),
            parallel.via_stack_cost(Point2::new(4, 3), 0, 4)
        );
    }

    #[test]
    fn probe_counter_counts() {
        let g = graph();
        let prober = CostProber::build(&g);
        assert_eq!(prober.probes(), 0);
        prober.wire_run_cost(1, Point2::new(0, 0), Point2::new(3, 0));
        prober.via_stack_cost(Point2::new(0, 0), 0, 2);
        assert_eq!(prober.probes(), 2);
    }
}
