//! Minimal std-only substitute for the subset of `criterion` that the
//! fastgr bench targets use, for offline builds (no crates.io access).
//!
//! Implements the same API shape — `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter` — with a simple adaptive timing loop instead of
//! criterion's statistical machinery: each benchmark warms up, then runs
//! until `FASTGR_BENCH_MS` milliseconds (default 300) elapse, and reports
//! the mean iteration time on stdout. Good enough to compare alternatives
//! and track trends; not a statistics suite.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    measure_for: Duration,
    last: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few iterations to populate caches and page in code.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut batch = 1u64;
        while elapsed < self.measure_for {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
            // Grow batches so the Instant overhead stays negligible.
            batch = batch.saturating_mul(2).min(4096);
        }
        self.last = Some(Measurement {
            mean: elapsed / iters.max(1) as u32,
            iters,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample budget (accepted for API parity; the
    /// shim's time budget is controlled by `FASTGR_BENCH_MS`).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Finishes the group (a no-op in the shim; exists for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("FASTGR_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Self {
            measure_for: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.label.clone();
        self.run_one(&label, |b| f(b));
        self
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            measure_for: self.measure_for,
            last: None,
        };
        f(&mut bencher);
        match bencher.last {
            Some(m) => println!(
                "bench {label:<48} {:>12.3?} /iter ({} iters)",
                m.mean, m.iters
            ),
            None => println!("bench {label:<48} (no measurement)"),
        }
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran > 0);
    }
}
