//! Minimal std-only substitute for the subset of `proptest` that fastgr
//! uses, for offline builds (no crates.io access in the container).
//!
//! Provides deterministic random-input testing with the same *API shape*
//! as proptest — `proptest! { #[test] fn f(x in strategy) { .. } }`,
//! `prop_assert!`, `Strategy::prop_map`, `proptest::collection::{vec,
//! hash_set}` — but without shrinking: a failing case reports its inputs
//! and the RNG seed instead of minimising them. Inputs are derived from a
//! per-test deterministic seed, so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing a `HashSet` of values from `element`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::hash_set`: a set with size in `size`.
    ///
    /// Like proptest, the target size is sampled first and elements are
    /// drawn until the set reaches it; a bounded retry count guards
    /// against value spaces smaller than the requested size.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng).max(self.size.start);
            let mut set = HashSet::with_capacity(len);
            let mut attempts = 0usize;
            while set.len() < len && attempts < 64 * (len + 1) {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            assert!(
                set.len() >= self.size.start,
                "value space too small for requested set size {}",
                self.size.start
            );
            set
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property-test case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion for property-test cases (compares by reference).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion for property-test cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `#[test] fn name(x in strategy, ..)`
/// becomes a regular test that samples its inputs `Config::cases` times
/// from a deterministic per-test RNG and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block)*
    ) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default())
            $($(#[$meta])* fn $name ( $($arg in $strategy),+ ) $body)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let case_seed = rng.state();
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property test case {}/{} failed (rng state {:#x}): {}",
                            case + 1,
                            config.cases,
                            case_seed,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 0u8..2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn tuples_and_collections_sample(
            pair in (0u16..10, 0u16..10),
            v in crate::collection::vec(0u32..100, 1..5),
            s in crate::collection::hash_set((0u16..20, 0u16..20), 2..6),
        ) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(s.len() >= 2);
        }

        #[test]
        fn prop_map_transforms(n in (1u8..4).prop_map(|v| v * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30, "got {n}");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let strat = crate::collection::vec(0u64..1000, 3..10);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
