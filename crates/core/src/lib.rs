//! The FastGR global-routing framework (the paper's contribution).
//!
//! FastGR is a two-stage global router accelerated for CPU–GPU platforms:
//!
//! 1. a **pattern routing stage** that routes every net with GPU-friendly
//!    3-D pattern kernels — [`PatternMode::LShape`] (FastGR_L) or the
//!    hybrid-shape kernel with the selection technique
//!    ([`PatternMode::Hybrid`], FastGR_H) — batched by the task graph
//!    scheduler and executed on the (simulated) device;
//! 2. **rip-up-and-reroute iterations** that re-route the violating nets
//!    with 3-D maze routing, parallelised by the same task graph scheduler
//!    (or the baseline batch-barrier strategy, for comparison).
//!
//! The main entry point is [`Router`] with a [`RouterConfig`] preset:
//!
//! ```
//! use fastgr_core::{Router, RouterConfig};
//! use fastgr_design::Generator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = Generator::tiny(1).generate();
//! let outcome = Router::new(RouterConfig::fastgr_l()).run(&design)?;
//! println!("score = {}", outcome.metrics.score());
//! assert!(outcome.metrics.wirelength > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod dp;
mod error;
mod guides;
mod metrics;
mod ordering;
mod pattern;
mod router;
mod rrr;
mod selection;

pub use analysis::{estimate_congestion, rudy_map, CongestionEstimate};
pub use dp::{DpScratch, DpSummary, NetDpResult, PatternDp, PatternMode};
pub use error::RouteError;
pub use guides::{GuideBox, RouteGuides};
pub use metrics::{LayerUsage, QualityMetrics, ScoreWeights};
pub use ordering::SortingScheme;
pub use pattern::{PatternEngine, PatternOutcome, PatternStage};
pub use router::{Router, RouterConfig, RoutingOutcome, StageTimings};
pub use rrr::{RrrOutcome, RrrStage, RrrStrategy};
pub use selection::{NetClass, SelectionThresholds};
