//! Regenerates the paper's tables and figures on the scaled synthetic
//! suite.
//!
//! ```text
//! reproduce [--full] [EXPERIMENT...]
//!
//! EXPERIMENT: fig3 table3 table5 table6 table7 table8 table9 table10
//!             fig12 summary all          (default: all)
//! --full:     run the whole 12-benchmark suite instead of the 4 smallest
//! ```

use std::env;
use std::process::ExitCode;

use fastgr_bench::experiments as ex;

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce [--full] [fig3|table3|table5|table6|table7|table8|table9|table10|fig12|ablations|summary|all]..."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut quick = true;
    let mut wanted: Vec<String> = Vec::new();
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--full" => quick = false,
            "--quick" => quick = true,
            "--help" | "-h" => return usage(),
            name => wanted.push(name.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }

    let run_overall_group = wanted.iter().any(|w| {
        matches!(
            w.as_str(),
            "all" | "table7" | "table8" | "table9" | "table10" | "summary"
        )
    });
    // Tables VII-X and the summary share one expensive sweep.
    let overall = run_overall_group.then(|| ex::run_overall(quick));

    for w in &wanted {
        match w.as_str() {
            "all" => {
                let overall = overall.as_ref().expect("computed above");
                println!("{}", ex::table3());
                println!("{}", ex::fig3(quick));
                println!("{}", ex::table5(quick));
                println!("{}", ex::fig12());
                println!("{}", ex::table6(quick));
                println!("{}", ex::table7_from(overall));
                println!("{}", ex::table8_from(overall));
                println!("{}", ex::table9_from(overall));
                println!("{}", ex::table10_from(overall));
                println!("{}", ex::ablations());
                println!("{}", ex::summary_from(overall));
            }
            "fig3" => println!("{}", ex::fig3(quick)),
            "ablations" => println!("{}", ex::ablations()),
            "table3" => println!("{}", ex::table3()),
            "table5" => println!("{}", ex::table5(quick)),
            "fig12" => println!("{}", ex::fig12()),
            "table6" => println!("{}", ex::table6(quick)),
            "table7" => println!("{}", ex::table7_from(overall.as_ref().expect("ready"))),
            "table8" => println!("{}", ex::table8_from(overall.as_ref().expect("ready"))),
            "table9" => println!("{}", ex::table9_from(overall.as_ref().expect("ready"))),
            "table10" => println!("{}", ex::table10_from(overall.as_ref().expect("ready"))),
            "summary" => println!("{}", ex::summary_from(overall.as_ref().expect("ready"))),
            _ => return usage(),
        }
    }
    ExitCode::SUCCESS
}
