//! Verifies the zero-allocation guarantee of the pattern DP hot path:
//! once a [`DpScratch`] and an output [`Route`] have grown to the largest
//! net (one warm-up pass), [`PatternDp::route_net_into`] must not touch
//! the heap at all.
//!
//! This lives in its own integration-test binary because it installs a
//! counting global allocator — unit tests running concurrently in the
//! library binary would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fastgr_core::{DpScratch, PatternDp, PatternMode};
use fastgr_design::Generator;
use fastgr_gpu::HostPool;
use fastgr_grid::{CostParams, CostProber, Point2, Route, Segment};
use fastgr_steiner::SteinerBuilder;

/// Counts every allocation and reallocation passed to the system
/// allocator. Frees are not counted: releasing memory is allowed (and
/// does not happen on the hot path anyway — buffers are recycled).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn route_net_into_is_allocation_free_in_steady_state() {
    let design = Generator::tiny(7).generate();
    let graph = design.build_graph(CostParams::default()).expect("valid");
    let builder = SteinerBuilder::new().with_passes(4);
    let trees: Vec<_> = design.nets().iter().map(|n| builder.build(n)).collect();
    assert!(!trees.is_empty());

    for mode in [
        PatternMode::LShape,
        PatternMode::ZShape,
        PatternMode::HybridAll,
    ] {
        let dp = PatternDp::new(&graph, mode);
        let mut scratch = DpScratch::new();
        let mut route = Route::new();

        // Warm-up pass: grows every scratch table and the route's
        // geometry buffers to their high-water marks.
        for tree in &trees {
            dp.route_net_into(tree, &mut scratch, &mut route)
                .expect("routable");
        }

        // Steady state: routing the whole design again through the same
        // scratch must perform zero heap allocations.
        let before = ALLOCS.load(Ordering::SeqCst);
        for tree in &trees {
            dp.route_net_into(tree, &mut scratch, &mut route)
                .expect("routable");
        }
        let steady = ALLOCS.load(Ordering::SeqCst) - before;
        assert_eq!(
            steady, 0,
            "{mode:?}: {steady} allocations on the steady-state pass"
        );
    }
}

#[test]
fn prober_refresh_is_allocation_free_in_steady_state() {
    let mut graph = fastgr_grid::GridGraph::new(16, 16, 5, CostParams::default()).expect("valid");
    graph.fill_capacity(3.0);
    let pool = HostPool::new(1);
    graph.clear_dirty();
    let mut prober = CostProber::build_with_pool(&graph, &pool);

    let mut route = Route::new();
    route.push_segment(Segment::new(1, Point2::new(2, 3), Point2::new(9, 3)));
    route.push_segment(Segment::new(2, Point2::new(9, 3), Point2::new(9, 8)));

    // Warm-up: the first refresh after a commit touches the harvest
    // buffers' high-water marks for this dirty pattern.
    graph.commit(&route).expect("valid route");
    prober.refresh(&mut graph, &pool);

    // Steady state: the same commit shape must rebuild through the
    // pre-sized scratch without heap traffic.
    let before = ALLOCS.load(Ordering::SeqCst);
    graph.commit(&route).expect("valid route");
    prober.refresh(&mut graph, &pool);
    let steady = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        steady, 0,
        "{steady} allocations on the steady-state refresh"
    );
}
