//! Concurrency contract of the atomic congestion store: any interleaving of
//! `commit_atomic` / `uncommit_atomic` from many threads leaves the demand
//! state bit-identical to the same multiset of operations applied
//! sequentially. Demand updates are exact fixed-point integer additions, so
//! this is an equality test, not an epsilon test.

use proptest::prelude::*;

use fastgr_grid::{CostParams, GridGraph, Point2, Route, Segment, Via};

const W: u16 = 16;
const H: u16 = 16;
const LAYERS: u8 = 5;

fn graph() -> GridGraph {
    let mut g = GridGraph::new(W, H, LAYERS, CostParams::default()).expect("valid dims");
    g.fill_capacity(4.0);
    g
}

/// A random valid route on the test grid (respecting layer directions).
fn arb_route() -> impl Strategy<Value = Route> {
    let seg = (1u8..LAYERS, 0u16..W, 0u16..H, 0u16..W).prop_map(|(layer, a, fixed, b)| {
        if layer % 2 == 1 {
            Segment::new(layer, Point2::new(a, fixed), Point2::new(b, fixed))
        } else {
            Segment::new(layer, Point2::new(fixed, a), Point2::new(fixed, b))
        }
    });
    let via = (0u16..W, 0u16..H, 0u8..LAYERS, 0u8..LAYERS)
        .prop_map(|(x, y, l1, l2)| Via::new(Point2::new(x, y), l1, l2));
    (
        proptest::collection::vec(seg, 0..5),
        proptest::collection::vec(via, 0..3),
    )
        .prop_map(|(segs, vias)| {
            let mut r = Route::new();
            for s in segs {
                r.push_segment(s);
            }
            for v in vias {
                r.push_via(v);
            }
            r
        })
}

/// One thread's worth of work: routes plus a flag for uncommit-after-commit.
type ThreadOps = Vec<(Route, bool)>;

fn arb_thread_ops() -> impl Strategy<Value = ThreadOps> {
    proptest::collection::vec(
        (arb_route(), 0u8..2).prop_map(|(r, u)| (r, u == 1)),
        0..8,
    )
}

/// Asserts bit-identical demand on every wire and via edge of two graphs.
fn assert_demand_identical(a: &GridGraph, b: &GridGraph) {
    for l in 0..LAYERS {
        for y in 0..H {
            for x in 0..W {
                let p = Point2::new(x, y);
                assert_eq!(a.wire_demand(l, p), b.wire_demand(l, p), "wire {l} {p:?}");
                if l + 1 < LAYERS {
                    assert_eq!(a.via_demand(l, p), b.via_demand(l, p), "via {l} {p:?}");
                }
            }
        }
    }
    assert_eq!(a.report(), b.report());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved atomic commits/uncommits from up to 4 threads end up
    /// bit-identical to a sequential ledger of the same operations.
    #[test]
    fn concurrent_updates_match_sequential_ledger(
        per_thread in proptest::collection::vec(arb_thread_ops(), 1..5),
    ) {
        let shared = graph();
        std::thread::scope(|s| {
            for ops in &per_thread {
                let shared = &shared;
                s.spawn(move || {
                    for (route, uncommit_after) in ops {
                        shared.commit_atomic(route).expect("valid route");
                        if *uncommit_after {
                            shared.uncommit_atomic(route).expect("valid route");
                        }
                    }
                });
            }
        });

        let mut ledger = graph();
        for ops in &per_thread {
            for (route, uncommit_after) in ops {
                ledger.commit(route).expect("valid route");
                if *uncommit_after {
                    ledger.uncommit(route).expect("valid route");
                }
            }
        }

        assert_demand_identical(&shared, &ledger);
        // The dirty set is the union of dirtied edges — order independent.
        prop_assert_eq!(shared.dirty_edges(), ledger.dirty_edges());
    }
}

/// Deterministic stress: a balanced mix of commits and uncommits hammering
/// the same few edges from many threads nets out to exactly zero demand.
#[test]
fn balanced_hammering_cancels_exactly() {
    let shared = graph();
    let mut route = Route::new();
    route.push_segment(Segment::new(1, Point2::new(2, 3), Point2::new(9, 3)));
    route.push_via(Via::new(Point2::new(9, 3), 1, 2));
    route.push_segment(Segment::new(2, Point2::new(9, 3), Point2::new(9, 8)));

    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..500 {
                    shared.commit_atomic(&route).expect("valid route");
                    shared.uncommit_atomic(&route).expect("valid route");
                }
            });
        }
    });

    let report = shared.report();
    assert_eq!(report.total_wire_demand, 0.0);
    assert_eq!(report.total_via_demand, 0.0);
    assert_eq!(report.overflowing_edges, 0);
    // Every touched edge is in the dirty set exactly once.
    assert_eq!(shared.dirty_edges(), 12);
    assert!(shared.route_touches_dirty(&route));
}
