//! Correctness tooling for the FastGR scheduler (DESIGN.md §5).
//!
//! The scheduler's claim — conflicting tasks never run concurrently — is
//! the load-bearing invariant of the whole reproduction: every speed-up in
//! the paper rests on batches being independent sets and on the oriented
//! task graph being a DAG. This crate checks that claim from three
//! independent angles instead of trusting the construction:
//!
//! * [`validator`] — **static**: proves a concrete [`Schedule`] is
//!   acyclic, orients every conflict edge, keeps every batch/frontier an
//!   independent set, and accounts work/span correctly. Violations come
//!   back as structured [`Diagnostic`]s with the offending task pair and a
//!   minimal witness path. [`ScheduleView`] supports mutation testing:
//!   deliberately corrupt a schedule and assert the validator rejects it.
//! * [`race`] — **dynamic**: vector-clock happens-before checking over the
//!   instrumentation hooks of the executor ([`RaceChecker`]) and the
//!   simulated device's block pool ([`BlockChecker`]); flags conflicting
//!   pairs whose executions were not strictly ordered by what the run
//!   actually did.
//! * [`lint`] — **source**: workspace rules (`#![forbid(unsafe_code)]`
//!   everywhere, no `unwrap`/`expect` on hot paths, no allocation in the
//!   zero-alloc DP bodies) with an explicit allowlist.
//!
//! `cargo xtask check` drives all three from the command line; the
//! router's `validate` flag runs the static validator inline on every
//! schedule it builds.
//!
//! [`Schedule`]: fastgr_taskgraph::Schedule

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod lint;
pub mod race;
pub mod validator;

pub use diagnostics::{Diagnostic, Severity, ValidationReport};
pub use lint::{lint_file, lint_workspace, parse_allowlist, AllowEntry, Rules};
pub use race::{BlockChecker, RaceChecker};
pub use validator::{validate_batches, validate_schedule, validate_view, ScheduleView};
