//! Steiner tree construction and intranet ordering for FastGR.
//!
//! The modern global router decomposes every multi-pin net into two-pin nets
//! via a rectilinear Steiner tree (paper Section II-B). This crate provides:
//!
//! * [`RouteTree`] — the routing topology: a tree of 2-D G-cell nodes with
//!   one node per pin plus inserted Steiner nodes;
//! * [`SteinerBuilder`] — a FLUTE-substitute constructor: Prim MST over the
//!   pins followed by greedy median Steinerisation and *edge shifting*
//!   (CUGR's tree optimisation, which FastGR's planning stage runs before
//!   scheduling);
//! * bottom-up **DFS intranet ordering** (Section II-D, Fig. 4): the order
//!   in which the pattern-routing dynamic program must process the two-pin
//!   nets so that every child edge is routed before its parent edge.
//!
//! # Example
//!
//! ```
//! use fastgr_design::{Net, NetId, Pin};
//! use fastgr_grid::Point2;
//! use fastgr_steiner::SteinerBuilder;
//!
//! let net = Net::new(NetId(0), "n", vec![
//!     Pin::new(Point2::new(0, 0), 0),
//!     Pin::new(Point2::new(8, 0), 0),
//!     Pin::new(Point2::new(4, 6), 0),
//! ]);
//! let tree = SteinerBuilder::new().build(&net);
//! // A tree over k >= 1 nodes has k - 1 edges, children ordered first.
//! let edges = tree.ordered_edges();
//! assert_eq!(edges.len(), tree.node_count() - 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod tree;

pub use builder::SteinerBuilder;
pub use tree::{RouteTree, TreeEdge, TreeNode};
