//! The two-stage task graph scheduler (paper Section III-B, Fig. 6).

use std::fmt;

use crate::batch::extract_batches;
use crate::conflict::ConflictGraph;

/// An execution-ordered task graph: every conflict edge oriented into a
/// dependency, forming a DAG by construction.
///
/// Stage 1 extracts the **root task batch** (a maximal independent set in
/// the given order); stage 2 orients each conflict edge:
///
/// 1. root task vs non-root task → root task first;
/// 2. two non-root tasks → the task earlier in the sorted order first
///    ("smaller task id", where the id reflects the sorting result).
///
/// Because both rules follow one global priority (root batch first, then
/// sorted position), the orientation is acyclic, so the executor can run it
/// with dependency counting and no deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Tasks in the root batch, in order.
    root_batch: Vec<u32>,
    /// successors[t] = tasks that must wait for `t`.
    successors: Vec<Vec<u32>>,
    /// predecessor count per task.
    in_degree: Vec<u32>,
    /// Global priority of each task (position in root-first order).
    priority: Vec<u32>,
}

impl Schedule {
    /// Builds the schedule for tasks listed in `order` (the sorted net
    /// order) over the given conflict graph.
    ///
    /// # Panics
    ///
    /// Panics if `order` does not cover every task of `conflicts` exactly
    /// once (propagated from [`extract_batches`]).
    pub fn build(order: &[u32], conflicts: &ConflictGraph) -> Self {
        let n = conflicts.task_count();
        assert_eq!(order.len(), n, "order must cover every task");
        let batches = extract_batches(order, conflicts);
        let root_batch = batches.first().cloned().unwrap_or_default();

        // Global priority: root batch first (in order), then everything
        // else in the sorted order.
        let mut priority = vec![u32::MAX; n];
        let mut next = 0u32;
        for &t in &root_batch {
            priority[t as usize] = next;
            next += 1;
        }
        for &t in order {
            if priority[t as usize] == u32::MAX {
                priority[t as usize] = next;
                next += 1;
            }
        }

        let mut successors = vec![Vec::new(); n];
        let mut in_degree = vec![0u32; n];
        for t in 0..n as u32 {
            for &nb in conflicts.neighbors(t) {
                if nb <= t {
                    continue; // handle each edge once
                }
                let (first, second) = if priority[t as usize] < priority[nb as usize] {
                    (t, nb)
                } else {
                    (nb, t)
                };
                successors[first as usize].push(second);
                in_degree[second as usize] += 1;
            }
        }
        for s in &mut successors {
            s.sort_unstable();
        }
        Self {
            root_batch,
            successors,
            in_degree,
            priority,
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.successors.len()
    }

    /// The root task batch (stage 1 of the scheduler).
    pub fn root_batch(&self) -> &[u32] {
        &self.root_batch
    }

    /// The tasks that must wait for `t`.
    pub fn successors(&self, t: u32) -> &[u32] {
        &self.successors[t as usize]
    }

    /// Number of tasks `t` waits for.
    pub fn in_degree(&self, t: u32) -> u32 {
        self.in_degree[t as usize]
    }

    /// The global priority used to orient edges (root batch first, then
    /// sorted order).
    pub fn priority(&self, t: u32) -> u32 {
        self.priority[t as usize]
    }

    /// A topological order (by construction: ascending priority).
    pub fn topo_order(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.task_count() as u32).collect();
        order.sort_by_key(|&t| self.priority[t as usize]);
        order
    }

    /// Every oriented dependency edge `(predecessor, successor)`, each
    /// conflict edge exactly once. The order is by predecessor, then by
    /// ascending successor id.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.successors
            .iter()
            .enumerate()
            .flat_map(|(t, succs)| succs.iter().map(move |&s| (t as u32, s)))
    }

    /// The execution frontiers of the DAG: level 0 holds every task with no
    /// predecessors, level `k + 1` the tasks released once level `k`
    /// completed (Kahn peeling). Tasks inside one level share no dependency
    /// edge, so — with every conflict edge oriented — each level is an
    /// independent set of the conflict graph. Within a level, tasks are in
    /// ascending id order.
    pub fn levels(&self) -> Vec<Vec<u32>> {
        let n = self.task_count();
        let mut in_deg = self.in_degree.clone();
        let mut frontier: Vec<u32> = (0..n as u32).filter(|&t| in_deg[t as usize] == 0).collect();
        let mut levels = Vec::new();
        let mut done = 0usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &t in &frontier {
                for &s in self.successors(t) {
                    in_deg[s as usize] -= 1;
                    if in_deg[s as usize] == 0 {
                        next.push(s);
                    }
                }
            }
            done += frontier.len();
            next.sort_unstable();
            levels.push(std::mem::replace(&mut frontier, next));
        }
        debug_assert_eq!(done, n, "schedule is a DAG by construction");
        levels
    }

    /// Total work and critical-path span for per-task `costs` (seconds, or
    /// any additive unit). The span is what an ideal parallel machine
    /// achieves; `work / span` bounds the parallel speedup of the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len() != task_count()`.
    pub fn work_and_span(&self, costs: &[f64]) -> (f64, f64) {
        assert_eq!(costs.len(), self.task_count(), "one cost per task");
        let work: f64 = costs.iter().sum();
        let mut finish = vec![0.0f64; costs.len()];
        for &t in &self.topo_order() {
            let start = finish[t as usize]; // max over predecessors, accumulated below
            let end = start + costs[t as usize];
            for &s in self.successors(t) {
                if end > finish[s as usize] {
                    finish[s as usize] = end;
                }
            }
            finish[t as usize] = end;
        }
        let span = finish.into_iter().fold(0.0, f64::max);
        (work, span)
    }

    /// Simulated wall-clock of running the schedule greedily on `workers`
    /// identical workers (list scheduling by priority): the executor's
    /// theoretical runtime on a `workers`-core machine.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `costs.len() != task_count()`.
    pub fn simulate_workers(&self, costs: &[f64], workers: usize) -> f64 {
        assert!(workers > 0, "need at least one worker");
        assert_eq!(costs.len(), self.task_count(), "one cost per task");
        let n = self.task_count();
        if n == 0 {
            return 0.0;
        }
        // Event-driven list scheduling: ready tasks by priority, workers by
        // next-free time.
        let mut in_deg = self.in_degree.clone();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>> =
            std::collections::BinaryHeap::new();
        for t in 0..n as u32 {
            if in_deg[t as usize] == 0 {
                ready.push(std::cmp::Reverse((self.priority[t as usize], t)));
            }
        }
        // (finish time, task) min-heap of running tasks; worker pool size.
        let mut running: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
            std::collections::BinaryHeap::new();
        let to_fixed = |x: f64| (x * 1e9) as u64;
        let mut now = 0u64;
        let mut done = 0usize;
        let mut makespan = 0u64;
        while done < n {
            while running.len() < workers {
                let Some(std::cmp::Reverse((_, t))) = ready.pop() else {
                    break;
                };
                running.push(std::cmp::Reverse((now + to_fixed(costs[t as usize]), t)));
            }
            let std::cmp::Reverse((finish, t)) =
                running.pop().expect("progress requires a running task");
            now = finish;
            makespan = makespan.max(finish);
            done += 1;
            for &s in self.successors(t) {
                in_deg[s as usize] -= 1;
                if in_deg[s as usize] == 0 {
                    ready.push(std::cmp::Reverse((self.priority[s as usize], s)));
                }
            }
        }
        makespan as f64 / 1e9
    }
}

impl Schedule {
    /// Renders the oriented task graph in Graphviz DOT format: one node per
    /// task (root-batch tasks drawn as boxes) and one edge per oriented
    /// conflict. Useful for debugging small schedules.
    ///
    /// # Example
    ///
    /// ```
    /// use fastgr_grid::{Point2, Rect};
    /// use fastgr_taskgraph::{ConflictGraph, Schedule};
    ///
    /// let boxes = vec![
    ///     Rect::new(Point2::new(0, 0), Point2::new(4, 4)),
    ///     Rect::new(Point2::new(3, 3), Point2::new(8, 8)),
    /// ];
    /// let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
    /// let schedule = Schedule::build(&[0, 1], &conflicts);
    /// let dot = schedule.to_dot();
    /// assert!(dot.contains("t0 -> t1"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph schedule {\n  rankdir=LR;\n");
        let root: std::collections::HashSet<u32> = self.root_batch.iter().copied().collect();
        for t in 0..self.task_count() as u32 {
            let shape = if root.contains(&t) { "box" } else { "ellipse" };
            let _ = writeln!(
                out,
                "  t{t} [shape={shape} label=\"{t} (p{})\"];",
                self.priority(t)
            );
        }
        for t in 0..self.task_count() as u32 {
            for &s in self.successors(t) {
                let _ = writeln!(out, "  t{t} -> t{s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let edges: usize = self.successors.iter().map(Vec::len).sum();
        write!(
            f,
            "schedule: {} tasks, {} dependencies, root batch {}",
            self.task_count(),
            edges,
            self.root_batch.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_grid::{Point2, Rect};
    use proptest::prelude::*;

    fn rect(x0: u16, y0: u16, x1: u16, y1: u16) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    fn schedule_of(boxes: &[Rect]) -> Schedule {
        let conflicts = ConflictGraph::from_bounding_boxes(boxes);
        let order: Vec<u32> = (0..boxes.len() as u32).collect();
        Schedule::build(&order, &conflicts)
    }

    #[test]
    fn fig6_style_example_orients_root_first() {
        // 0 and 2 independent (root batch), 1 conflicts with both.
        let s = schedule_of(&[rect(0, 0, 4, 4), rect(3, 3, 8, 8), rect(7, 7, 9, 9)]);
        assert_eq!(s.root_batch(), &[0, 2]);
        assert_eq!(s.successors(0), &[1]);
        assert_eq!(s.successors(2), &[1]);
        assert_eq!(s.in_degree(1), 2);
    }

    #[test]
    fn nonroot_pairs_follow_task_id_order() {
        // 0 is root; 1, 2, 3 all conflict with 0 and each other.
        let boxes = vec![
            rect(0, 0, 9, 9),
            rect(1, 1, 8, 8),
            rect(2, 2, 7, 7),
            rect(3, 3, 6, 6),
        ];
        let s = schedule_of(&boxes);
        assert_eq!(s.root_batch(), &[0]);
        // Non-root pair (1, 2): 1 has smaller sorted position -> 1 before 2.
        assert!(s.successors(1).contains(&2));
        assert!(s.successors(2).contains(&3));
        assert!(!s.successors(3).contains(&1));
    }

    #[test]
    fn work_and_span_on_a_chain() {
        let boxes = vec![rect(0, 0, 9, 9), rect(1, 1, 8, 8), rect(2, 2, 7, 7)];
        let s = schedule_of(&boxes);
        let (work, span) = s.work_and_span(&[1.0, 2.0, 3.0]);
        assert_eq!(work, 6.0);
        assert_eq!(span, 6.0); // full chain: no parallelism
    }

    #[test]
    fn work_and_span_on_independent_tasks() {
        let boxes = vec![rect(0, 0, 1, 1), rect(5, 5, 6, 6), rect(10, 10, 11, 11)];
        let s = schedule_of(&boxes);
        let (work, span) = s.work_and_span(&[1.0, 2.0, 3.0]);
        assert_eq!(work, 6.0);
        assert_eq!(span, 3.0);
    }

    #[test]
    fn simulate_workers_interpolates_work_and_span() {
        let boxes = vec![rect(0, 0, 1, 1), rect(5, 5, 6, 6), rect(10, 10, 11, 11)];
        let s = schedule_of(&boxes);
        let costs = [1.0, 2.0, 3.0];
        let one = s.simulate_workers(&costs, 1);
        let many = s.simulate_workers(&costs, 8);
        assert!((one - 6.0).abs() < 1e-6);
        assert!((many - 3.0).abs() < 1e-6);
    }

    #[test]
    fn edges_list_every_dependency_once() {
        let s = schedule_of(&[rect(0, 0, 4, 4), rect(3, 3, 8, 8), rect(7, 7, 9, 9)]);
        let edges: Vec<(u32, u32)> = s.edges().collect();
        assert_eq!(edges, vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn levels_are_kahn_frontiers() {
        // 0 and 2 independent (root batch), 1 conflicts with both.
        let s = schedule_of(&[rect(0, 0, 4, 4), rect(3, 3, 8, 8), rect(7, 7, 9, 9)]);
        assert_eq!(s.levels(), vec![vec![0, 2], vec![1]]);
        // A full chain peels one task per level.
        let chain = schedule_of(&[rect(0, 0, 9, 9), rect(1, 1, 8, 8), rect(2, 2, 7, 7)]);
        assert_eq!(chain.levels(), vec![vec![0], vec![1], vec![2]]);
        // Empty schedule: no levels.
        assert!(schedule_of(&[]).levels().is_empty());
    }

    #[test]
    fn empty_schedule_is_fine() {
        let s = schedule_of(&[]);
        assert_eq!(s.task_count(), 0);
        assert_eq!(s.work_and_span(&[]), (0.0, 0.0));
        assert_eq!(s.simulate_workers(&[], 4), 0.0);
    }

    proptest! {
        /// The orientation must be acyclic: priorities strictly increase
        /// along every dependency edge.
        #[test]
        fn orientation_is_acyclic(
            raw in proptest::collection::vec((0u16..25, 0u16..25, 0u16..10, 0u16..10), 1..40)
        ) {
            let boxes: Vec<Rect> = raw
                .iter()
                .map(|&(x, y, w, h)| rect(x, y, x + w, y + h))
                .collect();
            let s = schedule_of(&boxes);
            for t in 0..s.task_count() as u32 {
                for &succ in s.successors(t) {
                    prop_assert!(s.priority(t) < s.priority(succ));
                }
            }
            // Every conflict edge is oriented exactly once.
            let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
            let edges: usize = (0..s.task_count() as u32)
                .map(|t| s.successors(t).len())
                .sum();
            prop_assert_eq!(edges, conflicts.edge_count());
            prop_assert_eq!(s.edges().count(), conflicts.edge_count());

            // Levels partition the tasks and never split a dependency edge
            // into the same level.
            let levels = s.levels();
            let mut level_of = vec![usize::MAX; s.task_count()];
            for (k, level) in levels.iter().enumerate() {
                for &t in level {
                    prop_assert_eq!(level_of[t as usize], usize::MAX);
                    level_of[t as usize] = k;
                }
            }
            prop_assert!(level_of.iter().all(|&k| k != usize::MAX));
            for (a, b) in s.edges() {
                prop_assert!(level_of[a as usize] < level_of[b as usize]);
            }

            // Span <= work and simulated 1-worker time == work.
            let costs: Vec<f64> = (0..s.task_count()).map(|i| 1.0 + (i % 3) as f64).collect();
            let (work, span) = s.work_and_span(&costs);
            prop_assert!(span <= work + 1e-9);
            let t1 = s.simulate_workers(&costs, 1);
            prop_assert!((t1 - work).abs() < 1e-6);
            let t8 = s.simulate_workers(&costs, 8);
            prop_assert!(t8 + 1e-9 >= span - 1e-6);
            prop_assert!(t8 <= work + 1e-6);
        }
    }
}
