//! Chrome `trace_event` JSON export.
//!
//! The emitted object follows the trace-event format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array of phase-tagged events with microsecond
//! timestamps. Spans become complete (`"X"`) events, worker begin/end
//! markers become `"B"`/`"E"` pairs, kernel launches become `"X"` events
//! on a dedicated device track carrying block counts and modelled time in
//! `args`, and counter samples become `"C"` events.

use std::fmt::Write as _;

use crate::trace::{RunTrace, TRACK_DEVICE};

/// Process id used for every event (single-process pipeline).
const PID: u32 = 1;

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats a timestamp/duration in microseconds with fixed precision so
/// the output is locale-independent and stable to parse.
fn micros(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e6)
}

struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn new() -> Self {
        Self {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Starts one event object with the common fields; the caller appends
    /// extra fields (each prefixed with a comma) and calls `close`.
    fn open(&mut self, name: &str, cat: &str, ph: char, ts_seconds: f64, tid: u32) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str("{\"name\":\"");
        escape_json(name, &mut self.out);
        self.out.push_str("\",\"cat\":\"");
        escape_json(cat, &mut self.out);
        let _ = write!(
            self.out,
            "\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{PID},\"tid\":{tid}",
            micros(ts_seconds)
        );
    }

    fn close(&mut self) {
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

impl RunTrace {
    /// Renders the trace as Chrome `trace_event` JSON, loadable in
    /// `chrome://tracing` or Perfetto. Deterministic fields (counter
    /// values, kernel block counts, modelled seconds) are exact;
    /// timestamps are wall-clock and vary run to run.
    pub fn to_chrome_trace_json(&self) -> String {
        let mut w = EventWriter::new();
        for s in self.spans() {
            w.open(&s.name, s.cat, 'X', s.start_seconds, s.track);
            let _ = write!(w.out, ",\"dur\":{}", micros(s.duration_seconds));
            w.close();
        }
        for e in self.events() {
            let ph = if e.begin { 'B' } else { 'E' };
            w.open(&e.name, e.cat, ph, e.t_seconds, e.track);
            w.close();
        }
        for k in self.kernels() {
            w.open(&k.name, "kernel", 'X', k.start_seconds, TRACK_DEVICE);
            let _ = write!(
                w.out,
                ",\"dur\":{},\"args\":{{\"blocks\":{},\"modeled_us\":{}}}",
                micros(k.host_seconds),
                k.blocks,
                micros(k.modeled_seconds)
            );
            w.close();
        }
        for c in self.counter_samples() {
            w.open(&c.name, "counter", 'C', c.t_seconds, 0);
            let _ = write!(w.out, ",\"args\":{{\"value\":{}}}", c.value);
            w.close();
        }
        // Final counter values as one "C" sample each at the end of the
        // timeline, so totals show up even without explicit samples.
        let t_end = self
            .spans()
            .iter()
            .map(|s| s.start_seconds + s.duration_seconds)
            .fold(0.0f64, f64::max);
        for c in self.counters() {
            w.open(&format!("total.{}", c.name), "counter", 'C', t_end, 0);
            let _ = write!(w.out, ",\"args\":{{\"value\":{}}}", c.value);
            w.close();
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::json::{self, Value};
    use crate::Recorder;

    fn sample_json() -> String {
        let r = Recorder::enabled();
        {
            let _planning = r.span("planning", "stage");
            r.accumulate("nets.planned", 3.0);
        }
        r.begin("block \"0\"\n", "block", 1);
        r.end("block \"0\"\n", "block", 1);
        r.kernel("pattern", 8, 1.5e-4, 2e-3);
        r.counter_sample("rrr.nets_ripped", 12.0);
        let mut trace = r.take_trace();
        trace.set_pattern_summary(2, 0.0);
        trace.to_chrome_trace_json()
    }

    #[test]
    fn emitted_json_parses() {
        let text = sample_json();
        let value = json::parse(&text).expect("trace JSON must parse");
        let events = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 1 span + 2 marks + 1 kernel + 1 sample + 3 totals
        // (nets.planned, pattern.batches, pattern.shorts_after).
        assert_eq!(events.len(), 8);
        for e in events {
            assert!(e.get("name").is_some());
            assert!(e.get("ph").is_some());
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e.get("pid").and_then(Value::as_f64).is_some());
            assert!(e.get("tid").and_then(Value::as_f64).is_some());
        }
    }

    #[test]
    fn phases_and_args_round_trip() {
        let text = sample_json();
        let value = json::parse(&text).expect("parse");
        let events = value.get("traceEvents").and_then(Value::as_array).expect("array");
        let phase_of = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
                .and_then(|e| e.get("ph"))
                .and_then(Value::as_str)
                .map(str::to_owned)
        };
        assert_eq!(phase_of("planning").as_deref(), Some("X"));
        assert_eq!(phase_of("rrr.nets_ripped").as_deref(), Some("C"));
        let kernel = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("pattern"))
            .expect("kernel event");
        assert_eq!(kernel.get("ph").and_then(Value::as_str), Some("X"));
        let args = kernel.get("args").expect("kernel args");
        assert_eq!(args.get("blocks").and_then(Value::as_f64), Some(8.0));
        assert_eq!(args.get("modeled_us").and_then(Value::as_f64), Some(150.0));
        // Escaped name round-trips through the parser.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("block \"0\"\n")));
    }

    #[test]
    fn begin_end_pairs_balance_per_tid() {
        let text = sample_json();
        let value = json::parse(&text).expect("parse");
        let events = value.get("traceEvents").and_then(Value::as_array).expect("array");
        let mut depth = 0i64;
        for e in events {
            match e.get("ph").and_then(Value::as_str) {
                Some("B") => depth += 1,
                Some("E") => {
                    depth -= 1;
                    assert!(depth >= 0, "E without matching B");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }
}
