//! Exactness contract of the prefix-sum cost prober: an O(1) prefix
//! difference is *bit-for-bit equal* to the naive fixed-point gcell walk
//! ([`GridGraph::wire_run_cost_fixed`] / [`GridGraph::via_stack_cost_fixed`])
//! for arbitrary demand and history states. Costs are quantised per edge
//! before summation, so both sides are exact integer sums — these are
//! equality tests, not epsilon tests.

use fastgr_gpu::HostPool;
use proptest::prelude::*;

use fastgr_grid::{CostParams, CostProber, GridGraph, Point2, Route, Segment, Via};

const W: u16 = 12;
const H: u16 = 10;
const LAYERS: u8 = 5;

fn graph() -> GridGraph {
    let mut g = GridGraph::new(W, H, LAYERS, CostParams::default()).expect("valid dims");
    g.fill_capacity(3.0);
    g
}

/// A random valid route on the test grid (respecting layer directions).
fn arb_route() -> impl Strategy<Value = Route> {
    let seg = (1u8..LAYERS, 0u16..W.min(H), 0u16..W.min(H), 0u16..W.min(H)).prop_map(
        |(layer, a, fixed, b)| {
            if layer % 2 == 1 {
                Segment::new(layer, Point2::new(a, fixed), Point2::new(b, fixed))
            } else {
                Segment::new(layer, Point2::new(fixed, a), Point2::new(fixed, b))
            }
        },
    );
    let via = (0u16..W, 0u16..H, 0u8..LAYERS, 0u8..LAYERS)
        .prop_map(|(x, y, l1, l2)| Via::new(Point2::new(x, y), l1, l2));
    (
        proptest::collection::vec(seg, 0..6),
        proptest::collection::vec(via, 0..4),
    )
        .prop_map(|(segs, vias)| {
            let mut r = Route::new();
            for s in segs {
                r.push_segment(s);
            }
            for v in vias {
                r.push_via(v);
            }
            r
        })
}

/// Asserts every legal wire run and via stack probes bit-identically to the
/// naive quantised walk.
fn assert_probes_match(prober: &CostProber, g: &GridGraph) {
    for l in 0..LAYERS {
        if l % 2 == 1 {
            for y in 0..H {
                for x0 in 0..W {
                    let a = Point2::new(x0, y);
                    let b = Point2::new(W - 1, y);
                    assert_eq!(prober.wire_run_cost(l, a, b), g.wire_run_cost_fixed(l, a, b));
                }
            }
        } else {
            for x in 0..W {
                for y0 in 0..H {
                    let a = Point2::new(x, y0);
                    let b = Point2::new(x, H - 1);
                    assert_eq!(prober.wire_run_cost(l, a, b), g.wire_run_cost_fixed(l, a, b));
                }
            }
        }
    }
    for x in 0..W {
        for y in 0..H {
            let p = Point2::new(x, y);
            for lo in 0..LAYERS {
                for hi in lo..LAYERS {
                    assert_eq!(
                        prober.via_stack_cost(p, lo, hi),
                        g.via_stack_cost_fixed(p, lo, hi)
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Prefix differences equal the naive fixed-point summation exactly on
    /// random demand/history grids.
    #[test]
    fn prefix_difference_equals_naive_sum(
        routes in proptest::collection::vec(arb_route(), 0..12),
        history_rounds in 0u8..3,
        increment_q in 1u32..16,
    ) {
        let mut g = graph();
        for r in &routes {
            g.commit(r).expect("valid route");
        }
        for _ in 0..history_rounds {
            g.add_history_on_overflow(increment_q as f64 * 0.25);
        }
        let prober = CostProber::build(&g);
        assert_probes_match(&prober, &g);
    }

    /// An incremental refresh after commits/uncommits is indistinguishable
    /// from a from-scratch build, for serial and parallel rebuild pools.
    #[test]
    fn incremental_refresh_equals_fresh_build(
        initial in proptest::collection::vec(arb_route(), 0..6),
        updates in proptest::collection::vec(
            (arb_route(), 0u8..2).prop_map(|(r, u)| (r, u == 1)),
            1..8,
        ),
        workers in 1usize..4,
    ) {
        let mut g = graph();
        for r in &initial {
            g.commit(r).expect("valid route");
        }
        g.clear_dirty();
        let pool = HostPool::new(workers);
        let mut prober = CostProber::build_with_pool(&g, &pool);
        for (r, uncommit) in &updates {
            g.commit(r).expect("valid route");
            if *uncommit {
                g.uncommit(r).expect("valid route");
            }
        }
        prober.refresh(&mut g, &pool);
        assert_probes_match(&prober, &g);
        prop_assert_eq!(g.dirty_edges(), 0);
    }
}
