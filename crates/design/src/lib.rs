//! Netlist model and synthetic benchmark suite for the FastGR reproduction.
//!
//! The paper evaluates on the ICCAD2019 contest benchmarks (Table III),
//! which are large proprietary LEF/DEF dumps. This crate substitutes a
//! deterministic *synthetic* suite with the same structure at reduced scale
//! (see `DESIGN.md` §4–5): clustered pins with a long-tailed net-size
//! distribution, macro blockages, and 9-layer / 5-layer (`…m`) variants of
//! every design.
//!
//! Contents:
//!
//! * [`Pin`], [`Net`], [`Design`] — the netlist model;
//! * [`Generator`] / [`GeneratorParams`] — the seeded synthetic generator;
//! * [`suite`] / [`BenchmarkSpec`] — the 12-benchmark suite mirroring
//!   Table III;
//! * [`Design::to_text`] / [`Design::from_text`] — a plain-text design
//!   interchange format.
//!
//! # Example
//!
//! ```
//! use fastgr_design::Generator;
//!
//! let design = Generator::tiny(7).generate();
//! assert!(design.nets().len() >= 32);
//! // Round-trips through the text format.
//! let text = design.to_text();
//! let back = fastgr_design::Design::from_text(&text)?;
//! assert_eq!(design, back);
//! # Ok::<(), fastgr_design::ParseDesignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;
mod generate;
mod ispd;
mod net;
mod rng;
mod suite;

pub use error::ParseDesignError;
pub use generate::{Generator, GeneratorParams};
pub use net::{Design, Net, NetId, Pin};
pub use rng::SplitMix64;
pub use suite::{suite, BenchmarkSpec};
