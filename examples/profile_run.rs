//! Profile a routing run: record telemetry with an enabled [`Recorder`],
//! print the run-trace summary and write a Chrome `trace_event` profile
//! that loads in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!
//! ```text
//! cargo run --release --example profile_run [trace.json]
//! ```

use fastgr::core::{Router, RouterConfig};
use fastgr::design::{Generator, GeneratorParams};
use fastgr::Recorder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately congested design so rip-up and reroute has work to do
    // and the trace shows all three stages.
    let design = Generator::new(GeneratorParams {
        name: "profiled".to_string(),
        width: 24,
        height: 24,
        layers: 5,
        num_nets: 360,
        capacity: 3.0,
        hotspots: 2,
        hotspot_affinity: 0.6,
        blockages: 2,
        seed: 5,
    })
    .generate();
    println!("{design}");

    // An enabled recorder captures spans, counters and kernel events; the
    // default (disabled) recorder makes the same run cost nothing extra.
    let recorder = Recorder::enabled();
    let outcome = Router::new(RouterConfig::fastgr_h()).run_with_recorder(&design, &recorder)?;

    // The aggregated trace travels on the outcome.
    println!("quality: {}", outcome.metrics);
    print!("{}", outcome.trace.summary_table());
    println!("stage spans:     {}", outcome.trace.spans().len());
    println!("kernel launches: {}", outcome.trace.kernels().len());
    println!(
        "nets ripped per RRR iteration: {:?}",
        outcome.trace.nets_ripped()
    );

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, outcome.trace.to_chrome_trace_json())?;
        println!("wrote {path} — open it at https://ui.perfetto.dev");
    }
    Ok(())
}
