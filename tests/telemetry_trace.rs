//! Integration tests of the run-trace telemetry layer: the Chrome
//! `trace_event` export schema, the golden deterministic signature, and
//! counter invariance across worker counts.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

use fastgr::core::{PatternEngine, Router, RouterConfig};
use fastgr::design::{Design, Generator, GeneratorParams};
use fastgr::gpu::DeviceConfig;
use fastgr::telemetry::json;
use fastgr::Recorder;
use proptest::prelude::*;

/// A deliberately overflowing design (capacity below demand around two
/// hotspots) so rip-up and reroute runs and every stage shows up in the
/// trace.
fn overflowing_design() -> Design {
    Generator::new(GeneratorParams {
        name: "trace-fixture".to_string(),
        width: 24,
        height: 24,
        layers: 5,
        num_nets: 360,
        capacity: 3.0,
        hotspots: 2,
        hotspot_affinity: 0.6,
        blockages: 2,
        seed: 5,
    })
    .generate()
}

/// FastGR_H with `workers` host workers in both the simulated device pool
/// and the RRR executor.
fn config_with_workers(workers: usize) -> RouterConfig {
    RouterConfig::fastgr_h()
        .with_workers(workers)
        .with_engine(PatternEngine::GpuFlow(
            DeviceConfig::rtx3090_like().with_host_workers(workers),
        ))
}

fn traced_signature(workers: usize) -> String {
    let recorder = Recorder::enabled();
    let outcome = Router::new(config_with_workers(workers))
        .run_with_recorder(&overflowing_design(), &recorder)
        .expect("routable");
    outcome.trace.deterministic_signature()
}

#[test]
fn chrome_trace_json_matches_schema() {
    let recorder = Recorder::enabled();
    let outcome = Router::new(config_with_workers(2))
        .run_with_recorder(&overflowing_design(), &recorder)
        .expect("routable");
    let trace = &outcome.trace;
    let text = trace.to_chrome_trace_json();
    let root = json::parse(&text).expect("emitted trace must be valid JSON");

    assert_eq!(
        root.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut names = BTreeSet::new();
    let mut kernel_complete = 0usize;
    let mut depth: BTreeMap<(String, String), i64> = BTreeMap::new();
    for event in events {
        let ph = event.get("ph").and_then(|v| v.as_str()).expect("phase");
        let name = event
            .get("name")
            .and_then(|v| v.as_str())
            .expect("name")
            .to_string();
        for field in ["pid", "tid", "ts"] {
            assert!(
                event.get(field).and_then(|v| v.as_f64()).is_some(),
                "event {name} lacks numeric {field}"
            );
        }
        let tid = event
            .get("tid")
            .and_then(|v| v.as_f64())
            .unwrap()
            .to_string();
        match ph {
            "X" => {
                assert!(
                    event.get("dur").and_then(|v| v.as_f64()).is_some(),
                    "complete event {name} lacks dur"
                );
                if event.get("cat").and_then(|v| v.as_str()) == Some("kernel") {
                    kernel_complete += 1;
                    let args = event.get("args").expect("kernel args");
                    assert!(args.get("blocks").and_then(|v| v.as_f64()).is_some());
                    assert!(args.get("modeled_us").and_then(|v| v.as_f64()).is_some());
                }
            }
            "B" => *depth.entry((tid, name.clone())).or_insert(0) += 1,
            "E" => *depth.entry((tid, name.clone())).or_insert(0) -= 1,
            "C" => assert!(event.get("args").is_some(), "counter {name} lacks args"),
            other => panic!("unexpected event phase {other:?} for {name}"),
        }
        names.insert(name);
    }
    for ((tid, name), d) in &depth {
        assert_eq!(*d, 0, "unbalanced begin/end for {name} on tid {tid}");
    }
    // Every pipeline stage shows up as a span.
    assert!(names.contains("planning"), "{names:?}");
    assert!(names.contains("pattern"), "{names:?}");
    assert!(names.contains("rrr.iter0"), "{names:?}");
    // One complete-event per launched kernel.
    assert!(kernel_complete >= 1);
    assert_eq!(kernel_complete, trace.kernels().len());
}

#[test]
fn deterministic_signature_matches_golden_file() {
    let signature = traced_signature(2);
    if std::env::var_os("TRACE_GOLDEN_REGEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/trace_signature.txt"
        );
        std::fs::write(path, &signature).expect("write golden file");
        return;
    }
    // The incremental overflow detector must publish its counter pair into
    // the deterministic signature on every routed run.
    assert!(signature.contains("counter rrr.dirty_edges ="), "{signature}");
    assert!(
        signature.contains("counter rrr.full_rescan_avoided ="),
        "{signature}"
    );
    let golden = include_str!("golden/trace_signature.txt");
    assert_eq!(
        signature, golden,
        "the deterministic trace signature drifted from \
         tests/golden/trace_signature.txt; if the routing behaviour change \
         is intended, regenerate with \
         `TRACE_GOLDEN_REGEN=1 cargo test --test telemetry_trace` and \
         review the diff"
    );
}

fn baseline_signature() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| traced_signature(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Counter values, kernel blocks and rip-up counts are part of the
    /// determinism contract: only timestamps may vary with the worker
    /// count.
    #[test]
    fn counters_are_identical_across_worker_counts(workers in 2usize..=6) {
        prop_assert_eq!(traced_signature(workers), baseline_signature());
    }
}
