//! Routed-net geometry: wire segments, vias, and whole routes.

use std::fmt;

use crate::{Point2, Point3};

/// A straight wire on one metal layer between two aligned G-cells.
///
/// Segments are stored with normalised endpoint order (`from <= to` in the
/// running coordinate). A zero-length segment (both endpoints equal) is
/// permitted and consumes no wire resources; it appears when a pattern path
/// degenerates.
///
/// # Example
///
/// ```
/// use fastgr_grid::{Point2, Segment};
///
/// let s = Segment::new(3, Point2::new(7, 2), Point2::new(1, 2));
/// assert_eq!(s.from, Point2::new(1, 2)); // normalised
/// assert_eq!(s.length(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Metal layer the wire runs on.
    pub layer: u8,
    /// Lower endpoint (smaller running coordinate).
    pub from: Point2,
    /// Upper endpoint.
    pub to: Point2,
}

impl Segment {
    /// Creates a segment, normalising endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are not aligned on a row or column.
    pub fn new(layer: u8, a: Point2, b: Point2) -> Self {
        assert!(
            a.is_aligned_with(b),
            "segment endpoints {a} and {b} are not aligned"
        );
        let (from, to) = if (a.x, a.y) <= (b.x, b.y) {
            (a, b)
        } else {
            (b, a)
        };
        Self { layer, from, to }
    }

    /// Wirelength of the segment in G-cell edge units.
    pub fn length(&self) -> u32 {
        self.from.manhattan_distance(self.to)
    }

    /// Whether the segment runs along the x axis (or is a point).
    pub fn is_horizontal(&self) -> bool {
        self.from.y == self.to.y
    }

    /// Iterates over the unit edges `(cell, next_cell)` the segment covers.
    pub fn unit_edges(&self) -> impl Iterator<Item = (Point2, Point2)> + '_ {
        let horizontal = self.is_horizontal();
        let len = self.length();
        (0..len).map(move |i| {
            if horizontal {
                let x = self.from.x + i as u16;
                (Point2::new(x, self.from.y), Point2::new(x + 1, self.from.y))
            } else {
                let y = self.from.y + i as u16;
                (Point2::new(self.from.x, y), Point2::new(self.from.x, y + 1))
            }
        })
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{} {} -> {}", self.layer, self.from, self.to)
    }
}

/// A via stack at one G-cell connecting layer `lo` up to layer `hi`.
///
/// A stack spanning `k` layer boundaries counts as `k` vias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Via {
    /// G-cell the stack sits on.
    pub at: Point2,
    /// Lowest layer of the stack.
    pub lo: u8,
    /// Highest layer of the stack.
    pub hi: u8,
}

impl Via {
    /// Creates a via stack, normalising the layer order.
    pub fn new(at: Point2, a: u8, b: u8) -> Self {
        Self {
            at,
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Number of single-layer vias in the stack.
    pub fn count(&self) -> u32 {
        (self.hi - self.lo) as u32
    }
}

impl fmt::Display for Via {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "via {} M{}..M{}", self.at, self.lo, self.hi)
    }
}

/// The routed geometry of one net: wire segments plus via stacks.
///
/// A `Route` is pure geometry — committing its demand to a
/// [`GridGraph`](crate::GridGraph) is a separate, reversible step, which is
/// what rip-up-and-reroute relies on.
///
/// # Example
///
/// ```
/// use fastgr_grid::{Point2, Route, Segment, Via};
///
/// let mut route = Route::new();
/// route.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(3, 0)));
/// route.push_via(Via::new(Point2::new(3, 0), 1, 2));
/// route.push_segment(Segment::new(2, Point2::new(3, 0), Point2::new(3, 4)));
/// assert_eq!(route.wirelength(), 7);
/// assert_eq!(route.via_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Route {
    segments: Vec<Segment>,
    vias: Vec<Via>,
}

impl Route {
    /// Creates an empty route.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a wire segment (zero-length segments are dropped).
    pub fn push_segment(&mut self, s: Segment) {
        if s.length() > 0 {
            self.segments.push(s);
        }
    }

    /// Adds a via stack (empty stacks are dropped).
    pub fn push_via(&mut self, v: Via) {
        if v.count() > 0 {
            self.vias.push(v);
        }
    }

    /// Appends all geometry of `other`.
    pub fn extend(&mut self, other: &Route) {
        self.segments.extend_from_slice(&other.segments);
        self.vias.extend_from_slice(&other.vias);
    }

    /// Removes all geometry, keeping the allocations for reuse. Routing
    /// many nets into one recycled `Route` therefore allocates nothing in
    /// steady state.
    pub fn clear(&mut self) {
        self.segments.clear();
        self.vias.clear();
    }

    /// The wire segments of the route.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The via stacks of the route.
    pub fn vias(&self) -> &[Via] {
        &self.vias
    }

    /// Total wirelength in G-cell edge units.
    pub fn wirelength(&self) -> u64 {
        self.segments.iter().map(|s| s.length() as u64).sum()
    }

    /// Total number of single-layer vias.
    pub fn via_count(&self) -> u64 {
        self.vias.iter().map(|v| v.count() as u64).sum()
    }

    /// Whether the route has no geometry at all.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty() && self.vias.is_empty()
    }

    /// Every 3-D grid vertex touched by the route, without deduplication
    /// guarantees beyond per-element adjacency. Useful for connectivity
    /// checks and guide generation.
    pub fn touched_points(&self) -> Vec<Point3> {
        let mut pts = Vec::new();
        for s in &self.segments {
            if s.is_horizontal() {
                for x in s.from.x..=s.to.x {
                    pts.push(Point3::new(x, s.from.y, s.layer));
                }
            } else {
                for y in s.from.y..=s.to.y {
                    pts.push(Point3::new(s.from.x, y, s.layer));
                }
            }
        }
        for v in &self.vias {
            for l in v.lo..=v.hi {
                pts.push(Point3::new(v.at.x, v.at.y, l));
            }
        }
        pts.sort_unstable();
        pts.dedup();
        pts
    }

    /// Checks that the route forms one connected component in the 3-D grid
    /// graph (adjacent vertices differ by one step in x, y, or layer).
    ///
    /// An empty route is trivially connected.
    pub fn is_connected(&self) -> bool {
        let pts = self.touched_points();
        if pts.len() <= 1 {
            return true;
        }
        use std::collections::{HashMap, VecDeque};
        let index: HashMap<Point3, usize> = pts
            .iter()
            .copied()
            .enumerate()
            .map(|(i, p)| (p, i))
            .collect();
        let mut seen = vec![false; pts.len()];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut reached = 1;
        while let Some(i) = queue.pop_front() {
            let p = pts[i];
            let mut try_nb = |q: Point3| {
                if let Some(&j) = index.get(&q) {
                    if !seen[j] {
                        seen[j] = true;
                        queue.push_back(j);
                        return 1;
                    }
                }
                0
            };
            let mut found = 0;
            if p.x > 0 {
                found += try_nb(Point3::new(p.x - 1, p.y, p.layer));
            }
            found += try_nb(Point3::new(p.x + 1, p.y, p.layer));
            if p.y > 0 {
                found += try_nb(Point3::new(p.x, p.y - 1, p.layer));
            }
            found += try_nb(Point3::new(p.x, p.y + 1, p.layer));
            if p.layer > 0 {
                found += try_nb(Point3::new(p.x, p.y, p.layer - 1));
            }
            found += try_nb(Point3::new(p.x, p.y, p.layer + 1));
            reached += found;
        }
        reached == pts.len()
    }
}

impl Route {
    /// Canonicalises the route in place: overlapping or touching collinear
    /// segments on the same layer merge into one, and via stacks at the
    /// same G-cell merge when their layer ranges overlap or touch.
    ///
    /// A multi-pin net's tree legs can share wire (two children routed
    /// along the same row); the physical net only occupies each track once,
    /// so demand must be committed on the *union* — which is exactly what
    /// the normalised route represents. [`Route::wirelength`] and
    /// [`Route::via_count`] shrink accordingly; connectivity is preserved.
    ///
    /// # Example
    ///
    /// ```
    /// use fastgr_grid::{Point2, Route, Segment};
    ///
    /// let mut r = Route::new();
    /// r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(5, 0)));
    /// r.push_segment(Segment::new(1, Point2::new(3, 0), Point2::new(9, 0)));
    /// r.normalize();
    /// assert_eq!(r.segments().len(), 1);
    /// assert_eq!(r.wirelength(), 9);
    /// ```
    pub fn normalize(&mut self) {
        // In place with no heap allocation: sort groups segments by
        // (layer, orientation, cross coordinate) with intervals ascending
        // inside each group, then one forward pass merges overlapping or
        // touching intervals through a write cursor. This runs per net in
        // the pattern hot path, so it must not allocate.
        let seg_key = |s: &Segment| {
            let horizontal = s.is_horizontal();
            let (cross, lo) = if horizontal {
                (s.from.y, s.from.x)
            } else {
                (s.from.x, s.from.y)
            };
            (s.layer, horizontal, cross, lo)
        };
        self.segments.sort_unstable_by_key(seg_key);
        let mut w = 0usize;
        for i in 0..self.segments.len() {
            let s = self.segments[i];
            if w > 0 {
                let last = self.segments[w - 1];
                let (kl, kh) = (seg_key(&last), seg_key(&s));
                // Same group and touching/overlapping intervals merge
                // (touching intervals share a G-cell).
                if (kl.0, kl.1, kl.2) == (kh.0, kh.1, kh.2)
                    && kh.3 <= if kl.1 { last.to.x } else { last.to.y }
                {
                    let last = &mut self.segments[w - 1];
                    if kl.1 {
                        last.to.x = last.to.x.max(s.to.x);
                    } else {
                        last.to.y = last.to.y.max(s.to.y);
                    }
                    continue;
                }
            }
            self.segments[w] = s;
            w += 1;
        }
        self.segments.truncate(w);

        // Merge via stacks per G-cell the same way.
        self.vias.sort_unstable_by_key(|v| (v.at, v.lo, v.hi));
        let mut w = 0usize;
        for i in 0..self.vias.len() {
            let v = self.vias[i];
            if w > 0 {
                let last = &mut self.vias[w - 1];
                // Stacks sharing a layer form one stack.
                if last.at == v.at && v.lo <= last.hi {
                    last.hi = last.hi.max(v.hi);
                    continue;
                }
            }
            self.vias[w] = v;
            w += 1;
        }
        self.vias.truncate(w);
    }

    /// Returns the canonicalised route (see [`Route::normalize`]).
    pub fn normalized(mut self) -> Route {
        self.normalize();
        self
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "route: {} segments ({} wl), {} via stacks ({} vias)",
            self.segments.len(),
            self.wirelength(),
            self.vias.len(),
            self.via_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_normalises_and_measures() {
        let s = Segment::new(2, Point2::new(5, 9), Point2::new(5, 3));
        assert_eq!(s.from, Point2::new(5, 3));
        assert_eq!(s.to, Point2::new(5, 9));
        assert_eq!(s.length(), 6);
        assert!(!s.is_horizontal());
        assert_eq!(s.unit_edges().count(), 6);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn diagonal_segment_panics() {
        let _ = Segment::new(1, Point2::new(0, 0), Point2::new(1, 1));
    }

    #[test]
    fn zero_length_geometry_is_dropped() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(4, 4), Point2::new(4, 4)));
        r.push_via(Via::new(Point2::new(4, 4), 3, 3));
        assert!(r.is_empty());
    }

    #[test]
    fn unit_edges_cover_segment() {
        let s = Segment::new(1, Point2::new(2, 7), Point2::new(5, 7));
        let edges: Vec<_> = s.unit_edges().collect();
        assert_eq!(
            edges,
            vec![
                (Point2::new(2, 7), Point2::new(3, 7)),
                (Point2::new(3, 7), Point2::new(4, 7)),
                (Point2::new(4, 7), Point2::new(5, 7)),
            ]
        );
    }

    #[test]
    fn l_shaped_route_is_connected() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(3, 0)));
        r.push_via(Via::new(Point2::new(3, 0), 1, 2));
        r.push_segment(Segment::new(2, Point2::new(3, 0), Point2::new(3, 4)));
        assert!(r.is_connected());
        assert_eq!(r.wirelength(), 7);
        assert_eq!(r.via_count(), 1);
    }

    #[test]
    fn disconnected_route_is_detected() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(2, 0)));
        r.push_segment(Segment::new(1, Point2::new(5, 5), Point2::new(7, 5)));
        assert!(!r.is_connected());
    }

    #[test]
    fn missing_via_breaks_connectivity() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(3, 0)));
        r.push_segment(Segment::new(3, Point2::new(3, 0), Point2::new(6, 0)));
        assert!(!r.is_connected());
        r.push_via(Via::new(Point2::new(3, 0), 1, 3));
        assert!(r.is_connected());
    }

    #[test]
    fn normalize_merges_overlapping_segments() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 4), Point2::new(6, 4)));
        r.push_segment(Segment::new(1, Point2::new(4, 4), Point2::new(9, 4)));
        r.push_segment(Segment::new(1, Point2::new(9, 4), Point2::new(12, 4))); // touching
        r.push_segment(Segment::new(1, Point2::new(0, 7), Point2::new(3, 7))); // other row
        r.normalize();
        assert_eq!(r.segments().len(), 2);
        assert_eq!(r.wirelength(), 12 + 3);
    }

    #[test]
    fn normalize_merges_via_stacks() {
        let p = Point2::new(2, 2);
        let mut r = Route::new();
        r.push_via(Via::new(p, 1, 3));
        r.push_via(Via::new(p, 3, 5));
        r.push_via(Via::new(p, 7, 8)); // disjoint: no hop 5-6 or 6-7
        r.push_via(Via::new(Point2::new(4, 4), 1, 2));
        r.normalize();
        assert_eq!(r.vias().len(), 3);
        assert_eq!(r.via_count(), 4 + 1 + 1);
    }

    #[test]
    fn normalize_preserves_connectivity_and_coverage() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(5, 0)));
        r.push_segment(Segment::new(1, Point2::new(2, 0), Point2::new(8, 0)));
        r.push_via(Via::new(Point2::new(8, 0), 1, 2));
        r.push_segment(Segment::new(2, Point2::new(8, 0), Point2::new(8, 3)));
        let before = r.touched_points();
        r.normalize();
        assert!(r.is_connected());
        assert_eq!(r.touched_points(), before);
    }

    #[test]
    fn normalize_is_idempotent() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(5, 0)));
        r.push_segment(Segment::new(1, Point2::new(3, 0), Point2::new(9, 0)));
        r.push_via(Via::new(Point2::new(5, 0), 1, 4));
        r.normalize();
        let once = r.clone();
        r.normalize();
        assert_eq!(r, once);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(3, 0)));
        r.push_via(Via::new(Point2::new(3, 0), 1, 2));
        r.clear();
        assert!(r.is_empty());
        r.push_segment(Segment::new(2, Point2::new(1, 1), Point2::new(1, 4)));
        assert_eq!(r.wirelength(), 3);
    }

    #[test]
    fn normalize_keeps_unrelated_geometry_sorted_and_intact() {
        let mut r = Route::new();
        r.push_segment(Segment::new(2, Point2::new(4, 1), Point2::new(4, 6))); // vertical
        r.push_segment(Segment::new(1, Point2::new(0, 2), Point2::new(5, 2)));
        r.push_via(Via::new(Point2::new(9, 9), 2, 4));
        r.push_via(Via::new(Point2::new(0, 2), 0, 1));
        r.normalize();
        assert_eq!(r.segments().len(), 2);
        assert_eq!(r.vias().len(), 2);
        assert_eq!(r.wirelength(), 5 + 5);
        assert_eq!(r.via_count(), 2 + 1);
    }

    #[test]
    fn touched_points_deduplicates() {
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(2, 0)));
        r.push_segment(Segment::new(
            1,
            Point2::new(2, 0),
            Point2::new(2, 0).on_layer(0).xy(),
        ));
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(2, 0)));
        let pts = r.touched_points();
        assert_eq!(pts.len(), 3);
    }
}
