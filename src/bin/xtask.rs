//! `cargo xtask` — the workspace's correctness-check driver.
//!
//! Subcommands (see DESIGN.md §5):
//!
//! * `cargo xtask lint` — the `fastgr-analysis` workspace lint pass
//!   (forbid-unsafe everywhere, no hot-path `unwrap`/`expect`, zero-alloc
//!   DP bodies) against `lint-allow.txt`;
//! * `cargo xtask validate` — builds schedules over the design-suite nets
//!   and proves them sound with the static validator, replays them under
//!   the happens-before race checker, and routes one design end to end
//!   with `RouterConfig::validate` on;
//! * `cargo xtask mutation` — corrupts real schedules (reversed conflict
//!   edge, merged conflicting batch, forced unordered execution) and
//!   demands the checkers reject every corruption;
//! * `cargo xtask validate-trace <trace.json>` — parses a Chrome
//!   `trace_event` file written by `fastgr route --trace` and checks the
//!   schema (event phases, required fields, begin/end balance);
//! * `cargo xtask check` — lint + lint-fixture + validate + mutation;
//!   what CI runs. The lint-fixture step seeds known-bad sources (a
//!   `wire_edge_cost` call in a DP kernel, an allocation in a prober
//!   rebuild body) and demands the lint rules reject them, so a rule
//!   that silently stops firing fails the build.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use fastgr_analysis::{
    lint_file, lint_workspace, validate_batches, validate_schedule, validate_view, RaceChecker,
    Rules, ScheduleView, ValidationReport,
};
use fastgr_core::{Router, RouterConfig};
use fastgr_design::{Design, Generator, GeneratorParams};
use fastgr_grid::Rect;
use fastgr_taskgraph::{extract_batches, ConflictGraph, ExecutionHooks, Executor, Schedule};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    let ok = match cmd {
        "lint" => lint(),
        "validate" => validate(),
        "mutation" => mutation(),
        "validate-trace" => validate_trace(args.get(1).map(String::as_str)),
        "check" => {
            let mut ok = lint();
            ok &= lint_fixture();
            ok &= validate();
            ok &= mutation();
            ok
        }
        "help" | "--help" | "-h" => {
            println!("usage: cargo xtask [check|lint|validate|mutation|validate-trace FILE]");
            true
        }
        other => {
            eprintln!("xtask: unknown subcommand `{other}` (try `cargo xtask help`)");
            false
        }
    };
    if ok {
        println!("xtask {cmd}: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask {cmd}: FAILED");
        ExitCode::FAILURE
    }
}

/// The workspace root: xtask runs via `cargo xtask`, so the manifest dir of
/// this package *is* the root.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// The nets every schedule-level check runs over: a few tiny seeds plus two
/// mid-size congested designs.
fn design_suite() -> Vec<Design> {
    let mut designs: Vec<Design> = [1u64, 7, 42]
        .iter()
        .map(|&s| Generator::tiny(s).generate())
        .collect();
    for (nets, seed) in [(200usize, 9u64), (400, 33)] {
        designs.push(
            Generator::new(GeneratorParams {
                name: format!("xtask-{nets}"),
                width: 32,
                height: 32,
                layers: 5,
                num_nets: nets,
                capacity: 4.0,
                hotspots: 3,
                hotspot_affinity: 0.4,
                blockages: 2,
                seed,
            })
            .generate(),
        );
    }
    designs
}

/// Conflict graph + identity order, as the pattern stage derives them.
fn conflicts_of(design: &Design) -> (ConflictGraph, Vec<u32>) {
    let bboxes: Vec<Rect> = design.nets().iter().map(|n| n.bounding_box()).collect();
    let order: Vec<u32> = (0..bboxes.len() as u32).collect();
    (ConflictGraph::from_bounding_boxes(&bboxes), order)
}

fn lint() -> bool {
    let report = lint_workspace(workspace_root());
    println!("lint: {report}");
    report.is_clean()
}

/// Seeded lint violations: known-bad sources the rules *must* flag. A rule
/// that rots (needle renamed, scope predicate broken) passes the clean
/// workspace silently; this step catches that by demanding rejection.
fn lint_fixture() -> bool {
    let mut ok = true;
    let mut case = |name: &str, src: &str, rel: &str, rules: Rules, want_rule: &str| {
        let mut report = ValidationReport::default();
        lint_file(src, rel, rules, &[], &mut [], &mut report);
        let fired = report.diagnostics.iter().any(|d| d.rule == want_rule);
        if fired {
            println!("lint-fixture {name}: rejected (good)");
        } else {
            eprintln!("lint-fixture {name}: NOT rejected — `{want_rule}` is blind");
            ok = false;
        }
    };
    case(
        "dp-direct-cost",
        "fn l_shape_into(&self) {\n    let w = params.wire_edge_cost(demand, cap);\n}\n",
        "crates/core/src/dp.rs",
        Rules {
            dp_direct: true,
            ..Rules::default()
        },
        "dp-direct-cost",
    );
    case(
        "prober-dp-alloc",
        "fn rebuild_wire_row_into(&self, row: usize) {\n    let v: Vec<u64> = Vec::new();\n}\n",
        "crates/grid/src/prober.rs",
        Rules {
            dp: true,
            ..Rules::default()
        },
        "dp-alloc",
    );
    ok
}

/// Checks a Chrome `trace_event` file as written by `fastgr route --trace`:
/// valid JSON, the expected envelope, well-formed events, and balanced
/// begin/end pairs per track.
fn validate_trace(path: Option<&str>) -> bool {
    let Some(path) = path else {
        eprintln!("usage: cargo xtask validate-trace <trace.json>");
        return false;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate-trace: cannot read {path}: {e}");
            return false;
        }
    };
    let root = match fastgr_telemetry::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate-trace: {path} is not valid JSON: {e}");
            return false;
        }
    };

    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("validate-trace: {msg}");
        ok = false;
    };
    if root.get("displayTimeUnit").and_then(|v| v.as_str()) != Some("ms") {
        fail("missing or wrong displayTimeUnit (expected \"ms\")".to_string());
    }
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap_or(&[]);
    if events.is_empty() {
        fail("traceEvents is missing or empty".to_string());
    }

    // Per-(tid, name) begin/end nesting depth; must balance out at zero.
    let mut open: std::collections::BTreeMap<(String, String), i64> =
        std::collections::BTreeMap::new();
    let (mut complete, mut counters, mut kernels) = (0usize, 0usize, 0usize);
    for (i, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let name = event.get("name").and_then(|v| v.as_str()).unwrap_or("");
        if name.is_empty() {
            fail(format!("event #{i} has no name"));
        }
        for field in ["pid", "tid", "ts"] {
            if event.get(field).and_then(|v| v.as_f64()).is_none() {
                fail(format!("event #{i} ({name}) lacks numeric `{field}`"));
            }
        }
        let tid = event
            .get("tid")
            .and_then(|v| v.as_f64())
            .unwrap_or(-1.0)
            .to_string();
        match ph {
            "X" => {
                complete += 1;
                if event.get("dur").and_then(|v| v.as_f64()).is_none() {
                    fail(format!("complete event #{i} ({name}) lacks numeric `dur`"));
                }
                if event.get("cat").and_then(|v| v.as_str()) == Some("kernel") {
                    kernels += 1;
                }
            }
            "B" => *open.entry((tid, name.to_string())).or_insert(0) += 1,
            "E" => *open.entry((tid, name.to_string())).or_insert(0) -= 1,
            "C" => {
                counters += 1;
                if event.get("args").is_none() {
                    fail(format!("counter event #{i} ({name}) lacks `args`"));
                }
            }
            other => fail(format!("event #{i} ({name}) has unknown phase {other:?}")),
        }
    }
    for ((tid, name), depth) in &open {
        if *depth != 0 {
            fail(format!(
                "unbalanced begin/end for `{name}` on tid {tid}: depth {depth}"
            ));
        }
    }
    println!(
        "validate-trace {path}: {} events ({complete} complete, {counters} counter, \
         {kernels} kernel)",
        events.len()
    );
    ok
}

fn validate() -> bool {
    let mut ok = true;
    for design in design_suite() {
        let (conflicts, order) = conflicts_of(&design);
        let schedule = Schedule::build(&order, &conflicts);

        let report = validate_schedule(&schedule, &conflicts);
        println!("validate {} schedule: {report}", design.name());
        ok &= report.is_clean();

        let batches = extract_batches(&order, &conflicts);
        let report = validate_batches(&batches, &conflicts);
        println!("validate {} batches: {report}", design.name());
        ok &= report.is_clean();

        let checker = RaceChecker::new(schedule.task_count());
        Executor::new(4).run_with_hooks(&schedule, |_t| {}, &checker);
        let report = checker.report(&conflicts);
        println!("validate {} execution: {report}", design.name());
        ok &= report.is_clean();
    }

    // One end-to-end routing run with the inline validator armed: panics
    // (and fails the task) if any stage builds an unsound schedule.
    let design = Generator::tiny(4).generate();
    let config = RouterConfig::fastgr_l().with_validate(true);
    match Router::new(config).run(&design) {
        Ok(outcome) => println!(
            "validate end-to-end: {} nets routed, score {:.1}",
            outcome.routes.len(),
            outcome.metrics.score()
        ),
        Err(e) => {
            eprintln!("validate end-to-end: routing failed: {e}");
            ok = false;
        }
    }
    ok
}

/// Runs one mutation case: `mutate` corrupts something derived from the
/// design and returns whether the corruption was *rejected*.
fn mutation_case(name: &str, rejected: bool, ok: &mut bool) {
    if rejected {
        println!("mutation {name}: rejected (good)");
    } else {
        eprintln!("mutation {name}: NOT rejected — checker is blind to this corruption");
        *ok = false;
    }
}

fn mutation() -> bool {
    let mut ok = true;
    for design in design_suite() {
        let (conflicts, order) = conflicts_of(&design);
        let schedule = Schedule::build(&order, &conflicts);
        let name = design.name();
        let first_edge = schedule.edges().next();

        // 1. Reverse one oriented conflict edge.
        if let Some((a, b)) = first_edge {
            let mut view = ScheduleView::from_schedule(&schedule);
            view.reverse_edge(a, b);
            mutation_case(
                &format!("{name} reversed-edge {a}->{b}"),
                !validate_view(&view, &conflicts).is_clean(),
                &mut ok,
            );
        } else {
            eprintln!("mutation {name}: no conflict edges to mutate");
            ok = false;
        }

        // 2. Drop one dependency edge (the conflict goes unoriented and the
        //    two frontiers merge).
        if let Some((a, b)) = first_edge {
            let mut view = ScheduleView::from_schedule(&schedule);
            view.drop_edge(a, b);
            mutation_case(
                &format!("{name} dropped-edge {a}->{b}"),
                !validate_view(&view, &conflicts).is_clean(),
                &mut ok,
            );
        }

        // 3. Merge two conflicting batches (the root batch is maximal, so
        //    merging any later batch into it must violate independence).
        let mut batches = extract_batches(&order, &conflicts);
        if batches.len() >= 2 {
            let merged = batches.remove(1);
            batches[0].extend(merged);
            mutation_case(
                &format!("{name} merged-batches"),
                !validate_batches(&batches, &conflicts).is_clean(),
                &mut ok,
            );
        } else {
            eprintln!("mutation {name}: fewer than two batches");
            ok = false;
        }

        // 4. Force an unordered execution of two conflicting tasks.
        if let Some((a, b)) = first_edge {
            let checker = RaceChecker::new(schedule.task_count());
            for t in 0..schedule.task_count() as u32 {
                if t == a || t == b {
                    continue;
                }
                checker.on_task_start(t, 0);
                checker.on_task_finish(t, 0);
            }
            checker.on_task_start(a, 1);
            checker.on_task_finish(a, 1);
            checker.on_task_start(b, 2);
            checker.on_task_finish(b, 2);
            mutation_case(
                &format!("{name} unordered-race {a}/{b}"),
                !checker.report(&conflicts).is_clean(),
                &mut ok,
            );
        }
    }
    ok
}
