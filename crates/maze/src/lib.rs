//! 3-D maze routing for FastGR's rip-up-and-reroute iterations.
//!
//! Pattern routing restricts the search space for speed; the nets it cannot
//! route violation-free are re-routed here with a full 3-D shortest-path
//! search over the grid graph (paper Section III-G). The router is a
//! multi-terminal Dijkstra (optionally A*) restricted to an inflated
//! bounding-box window:
//!
//! 1. start with the first pin as the routed component;
//! 2. run a multi-source shortest-path search from every vertex of the
//!    component to the next unconnected pin;
//! 3. back-trace the winning path, merge it into the component, repeat.
//!
//! Moves follow the grid-graph semantics: wire steps along the preferred
//! direction of layers with non-zero capacity, via steps between adjacent
//! layers. Costs come live from the [`GridGraph`](fastgr_grid::GridGraph)
//! congestion state, so the
//! search naturally detours around overflowed edges.
//!
//! # Example
//!
//! ```
//! use fastgr_grid::{CostParams, GridGraph, Point2};
//! use fastgr_maze::{MazeConfig, MazeRouter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut graph = GridGraph::new(16, 16, 4, CostParams::default())?;
//! graph.fill_capacity(4.0);
//! let router = MazeRouter::new(MazeConfig::default());
//! let route = router.route(&graph, &[Point2::new(1, 1), Point2::new(12, 9)])?;
//! assert!(route.is_connected());
//! assert!(route.wirelength() >= 19); // at least the HPWL
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod router;

pub use router::{MazeConfig, MazeError, MazeRouter, MazeScratch, MazeStats};
