//! The 2-D projection of a 3-D routing grid.

use std::fmt;

use fastgr_grid::{Direction, GridGraph, Point2};

/// A 2-D routing grid: one horizontal and one vertical edge plane whose
/// capacities are the per-direction sums over the 3-D grid's layers — the
/// abstraction "2-D global routers" operate on.
///
/// Costs use the same logistic congestion model as the 3-D grid (via the
/// source graph's [`CostParams`](fastgr_grid::CostParams)), but vias are
/// invisible at this level (the classic 2-D simplification the paper calls
/// out).
#[derive(Debug, Clone)]
pub struct Projection {
    width: u16,
    height: u16,
    h_capacity: Vec<f64>,
    h_demand: Vec<f64>,
    v_capacity: Vec<f64>,
    v_demand: Vec<f64>,
    unit_wire: f64,
    overflow_weight: f64,
    logistic_slope: f64,
}

impl Projection {
    /// Projects the 3-D grid: per 2-D edge, capacity is the sum of the
    /// same-direction layer capacities at that position.
    pub fn from_graph(graph: &GridGraph) -> Self {
        let (w, h) = (graph.width(), graph.height());
        let mut h_capacity = vec![0.0; (w as usize - 1) * h as usize];
        let mut v_capacity = vec![0.0; w as usize * (h as usize - 1)];
        for l in 1..graph.num_layers() {
            match graph.layer(l).direction {
                Direction::Horizontal => {
                    for y in 0..h {
                        for x in 0..w - 1 {
                            let i = y as usize * (w as usize - 1) + x as usize;
                            h_capacity[i] +=
                                graph.wire_capacity(l, Point2::new(x, y)).unwrap_or(0.0);
                        }
                    }
                }
                Direction::Vertical => {
                    for x in 0..w {
                        for y in 0..h - 1 {
                            let i = x as usize * (h as usize - 1) + y as usize;
                            v_capacity[i] +=
                                graph.wire_capacity(l, Point2::new(x, y)).unwrap_or(0.0);
                        }
                    }
                }
            }
        }
        let params = graph.params();
        Self {
            width: w,
            height: h,
            h_demand: vec![0.0; h_capacity.len()],
            v_demand: vec![0.0; v_capacity.len()],
            h_capacity,
            v_capacity,
            unit_wire: params.unit_wire,
            overflow_weight: params.overflow_weight,
            logistic_slope: params.logistic_slope,
        }
    }

    /// Grid width in G-cells.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in G-cells.
    pub fn height(&self) -> u16 {
        self.height
    }

    fn h_index(&self, p: Point2) -> Option<usize> {
        (p.x + 1 < self.width && p.y < self.height)
            .then(|| p.y as usize * (self.width as usize - 1) + p.x as usize)
    }

    fn v_index(&self, p: Point2) -> Option<usize> {
        (p.y + 1 < self.height && p.x < self.width)
            .then(|| p.x as usize * (self.height as usize - 1) + p.y as usize)
    }

    fn edge_cost(&self, demand: f64, capacity: f64) -> f64 {
        let penalty = if capacity <= 0.0 {
            self.overflow_weight * 16.0
        } else {
            self.overflow_weight / (1.0 + (-self.logistic_slope * (demand + 1.0 - capacity)).exp())
        };
        self.unit_wire + penalty
    }

    /// Cost of the horizontal unit edge leaving `p` rightwards
    /// (`f64::INFINITY` when out of grid).
    pub fn h_edge_cost(&self, p: Point2) -> f64 {
        match self.h_index(p) {
            Some(i) => self.edge_cost(self.h_demand[i], self.h_capacity[i]),
            None => f64::INFINITY,
        }
    }

    /// Cost of the vertical unit edge leaving `p` upwards.
    pub fn v_edge_cost(&self, p: Point2) -> f64 {
        match self.v_index(p) {
            Some(i) => self.edge_cost(self.v_demand[i], self.v_capacity[i]),
            None => f64::INFINITY,
        }
    }

    /// Cost of the straight 2-D run between aligned points (0 when equal,
    /// `f64::INFINITY` for diagonals or out-of-grid runs).
    pub fn run_cost(&self, a: Point2, b: Point2) -> f64 {
        if a == b {
            return 0.0;
        }
        if a.y == b.y {
            let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
            (x0..x1)
                .map(|x| self.h_edge_cost(Point2::new(x, a.y)))
                .sum()
        } else if a.x == b.x {
            let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
            (y0..y1)
                .map(|y| self.v_edge_cost(Point2::new(a.x, y)))
                .sum()
        } else {
            f64::INFINITY
        }
    }

    /// Adds `amount` demand to every unit edge of the straight run `a - b`.
    ///
    /// # Panics
    ///
    /// Panics on diagonal or out-of-grid runs (caller bugs).
    pub fn add_run_demand(&mut self, a: Point2, b: Point2, amount: f64) {
        if a == b {
            return;
        }
        if a.y == b.y {
            let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
            for x in x0..x1 {
                let i = self.h_index(Point2::new(x, a.y)).expect("in-grid run");
                self.h_demand[i] += amount;
            }
        } else if a.x == b.x {
            let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
            for y in y0..y1 {
                let i = self.v_index(Point2::new(a.x, y)).expect("in-grid run");
                self.v_demand[i] += amount;
            }
        } else {
            panic!("diagonal run {a} -> {b}");
        }
    }

    /// Total 2-D overflow (sum of `demand - capacity` over overflowing
    /// edges) — the quality signal 2-D routers optimise.
    pub fn overflow(&self) -> f64 {
        let h = self
            .h_demand
            .iter()
            .zip(&self.h_capacity)
            .map(|(&d, &c)| (d - c).max(0.0))
            .sum::<f64>();
        let v = self
            .v_demand
            .iter()
            .zip(&self.v_capacity)
            .map(|(&d, &c)| (d - c).max(0.0))
            .sum::<f64>();
        h + v
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "2-D projection {}x{}, overflow {:.1}",
            self.width,
            self.height,
            self.overflow()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_grid::CostParams;

    fn graph() -> GridGraph {
        let mut g = GridGraph::new(8, 8, 6, CostParams::default()).expect("valid");
        g.fill_capacity(2.0);
        g
    }

    #[test]
    fn capacities_sum_over_same_direction_layers() {
        // 6 layers: M1/M3/M5 horizontal, M2/M4 vertical, each capacity 2.
        let p = Projection::from_graph(&graph());
        assert!(p.h_edge_cost(Point2::new(0, 0)).is_finite());
        // Demand 5 on a horizontal projected edge (capacity 6) stays cheap;
        // demand 7 overflows.
        let mut p2 = p.clone();
        for _ in 0..5 {
            p2.add_run_demand(Point2::new(0, 0), Point2::new(1, 0), 1.0);
        }
        assert_eq!(p2.overflow(), 0.0);
        p2.add_run_demand(Point2::new(0, 0), Point2::new(1, 0), 2.0);
        assert_eq!(p2.overflow(), 1.0);
    }

    #[test]
    fn run_cost_is_directional_sum() {
        let p = Projection::from_graph(&graph());
        let one = p.h_edge_cost(Point2::new(2, 3));
        let run = p.run_cost(Point2::new(2, 3), Point2::new(6, 3));
        assert!((run - 4.0 * one).abs() < 1e-9);
        assert!(p
            .run_cost(Point2::new(0, 0), Point2::new(1, 1))
            .is_infinite());
        assert_eq!(p.run_cost(Point2::new(3, 3), Point2::new(3, 3)), 0.0);
    }

    #[test]
    fn demand_raises_cost() {
        let mut p = Projection::from_graph(&graph());
        let before = p.h_edge_cost(Point2::new(0, 0));
        for _ in 0..8 {
            p.add_run_demand(Point2::new(0, 0), Point2::new(1, 0), 1.0);
        }
        assert!(p.h_edge_cost(Point2::new(0, 0)) > before);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_demand_panics() {
        let mut p = Projection::from_graph(&graph());
        p.add_run_demand(Point2::new(0, 0), Point2::new(1, 1), 1.0);
    }
}
