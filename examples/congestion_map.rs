//! Use the global router as a congestion predictor: route a design, then
//! render the 2-D congestion heat map as ASCII art — the "congestion map
//! for placement" use case from the paper's introduction.
//!
//! ```text
//! cargo run --release --example congestion_map
//! ```

use fastgr::core::{PatternEngine, PatternMode, PatternStage, SortingScheme};
use fastgr::design::{Generator, GeneratorParams};
use fastgr::grid::CostParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately congested design: strong hotspots, low capacity.
    let design = Generator::new(GeneratorParams {
        name: "congestion-demo".into(),
        width: 48,
        height: 24,
        layers: 6,
        num_nets: 900,
        capacity: 3.0,
        hotspots: 3,
        hotspot_affinity: 0.55,
        blockages: 2,
        seed: 7,
    })
    .generate();

    // A congestion map only needs the (fast) pattern routing stage.
    let mut graph = design.build_graph(CostParams::default())?;
    let stage = PatternStage {
        mode: PatternMode::LShape,
        engine: PatternEngine::SequentialCpu,
        sorting: SortingScheme::HpwlAscending,
        steiner_passes: 4,
        congestion_aware_planning: false,
        cost_probing: true,
        validate: false,
    };
    stage.run(&design, &mut graph)?;

    let heat = graph.congestion_heatmap();
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    println!(
        "congestion heat map ({}x{}, '@' = overflow):",
        design.width(),
        design.height()
    );
    for y in (0..design.height()).rev() {
        let mut line = String::new();
        for x in 0..design.width() {
            let u = heat[y as usize * design.width() as usize + x as usize];
            let idx = ((u * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            line.push(shades[idx]);
        }
        println!("|{line}|");
    }
    let report = graph.report();
    println!("{report}");
    Ok(())
}
