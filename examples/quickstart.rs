//! Quickstart: route a small synthetic design with FastGR_L and print the
//! solution quality and stage timings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fastgr::core::{Router, RouterConfig};
use fastgr::design::Generator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16x16, 5-layer design with 64 nets. Same seed, same design.
    let design = Generator::tiny(42).generate();
    println!("{design}");

    // FastGR_L: GPU-accelerated L-shape pattern routing + task-graph RRR.
    let outcome = Router::new(RouterConfig::fastgr_l()).run(&design)?;

    println!("routed {} nets", outcome.routes.len());
    println!("quality: {}", outcome.metrics);
    println!("timings: {}", outcome.timings);
    println!("pattern batches: {}", outcome.trace.pattern_batches());
    println!("congestion: {}", outcome.report);
    if outcome.trace.nets_ripped().is_empty() {
        println!("no rip-up and reroute was needed");
    } else {
        println!("nets ripped per iteration: {:?}", outcome.trace.nets_ripped());
    }

    // The guides are what a detailed router consumes.
    println!("{}", outcome.guides);
    assert!(outcome.guides.covers_pins(&design));
    Ok(())
}
