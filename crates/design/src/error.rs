//! Error type for the text design format.

use std::error::Error;
use std::fmt;

/// Errors from [`Design::from_text`](crate::Design::from_text).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseDesignError {
    /// The first line is not a recognised `fastgr <version>` header.
    BadHeader {
        /// The offending line.
        line: String,
    },
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line_no: usize,
        /// What the parser expected.
        expected: &'static str,
        /// The offending line content.
        content: String,
    },
    /// The file ended before all declared nets/pins were read.
    UnexpectedEof {
        /// What was still expected.
        expected: &'static str,
    },
    /// A parsed value is inconsistent (e.g. pin outside the grid).
    Invalid {
        /// 1-based line number.
        line_no: usize,
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for ParseDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDesignError::BadHeader { line } => {
                write!(f, "bad header line {line:?}, expected `fastgr 1`")
            }
            ParseDesignError::BadLine {
                line_no,
                expected,
                content,
            } => {
                write!(f, "line {line_no}: expected {expected}, found {content:?}")
            }
            ParseDesignError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of file, expected {expected}")
            }
            ParseDesignError::Invalid { line_no, reason } => {
                write!(f, "line {line_no}: {reason}")
            }
        }
    }
}

impl Error for ParseDesignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_line_numbers() {
        let e = ParseDesignError::BadLine {
            line_no: 7,
            expected: "pin",
            content: "xyz".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("pin"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseDesignError>();
    }
}
