//! Persist a synthetic design to the plain-text interchange format, reload
//! it, and verify the round trip — the workflow for sharing reproducible
//! workloads between machines.
//!
//! ```text
//! cargo run --release --example save_and_load
//! ```

use std::fs;

use fastgr::core::{Router, RouterConfig};
use fastgr::design::{Design, Generator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Generator::tiny(2026).generate();

    // Save.
    let path = std::env::temp_dir().join("fastgr-demo.design");
    fs::write(&path, design.to_text())?;
    println!(
        "wrote {} ({} bytes)",
        path.display(),
        fs::metadata(&path)?.len()
    );

    // Load and verify.
    let text = fs::read_to_string(&path)?;
    let loaded = Design::from_text(&text)?;
    assert_eq!(design, loaded, "round trip must preserve the design");
    println!("round trip OK: {loaded}");

    // Routing the loaded copy gives the identical result (determinism).
    let a = Router::new(RouterConfig::fastgr_l()).run(&design)?;
    let b = Router::new(RouterConfig::fastgr_l()).run(&loaded)?;
    assert_eq!(a.metrics.wirelength, b.metrics.wirelength);
    assert_eq!(a.metrics.vias, b.metrics.vias);
    println!("identical routing result after reload: {}", b.metrics);

    fs::remove_file(&path)?;
    Ok(())
}
