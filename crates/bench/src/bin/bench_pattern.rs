//! Serial-vs-parallel wall-clock of the pattern stage on the scaled
//! synthetic suite (the worker-pool speed-up snapshot recorded in
//! `BENCH_pattern.json`).
//!
//! ```text
//! bench_pattern [--full] [--out PATH] [--workers N] [--trace PATH]
//!
//! --full:      run the whole 12-benchmark suite (default: 4 smallest)
//! --out PATH:  where to write the JSON snapshot (default: BENCH_pattern.json)
//! --workers N: parallel worker count (default: FASTGR_WORKERS / all cores)
//! --trace PATH: record the parallel runs and write a Chrome trace_event
//!               profile (load in Perfetto / chrome://tracing)
//! ```
//!
//! Each benchmark routes twice with the GPU-flow engine: once with one
//! host worker (serial) and once with `N` workers. The routed geometry
//! and the modelled device seconds must be identical — the runs differ
//! only in host wall-clock — and the binary exits non-zero if they are
//! not.

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;

use fastgr_core::{PatternEngine, PatternMode, PatternOutcome, PatternStage, SortingScheme};
use fastgr_design::{suite, BenchmarkSpec};
use fastgr_gpu::{DeviceConfig, HostPool};
use fastgr_telemetry::Recorder;

struct Row {
    name: &'static str,
    nets: u32,
    serial_seconds: f64,
    parallel_seconds: f64,
    modeled_seconds: f64,
}

fn run_once(spec: &BenchmarkSpec, workers: usize, recorder: &Recorder) -> PatternOutcome {
    let design = spec.generate();
    let mut graph = design
        .build_graph(fastgr_grid::CostParams::default())
        .expect("suite designs build");
    let stage = PatternStage {
        mode: PatternMode::LShape,
        engine: PatternEngine::GpuFlow(
            DeviceConfig::rtx3090_like().with_host_workers(workers),
        ),
        sorting: SortingScheme::HpwlAscending,
        steiner_passes: 4,
        congestion_aware_planning: false,
        validate: false,
    };
    stage
        .run_traced(&design, &mut graph, recorder)
        .expect("suite designs route")
}

fn main() -> ExitCode {
    let mut full = false;
    let mut out_path = String::from("BENCH_pattern.json");
    let mut trace_path: Option<String> = None;
    let mut workers = 0usize;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--trace" => {
                let Some(path) = args.next() else {
                    eprintln!("--trace needs a path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(path);
            }
            "--workers" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::FAILURE;
                };
                workers = n;
            }
            other => {
                eprintln!(
                    "usage: bench_pattern [--full] [--out PATH] [--workers N] [--trace PATH] \
                     (got {other})"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let workers = HostPool::resolve(workers);
    if workers < 2 {
        eprintln!("warning: only {workers} worker(s) resolved; speed-ups will be ~1x");
    }

    let mut specs = suite();
    if !full {
        specs.sort_by_key(|s| s.nets);
        specs.truncate(4);
    }

    // Only the parallel runs are recorded: the serial legs stay untouched
    // so their wall-clock is comparable with historical snapshots.
    let recorder = if trace_path.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    let mut rows = Vec::with_capacity(specs.len());
    for spec in &specs {
        let serial = run_once(spec, 1, &Recorder::disabled());
        let parallel = run_once(spec, workers, &recorder);
        assert_eq!(
            serial.routes, parallel.routes,
            "{}: geometry diverged across worker counts",
            spec.name
        );
        let ms = serial.modeled_gpu_seconds.expect("gpu engine models time");
        let mp = parallel.modeled_gpu_seconds.expect("gpu engine models time");
        assert_eq!(
            ms.to_bits(),
            mp.to_bits(),
            "{}: modelled seconds diverged across worker counts",
            spec.name
        );
        println!(
            "{:8} {:6} nets  serial {:8.3}s  x{} {:8.3}s  speedup {:5.2}x  modelled {:.6}s",
            spec.name,
            spec.nets,
            serial.host_seconds,
            workers,
            parallel.host_seconds,
            serial.host_seconds / parallel.host_seconds,
            ms,
        );
        rows.push(Row {
            name: spec.name,
            nets: spec.nets,
            serial_seconds: serial.host_seconds,
            parallel_seconds: parallel.host_seconds,
            modeled_seconds: ms,
        });
    }

    let geomean = (rows
        .iter()
        .map(|r| (r.serial_seconds / r.parallel_seconds).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();
    println!("geomean speedup with {workers} workers: {geomean:.2}x");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"suite\": \"{}\",", if full { "full" } else { "quick" });
    let _ = writeln!(json, "  \"mode\": \"LShape\",");
    let _ = writeln!(json, "  \"parallel_workers\": {workers},");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"geomean_speedup\": {geomean:.4},");
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"nets\": {}, \"serial_seconds\": {:.6}, \"parallel_seconds\": {:.6}, \"speedup\": {:.4}, \"modeled_gpu_seconds\": {:.9}}}{}",
            r.name,
            r.nets,
            r.serial_seconds,
            r.parallel_seconds,
            r.serial_seconds / r.parallel_seconds,
            r.modeled_seconds,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = trace_path {
        let trace = recorder.take_trace();
        if let Err(e) = std::fs::write(&path, trace.to_chrome_trace_json()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote trace to {path} ({} spans, {} kernel events)",
            trace.spans().len(),
            trace.kernels().len()
        );
    }
    ExitCode::SUCCESS
}
