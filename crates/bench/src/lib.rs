//! Benchmark harness regenerating every table and figure of the FastGR
//! paper (see `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md`
//! for recorded paper-vs-measured results).
//!
//! The heavy lifting lives in [`experiments`]; the `reproduce` binary is a
//! thin CLI over it, and the Criterion benches under `benches/` micro-
//! benchmark the individual kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod tables;
