//! Render a routed design and its congestion map to SVG files.
//!
//! ```text
//! cargo run --release --example visualize [out-dir]
//! ```

use std::fs;

use fastgr::core::{Router, RouterConfig};
use fastgr::design::Generator;
use fastgr::grid::CostParams;
use fastgr::viz::SvgRenderer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| std::env::temp_dir().display().to_string());
    let design = Generator::tiny(12).generate();
    let outcome = Router::new(RouterConfig::fastgr_h()).run(&design)?;

    let renderer = SvgRenderer::new();

    // Routed wires, layer colour-coded.
    let routes_svg = renderer.render_routes(&design, &outcome.routes);
    let routes_path = format!("{out_dir}/fastgr-routes.svg");
    fs::write(&routes_path, &routes_svg)?;
    println!("wrote {routes_path} ({} bytes)", routes_svg.len());

    // Congestion heat after recommitting the routes onto a fresh grid.
    let mut graph = design.build_graph(CostParams::default())?;
    for route in &outcome.routes {
        graph.commit(route)?;
    }
    let heat_svg = renderer.render_congestion(&graph);
    let heat_path = format!("{out_dir}/fastgr-congestion.svg");
    fs::write(&heat_path, &heat_svg)?;
    println!("wrote {heat_path} ({} bytes)", heat_svg.len());

    println!("quality: {}", outcome.metrics);
    Ok(())
}
