//! The CUGR-style probabilistic-resource cost model.
//!
//! Every wire edge has a cost `cw(u, v, l)` combining wirelength and a
//! logistic congestion penalty; every via edge has a cost `cv(u, l1, l2)`
//! combining a fixed via cost and the congestion around the stacked G-cell.
//! The parameters mirror the cost scheme of CUGR (reference [3] of the
//! paper), which FastGR adopts unchanged.

/// Parameters of the edge cost model.
///
/// The congestion penalty of one unit wire edge with demand `d` and capacity
/// `c` is
///
/// ```text
/// penalty(d, c) = overflow_weight * logistic(slope * (d + 1 - c))
/// logistic(x)   = 1 / (1 + exp(-x))
/// ```
///
/// so a nearly-empty edge costs `unit_wire` and a full or overflowing edge
/// costs close to `unit_wire + overflow_weight`. The `+1` looks one net
/// ahead: the cost seen by a net is the congestion *after* it commits.
///
/// # Example
///
/// ```
/// use fastgr_grid::CostParams;
///
/// let p = CostParams::default();
/// // An uncongested edge is nearly free beyond its length cost...
/// assert!(p.wire_congestion_penalty(0.0, 16.0) < 0.01);
/// // ...while an overflowing edge pays close to the full overflow weight.
/// assert!(p.wire_congestion_penalty(20.0, 16.0) > 0.9 * p.overflow_weight);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of one G-cell of wirelength on any layer.
    pub unit_wire: f64,
    /// Fixed cost of one via (crossing one layer boundary).
    pub unit_via: f64,
    /// Weight of the logistic congestion penalty on wire edges.
    pub overflow_weight: f64,
    /// Weight of the congestion penalty on via edges (vias through congested
    /// regions are discouraged, mirroring CUGR's via-capacity awareness).
    pub via_overflow_weight: f64,
    /// Slope of the logistic; higher = sharper transition at full capacity.
    pub logistic_slope: f64,
    /// Number of vias a single G-cell can absorb before its via edges are
    /// considered congested.
    pub via_capacity: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            unit_wire: 1.0,
            unit_via: 2.0,
            overflow_weight: 80.0,
            via_overflow_weight: 20.0,
            logistic_slope: 1.5,
            via_capacity: 8.0,
        }
    }
}

impl CostParams {
    /// The logistic congestion penalty of one unit wire edge.
    ///
    /// `demand` is the current demand, `capacity` the number of tracks. The
    /// returned penalty excludes the `unit_wire` length cost.
    pub fn wire_congestion_penalty(&self, demand: f64, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            // Unroutable edge (blockage / pin layer): effectively forbidden,
            // but kept finite so degenerate inputs cannot poison the DP with
            // NaN/inf arithmetic.
            return self.overflow_weight * 16.0;
        }
        self.overflow_weight * logistic(self.logistic_slope * (demand + 1.0 - capacity))
    }

    /// Total cost of one unit wire edge.
    pub fn wire_edge_cost(&self, demand: f64, capacity: f64) -> f64 {
        self.unit_wire + self.wire_congestion_penalty(demand, capacity)
    }

    /// Cost of one via edge (one layer hop) given the via demand already
    /// through that G-cell boundary.
    pub fn via_edge_cost(&self, via_demand: f64) -> f64 {
        self.unit_via
            + self.via_overflow_weight
                * logistic(self.logistic_slope * (via_demand + 1.0 - self.via_capacity))
    }
}

/// The standard logistic function `1 / (1 + e^-x)`.
#[inline]
pub(crate) fn logistic(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_is_bounded_and_monotone() {
        assert!(logistic(-50.0) < 1e-10);
        assert!((logistic(0.0) - 0.5).abs() < 1e-12);
        assert!(logistic(50.0) > 1.0 - 1e-10);
        let mut prev = 0.0;
        for i in -20..=20 {
            let v = logistic(i as f64 * 0.5);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn wire_cost_grows_with_demand() {
        let p = CostParams::default();
        let mut prev = f64::NEG_INFINITY;
        for d in 0..30 {
            let c = p.wire_edge_cost(d as f64, 16.0);
            assert!(c > prev, "cost must be strictly increasing in demand");
            prev = c;
        }
    }

    #[test]
    fn zero_capacity_edges_are_heavily_penalised_but_finite() {
        let p = CostParams::default();
        let c = p.wire_edge_cost(0.0, 0.0);
        assert!(c.is_finite());
        assert!(c > p.overflow_weight);
    }

    #[test]
    fn via_cost_has_fixed_floor() {
        let p = CostParams::default();
        assert!(p.via_edge_cost(0.0) >= p.unit_via);
        assert!(p.via_edge_cost(100.0) > p.via_edge_cost(0.0));
    }

    #[test]
    fn half_capacity_edge_is_cheap_full_edge_is_expensive() {
        let p = CostParams::default();
        let half = p.wire_congestion_penalty(7.0, 16.0);
        let full = p.wire_congestion_penalty(16.0, 16.0);
        assert!(half < 0.01 * p.overflow_weight);
        assert!(full > 0.5 * p.overflow_weight);
    }
}
