//! Worker-sweep wall-clock of the rip-up-and-reroute stage across the
//! three parallelisation strategies (the snapshot recorded in
//! `BENCH_rrr.json`).
//!
//! ```text
//! bench_rrr [--full] [--out PATH] [--workers N] [--iterations N]
//!
//! --full:         sweep the suite's congestion-dominated 5-metal
//!                 benchmarks (default: one small synthetic hotspot design)
//! --out PATH:     where to write the JSON snapshot (default: BENCH_rrr.json)
//! --workers N:    largest worker count in the sweep (default: 8)
//! --iterations N: RRR iterations per run (default: 3)
//! ```
//!
//! Each design is pattern-routed once; every (strategy, workers) cell of
//! the sweep then starts from a clone of that state, so the cells are
//! directly comparable. After **every** run the demand-consistency
//! invariant is asserted: uncommitting all final routes from a clone of
//! the grid must leave exactly zero demand — the lock-free fixed-point
//! congestion store may never drift, whatever the interleaving. The
//! binary aborts if it does.

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;

use fastgr_core::{
    PatternEngine, PatternMode, PatternStage, RrrStage, RrrStrategy, SortingScheme,
};
use fastgr_design::{suite, Design, Generator, GeneratorParams};
use fastgr_grid::{CostParams, GridGraph, Route};
use fastgr_maze::MazeConfig;

const STRATEGIES: [(RrrStrategy, &str); 3] = [
    (RrrStrategy::TaskGraph, "task_graph"),
    (RrrStrategy::BatchBarrier, "batch_barrier"),
    (RrrStrategy::Sequential, "sequential"),
];

struct Run {
    design: String,
    nets: usize,
    strategy: &'static str,
    workers: usize,
    host_seconds: f64,
    modeled_seconds: f64,
    ripped_total: usize,
    dirty_edges: u64,
    rescans_avoided: u64,
    overflow_before: f64,
    overflow_after: f64,
}

/// A small, heavily congested hotspot design for the quick sweep (the
/// same shape the RRR unit tests use, so the smoke run exercises exactly
/// the tested path).
fn smoke_design() -> Design {
    Generator::new(GeneratorParams {
        name: "rrr-smoke".to_string(),
        width: 24,
        height: 24,
        layers: 5,
        num_nets: 360,
        capacity: 3.0,
        hotspots: 2,
        hotspot_affinity: 0.6,
        blockages: 2,
        seed: 5,
    })
    .generate()
}

/// Pattern-routes `design` once, returning the starting state every sweep
/// cell is cloned from.
fn pattern_route(design: &Design) -> (GridGraph, Vec<Route>) {
    let mut graph = design
        .build_graph(CostParams::default())
        .expect("bench designs build");
    let outcome = PatternStage {
        mode: PatternMode::LShape,
        engine: PatternEngine::SequentialCpu,
        sorting: SortingScheme::HpwlAscending,
        steiner_passes: 4,
        congestion_aware_planning: false,
        cost_probing: true,
        validate: false,
    }
    .run(design, &mut graph)
    .expect("bench designs pattern-route");
    (graph, outcome.routes)
}

/// The demand-consistency invariant: the grid's committed demand must be
/// exactly the demand of the stored routes — uncommit everything and the
/// fixed-point ledger reads zero.
fn assert_demand_consistent(graph: &GridGraph, routes: &[Route], context: &str) {
    let mut check = graph.clone();
    for route in routes {
        check
            .uncommit(route)
            .expect("stored routes are committed routes");
    }
    let report = check.report();
    assert_eq!(
        report.total_wire_demand, 0.0,
        "{context}: wire demand drifted"
    );
    assert_eq!(report.total_via_demand, 0.0, "{context}: via demand drifted");
}

fn main() -> ExitCode {
    let mut full = false;
    let mut out_path = String::from("BENCH_rrr.json");
    let mut max_workers = 8usize;
    let mut iterations = 3usize;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--workers" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::FAILURE;
                };
                max_workers = n;
            }
            "--iterations" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--iterations needs a positive integer");
                    return ExitCode::FAILURE;
                };
                iterations = n;
            }
            other => {
                eprintln!(
                    "usage: bench_rrr [--full] [--out PATH] [--workers N] [--iterations N] \
                     (got {other})"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let sweep: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w <= max_workers)
        .collect();

    let designs: Vec<Design> = if full {
        // The 5-metal `m` variants are the congestion-dominated half of
        // the suite — the ones where RRR does real work.
        suite()
            .iter()
            .filter(|s| s.is_m_variant())
            .map(|s| s.generate())
            .collect()
    } else {
        vec![smoke_design()]
    };

    let mut runs: Vec<Run> = Vec::new();
    for design in &designs {
        let (graph0, routes0) = pattern_route(design);
        let overflow_before = graph0.report().overflow;
        for (strategy, strategy_name) in STRATEGIES {
            for &workers in &sweep {
                let mut graph = graph0.clone();
                let mut routes = routes0.clone();
                let stage = RrrStage {
                    iterations,
                    strategy,
                    sorting: SortingScheme::HpwlAscending,
                    maze: MazeConfig::default(),
                    workers,
                    history_increment: 0.0,
                    validate: false,
                };
                let outcome = stage
                    .run(design, &mut graph, &mut routes)
                    .expect("bench designs reroute");
                assert_demand_consistent(
                    &graph,
                    &routes,
                    &format!("{} {strategy_name} x{workers}", design.name()),
                );
                let overflow_after = graph.report().overflow;
                println!(
                    "{:10} {:13} x{:<2} host {:8.3}s  modeled {:8.3}s  ripped {:5}  \
                     dirty {:7}  rescans avoided {:7}  overflow {:9.1} -> {:9.1}",
                    design.name(),
                    strategy_name,
                    workers,
                    outcome.host_seconds,
                    outcome.modeled_parallel_seconds,
                    outcome.nets_ripped.iter().sum::<usize>(),
                    outcome.dirty_edges,
                    outcome.rescans_avoided,
                    overflow_before,
                    overflow_after,
                );
                runs.push(Run {
                    design: design.name().to_string(),
                    nets: design.nets().len(),
                    strategy: strategy_name,
                    workers,
                    host_seconds: outcome.host_seconds,
                    modeled_seconds: outcome.modeled_parallel_seconds,
                    ripped_total: outcome.nets_ripped.iter().sum(),
                    dirty_edges: outcome.dirty_edges,
                    rescans_avoided: outcome.rescans_avoided,
                    overflow_before,
                    overflow_after,
                });
            }
        }
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"suite\": \"{}\",", if full { "full" } else { "quick" });
    let _ = writeln!(json, "  \"iterations\": {iterations},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"worker_sweep\": {sweep:?},");
    let _ = writeln!(json, "  \"demand_consistency\": \"asserted on every run\",");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"design\": \"{}\", \"nets\": {}, \"strategy\": \"{}\", \"workers\": {}, \
             \"host_seconds\": {:.6}, \"modeled_parallel_seconds\": {:.6}, \
             \"nets_ripped\": {}, \"dirty_edges\": {}, \"full_rescan_avoided\": {}, \
             \"overflow_before\": {:.3}, \"overflow_after\": {:.3}}}{}",
            r.design,
            r.nets,
            r.strategy,
            r.workers,
            r.host_seconds,
            r.modeled_seconds,
            r.ripped_total,
            r.dirty_edges,
            r.rescans_avoided,
            r.overflow_before,
            r.overflow_after,
            if i + 1 < runs.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
