//! Min-plus computation-graph flow primitives.
//!
//! The paper reformulates 3-D pattern routing into flows over layer-indexed
//! vectors and matrices (Eqs. 5–7 for the L-shape, Eqs. 11–14 for the
//! Z-shape): every stage is a *min-plus* product — additions followed by a
//! minimum reduction — which maps onto homogeneous GPU threads. These are
//! the exact operations the simulated device executes; every function also
//! returns the argmins needed to reconstruct the winning routing path.

use std::fmt;

/// A dense row-major `rows x cols` matrix of edge weights.
///
/// # Example
///
/// ```
/// use fastgr_gpu::flow::Matrix;
///
/// let mut m = Matrix::filled(2, 3, 0.0);
/// m[(1, 2)] = 7.5;
/// assert_eq!(m[(1, 2)], 7.5);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix with every entry set to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, fill: f64) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes the matrix to `rows x cols` with every entry set to
    /// `fill`, reusing the existing allocation. This is the zero-alloc
    /// (in steady state) counterpart of [`Matrix::filled`] for scratch
    /// matrices that are rebuilt per edge in the pattern DP.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, rows: usize, cols: usize, fill: f64) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, fill);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} weight matrix", self.rows, self.cols)
    }
}

/// Result of a min-plus reduction: values plus the winning indices.
#[derive(Debug, Clone, PartialEq)]
pub struct MinPlus {
    /// The minimised values, one per output lane.
    pub values: Vec<f64>,
    /// For each output lane, the input index that achieved the minimum
    /// (ties resolved to the smallest index; meaningless when the value is
    /// infinite).
    pub argmin: Vec<usize>,
}

/// Min-plus vector–matrix product: `out[t] = min_s (w1[s] + w2[s][t])`.
///
/// This is Eq. 7 of the paper — one L-shape flow computing all `L` target
/// layer costs simultaneously. On the device every `(s, t)` combination is
/// one thread and the reduction is a tree of depth `log L`.
///
/// # Panics
///
/// Panics if `w1.len() != w2.rows()`.
///
/// # Example
///
/// ```
/// use fastgr_gpu::flow::{vec_mat_min_plus, Matrix};
///
/// let w1 = [1.0, 10.0];
/// let mut w2 = Matrix::filled(2, 2, 0.0);
/// w2[(0, 0)] = 5.0;  w2[(0, 1)] = 100.0;
/// w2[(1, 0)] = 0.0;  w2[(1, 1)] = 1.0;
/// let r = vec_mat_min_plus(&w1, &w2);
/// assert_eq!(r.values, vec![6.0, 11.0]);
/// assert_eq!(r.argmin, vec![0, 1]);
/// ```
pub fn vec_mat_min_plus(w1: &[f64], w2: &Matrix) -> MinPlus {
    let mut values = Vec::new();
    let mut argmin = Vec::new();
    vec_mat_min_plus_into(w1, w2, &mut values, &mut argmin);
    MinPlus { values, argmin }
}

/// [`vec_mat_min_plus`] writing into caller-owned buffers (cleared and
/// resized in place, so repeated calls reuse their capacity and allocate
/// nothing in steady state).
///
/// # Panics
///
/// Panics if `w1.len() != w2.rows()`.
pub fn vec_mat_min_plus_into(
    w1: &[f64],
    w2: &Matrix,
    values: &mut Vec<f64>,
    argmin: &mut Vec<usize>,
) {
    assert_eq!(w1.len(), w2.rows(), "w1 length must equal w2 row count");
    let cols = w2.cols();
    values.clear();
    values.resize(cols, f64::INFINITY);
    argmin.clear();
    argmin.resize(cols, 0);
    for (s, &base) in w1.iter().enumerate() {
        let row = w2.row(s);
        for t in 0..cols {
            let v = base + row[t];
            if v < values[t] {
                values[t] = v;
                argmin[t] = s;
            }
        }
    }
}

/// Result of a two-stage min-plus chain with full backtracking.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainMinPlus {
    /// `out[t] = min_{s,b} (w1[s] + w2[s][b] + w3[b][t])`.
    pub values: Vec<f64>,
    /// Winning middle index `b` per output lane.
    pub arg_mid: Vec<usize>,
    /// Winning source index `s` per output lane.
    pub arg_src: Vec<usize>,
}

/// Min-plus chain `w1 ∘ W2 ∘ W3` (Eq. 14): the Z-shape flow for one
/// candidate bend-point pair, producing all `L` target-layer costs with the
/// winning `(source layer, bridge layer)` per target.
///
/// # Panics
///
/// Panics when the shapes are inconsistent.
pub fn chain_min_plus(w1: &[f64], w2: &Matrix, w3: &Matrix) -> ChainMinPlus {
    assert_eq!(w1.len(), w2.rows(), "w1 length must equal w2 row count");
    assert_eq!(w2.cols(), w3.rows(), "w2 cols must equal w3 rows");
    // First stage: best source per bridge layer.
    let stage1 = vec_mat_min_plus(w1, w2);
    // Second stage: best bridge per target layer.
    let stage2 = vec_mat_min_plus(&stage1.values, w3);
    let arg_src = stage2.argmin.iter().map(|&b| stage1.argmin[b]).collect();
    ChainMinPlus {
        values: stage2.values,
        arg_mid: stage2.argmin,
        arg_src,
    }
}

/// Elementwise min-merge over candidate flows (Eq. 10): `out[t] =
/// min_i cand[i][t]`, remembering the winning candidate per lane.
///
/// # Panics
///
/// Panics if `candidates` is empty or the lanes have unequal lengths.
///
/// # Example
///
/// ```
/// use fastgr_gpu::flow::merge_min;
///
/// let r = merge_min(&[vec![3.0, 9.0], vec![5.0, 1.0]]);
/// assert_eq!(r.values, vec![3.0, 1.0]);
/// assert_eq!(r.argmin, vec![0, 1]);
/// ```
pub fn merge_min(candidates: &[Vec<f64>]) -> MinPlus {
    assert!(!candidates.is_empty(), "merge needs at least one candidate");
    let lanes = candidates[0].len();
    let mut values = vec![f64::INFINITY; lanes];
    let mut argmin = vec![0usize; lanes];
    for (i, cand) in candidates.iter().enumerate() {
        assert_eq!(cand.len(), lanes, "candidate lanes must have equal length");
        for t in 0..lanes {
            if cand[t] < values[t] {
                values[t] = cand[t];
                argmin[t] = i;
            }
        }
    }
    MinPlus { values, argmin }
}

/// [`merge_min`] over candidates stored as consecutive `lanes`-wide rows
/// of one flat slice, writing into caller-owned buffers (cleared and
/// resized in place — no steady-state allocation). Ties resolve to the
/// smallest candidate index, exactly like [`merge_min`].
///
/// # Panics
///
/// Panics if `rows` is empty or its length is not a multiple of `lanes`.
pub fn merge_min_rows(
    rows: &[f64],
    lanes: usize,
    values: &mut Vec<f64>,
    argmin: &mut Vec<usize>,
) {
    assert!(
        !rows.is_empty() && rows.len().is_multiple_of(lanes),
        "rows must hold a positive whole number of {lanes}-lane candidates"
    );
    values.clear();
    values.resize(lanes, f64::INFINITY);
    argmin.clear();
    argmin.resize(lanes, 0);
    for (i, cand) in rows.chunks_exact(lanes).enumerate() {
        for t in 0..lanes {
            if cand[t] < values[t] {
                values[t] = cand[t];
                argmin[t] = i;
            }
        }
    }
}

/// Scalar minimum with argmin over a slice (the final Eq. 4 reduction).
///
/// Returns `(index, value)`; `None` on an empty slice.
pub fn argmin(values: &[f64]) -> Option<(usize, f64)> {
    values
        .iter()
        .copied()
        .enumerate()
        .fold(None, |best, (i, v)| match best {
            Some((_, bv)) if bv <= v => best,
            _ => Some((i, v)),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_mat_handles_infinities() {
        let w1 = [f64::INFINITY, 2.0];
        let mut w2 = Matrix::filled(2, 2, 1.0);
        w2[(1, 1)] = f64::INFINITY;
        let r = vec_mat_min_plus(&w1, &w2);
        assert_eq!(r.values[0], 3.0);
        assert_eq!(r.argmin[0], 1);
        assert!(r.values[1].is_infinite());
    }

    #[test]
    fn chain_matches_bruteforce() {
        let l = 4;
        // Deterministic pseudo-random weights.
        let mut next = 1u64;
        let mut rnd = || {
            next = next
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((next >> 33) % 1000) as f64 / 10.0
        };
        let w1: Vec<f64> = (0..l).map(|_| rnd()).collect();
        let mut w2 = Matrix::filled(l, l, 0.0);
        let mut w3 = Matrix::filled(l, l, 0.0);
        for r in 0..l {
            for c in 0..l {
                w2[(r, c)] = rnd();
                w3[(r, c)] = rnd();
            }
        }
        let chain = chain_min_plus(&w1, &w2, &w3);
        for t in 0..l {
            let mut best = f64::INFINITY;
            for s in 0..l {
                for b in 0..l {
                    best = best.min(w1[s] + w2[(s, b)] + w3[(b, t)]);
                }
            }
            assert!((chain.values[t] - best).abs() < 1e-12);
            // Backtracked indices must reproduce the value.
            let (s, b) = (chain.arg_src[t], chain.arg_mid[t]);
            assert!((w1[s] + w2[(s, b)] + w3[(b, t)] - best).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_prefers_first_on_ties() {
        let r = merge_min(&[vec![2.0], vec![2.0]]);
        assert_eq!(r.argmin, vec![0]);
    }

    #[test]
    fn argmin_handles_empty_and_single() {
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[4.2]), Some((0, 4.2)));
        assert_eq!(argmin(&[3.0, 1.0, 1.0]), Some((1, 1.0)));
    }

    #[test]
    #[should_panic(expected = "w1 length")]
    fn shape_mismatch_panics() {
        let _ = vec_mat_min_plus(&[1.0], &Matrix::filled(2, 2, 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_merge_panics() {
        let _ = merge_min(&[]);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let w1 = [1.0, 10.0, 4.0];
        let mut w2 = Matrix::filled(3, 3, 2.0);
        w2[(1, 0)] = -5.0;
        w2[(2, 2)] = 0.5;
        let reference = vec_mat_min_plus(&w1, &w2);
        let (mut values, mut argmin) = (Vec::new(), Vec::new());
        // Two rounds: the second must reuse capacity and still be correct.
        for _ in 0..2 {
            vec_mat_min_plus_into(&w1, &w2, &mut values, &mut argmin);
            assert_eq!(values, reference.values);
            assert_eq!(argmin, reference.argmin);
        }

        let flat = [3.0, 9.0, 5.0, 1.0];
        let reference = merge_min(&[vec![3.0, 9.0], vec![5.0, 1.0]]);
        merge_min_rows(&flat, 2, &mut values, &mut argmin);
        assert_eq!(values, reference.values);
        assert_eq!(argmin, reference.argmin);
    }

    #[test]
    fn matrix_reset_reshapes_and_refills() {
        let mut m = Matrix::filled(2, 2, 1.0);
        m[(0, 1)] = 9.0;
        m.reset(3, 4, f64::INFINITY);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.row(0).iter().all(|v| v.is_infinite()));
        m.reset(1, 1, 0.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn matrix_indexing_round_trips() {
        let mut m = Matrix::filled(3, 4, 0.0);
        m[(2, 3)] = 9.0;
        assert_eq!(m[(2, 3)], 9.0);
        assert_eq!(m.row(2)[3], 9.0);
        assert_eq!(m.to_string(), "3x4 weight matrix");
    }
}
