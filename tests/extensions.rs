//! Integration tests of the beyond-the-paper extensions: negotiated
//! congestion, congestion-aware planning, and the CPU-parallel engine.

use fastgr::core::{LayerUsage, PatternEngine, Router, RouterConfig};
use fastgr::design::{Generator, GeneratorParams};

fn congested_design(seed: u64) -> fastgr::design::Design {
    Generator::new(GeneratorParams {
        name: format!("ext-{seed}"),
        width: 24,
        height: 24,
        layers: 6,
        num_nets: 340,
        capacity: 3.0,
        hotspots: 3,
        hotspot_affinity: 0.55,
        blockages: 2,
        seed,
    })
    .generate()
}

#[test]
fn history_cost_reduces_shorts_with_extra_iterations() {
    let design = congested_design(41);
    let plain = Router::new(RouterConfig::fastgr_l()).run(&design).expect("ok");
    let with_history = RouterConfig::fastgr_l()
        .with_history_increment(4.0)
        .with_rrr_iterations(8);
    let negotiated = Router::new(with_history).run(&design).expect("ok");
    assert!(
        negotiated.metrics.shorts <= plain.metrics.shorts,
        "negotiation must not worsen shorts: {} vs {}",
        negotiated.metrics.shorts,
        plain.metrics.shorts
    );
}

#[test]
fn history_cost_preserves_invariants() {
    let design = congested_design(42);
    let config = RouterConfig::fastgr_l().with_history_increment(2.0);
    let outcome = Router::new(config).run(&design).expect("ok");
    for route in &outcome.routes {
        assert!(route.is_connected());
    }
    // Shorts derive from demand vs capacity only — history must not leak
    // into the congestion report.
    let mut graph = design
        .build_graph(fastgr::grid::CostParams::default())
        .expect("valid");
    for route in &outcome.routes {
        graph.commit(route).expect("valid");
    }
    assert_eq!(graph.report().overflow, outcome.report.overflow);
}

#[test]
fn congestion_aware_planning_routes_cleanly() {
    let design = congested_design(43);
    let config = RouterConfig::fastgr_l().with_congestion_aware_planning(true);
    let outcome = Router::new(config).run(&design).expect("ok");
    assert!(outcome.guides.covers_pins(&design));
    for (net, route) in design.nets().iter().zip(&outcome.routes) {
        assert!(route.is_connected(), "net {} broken", net.name());
    }
    // Deterministic like every other mode.
    let again = Router::new(config).run(&design).expect("ok");
    assert_eq!(outcome.routes, again.routes);
}

#[test]
fn parallel_cpu_engine_runs_through_the_router() {
    let design = congested_design(44);
    let config = RouterConfig::fastgr_l().with_engine(PatternEngine::ParallelCpu { workers: 4 });
    let outcome = Router::new(config).run(&design).expect("ok");
    assert!(outcome.timings.pattern_gpu_seconds.is_none());
    assert!(outcome.metrics.wirelength > 0);
    for route in &outcome.routes {
        assert!(route.is_connected());
    }
}

#[test]
fn layer_usage_of_a_routed_design_is_consistent() {
    let design = congested_design(45);
    let outcome = Router::new(RouterConfig::fastgr_h()).run(&design).expect("ok");
    let usage = LayerUsage::from_routes(design.layers(), &outcome.routes);
    assert_eq!(usage.total_wirelength(), outcome.metrics.wirelength);
    assert_eq!(usage.total_vias(), outcome.metrics.vias);
    assert_eq!(usage.wirelength(0), 0, "pin layer carries no wire");
    // Pin access means the lowest boundary carries the most vias.
    assert!(usage.vias_from(0) >= usage.vias_from(design.layers() - 2));
}

#[test]
fn rudy_and_pattern_estimates_agree_on_hot_regions() {
    let design = congested_design(46);
    let rudy = fastgr::core::rudy_map(&design);
    let estimate = fastgr::core::estimate_congestion(&design).expect("ok");
    // Correlation check: the average RUDY density over the routed hot
    // cells must exceed the global average (the estimators agree on where
    // the action is).
    let w = design.width() as usize;
    let global_avg: f64 = rudy.iter().sum::<f64>() / rudy.len() as f64;
    let hot: Vec<usize> = estimate
        .heatmap
        .iter()
        .enumerate()
        .filter(|(_, &u)| u > 0.9)
        .map(|(i, _)| i)
        .collect();
    assert!(!hot.is_empty(), "expected some hot cells");
    let hot_avg: f64 = hot.iter().map(|&i| rudy[i]).sum::<f64>() / hot.len() as f64;
    assert!(
        hot_avg > global_avg,
        "hot-cell RUDY {hot_avg:.3} should exceed global {global_avg:.3}"
    );
    let _ = w;
}
