//! A tiny, fully deterministic PRNG for benchmark generation.
//!
//! The synthetic suite must produce byte-identical designs forever, across
//! platforms and dependency upgrades, so we use a self-contained SplitMix64
//! instead of an external RNG whose stream may change between versions.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Deterministic, fast, and good enough for workload synthesis. Not
/// cryptographic.
///
/// # Example
///
/// ```
/// use fastgr_design::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; negligible bias for the small bounds we use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed float with the given `mean`.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_reproducible() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output_is_stable() {
        // Regression pin: the whole benchmark suite depends on this stream.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
            let v = r.next_range(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(r.next_range(4, 4), 4);
    }

    #[test]
    fn mean_is_roughly_uniform() {
        let mut r = SplitMix64::new(77);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SplitMix64::new(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean} far from 3.0");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
