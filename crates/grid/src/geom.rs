//! Geometric primitives used throughout the router.

use std::fmt;

/// A 2-D G-cell coordinate on the routing grid.
///
/// Coordinates are grid indices, not physical microns: the grid graph has one
/// vertex per G-cell per layer and `Point2` names the 2-D projection of such
/// a vertex.
///
/// # Example
///
/// ```
/// use fastgr_grid::Point2;
///
/// let a = Point2::new(3, 4);
/// let b = Point2::new(6, 8);
/// assert_eq!(a.manhattan_distance(b), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point2 {
    /// Column index of the G-cell.
    pub x: u16,
    /// Row index of the G-cell.
    pub y: u16,
}

impl Point2 {
    /// Creates a 2-D G-cell coordinate.
    pub const fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan (rectilinear) distance to `other` in G-cell units.
    pub fn manhattan_distance(self, other: Point2) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Returns `true` when both coordinates are aligned on the same row or
    /// column (so a single straight wire can join them).
    pub fn is_aligned_with(self, other: Point2) -> bool {
        self.x == other.x || self.y == other.y
    }

    /// Lifts this projection onto metal layer `layer`.
    pub const fn on_layer(self, layer: u8) -> Point3 {
        Point3::new(self.x, self.y, layer)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Point2 {
    fn from((x, y): (u16, u16)) -> Self {
        Self::new(x, y)
    }
}

/// A 3-D grid-graph vertex: a G-cell on a specific metal layer.
///
/// # Example
///
/// ```
/// use fastgr_grid::{Point2, Point3};
///
/// let p = Point3::new(3, 4, 2);
/// assert_eq!(p.xy(), Point2::new(3, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point3 {
    /// Column index of the G-cell.
    pub x: u16,
    /// Row index of the G-cell.
    pub y: u16,
    /// Metal layer index (0 = lowest / pin layer).
    pub layer: u8,
}

impl Point3 {
    /// Creates a 3-D grid-graph vertex.
    pub const fn new(x: u16, y: u16, layer: u8) -> Self {
        Self { x, y, layer }
    }

    /// The 2-D projection of this vertex.
    pub const fn xy(self) -> Point2 {
        Point2::new(self.x, self.y)
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, M{})", self.x, self.y, self.layer)
    }
}

impl From<(u16, u16, u8)> for Point3 {
    fn from((x, y, layer): (u16, u16, u8)) -> Self {
        Self::new(x, y, layer)
    }
}

/// An axis-aligned inclusive rectangle of G-cells.
///
/// `Rect` is the bounding-box currency of the router: net bounding boxes,
/// task conflict tests and maze-search windows are all expressed with it.
/// Both corners are *inclusive*, so a degenerate rectangle covering one
/// G-cell has `lo == hi`.
///
/// # Example
///
/// ```
/// use fastgr_grid::{Point2, Rect};
///
/// let a = Rect::new(Point2::new(0, 0), Point2::new(4, 2));
/// let b = Rect::new(Point2::new(4, 2), Point2::new(9, 9));
/// assert!(a.intersects(&b)); // they share the G-cell (4, 2)
/// assert_eq!(a.half_perimeter(), 6);
/// assert_eq!(a.area(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Lower-left corner (inclusive).
    pub lo: Point2,
    /// Upper-right corner (inclusive).
    pub hi: Point2,
}

impl Rect {
    /// Creates a rectangle from two corners, normalising their order.
    pub fn new(a: Point2, b: Point2) -> Self {
        Self {
            lo: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The smallest rectangle containing every point of `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = Point2>,
    {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut rect = Rect::new(first, first);
        for p in iter {
            rect.expand_to(p);
        }
        Some(rect)
    }

    /// Grows the rectangle (in place) so it contains `p`.
    pub fn expand_to(&mut self, p: Point2) {
        self.lo.x = self.lo.x.min(p.x);
        self.lo.y = self.lo.y.min(p.y);
        self.hi.x = self.hi.x.max(p.x);
        self.hi.y = self.hi.y.max(p.y);
    }

    /// Grows the rectangle by `margin` G-cells on every side, clamped to the
    /// `[0, width) x [0, height)` grid.
    pub fn inflated(&self, margin: u16, width: u16, height: u16) -> Self {
        Self {
            lo: Point2::new(
                self.lo.x.saturating_sub(margin),
                self.lo.y.saturating_sub(margin),
            ),
            hi: Point2::new(
                (self.hi.x + margin).min(width.saturating_sub(1)),
                (self.hi.y + margin).min(height.saturating_sub(1)),
            ),
        }
    }

    /// Width of the bounding box in G-cells (`M` in the paper, `>= 1`).
    pub fn width(&self) -> u16 {
        self.hi.x - self.lo.x + 1
    }

    /// Height of the bounding box in G-cells (`N` in the paper, `>= 1`).
    pub fn height(&self) -> u16 {
        self.hi.y - self.lo.y + 1
    }

    /// Half-perimeter wirelength (HPWL) in G-cell *edge* units: the minimum
    /// rectilinear wirelength of any tree spanning the two corners.
    pub fn half_perimeter(&self) -> u32 {
        (self.width() as u32 - 1) + (self.height() as u32 - 1)
    }

    /// Number of G-cells covered by the box.
    pub fn area(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    /// Whether the two (inclusive) rectangles share at least one G-cell.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Whether `p` lies inside the rectangle.
    pub fn contains(&self, p: Point2) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point2::new(1, 9);
        let b = Point2::new(7, 2);
        assert_eq!(a.manhattan_distance(b), 13);
        assert_eq!(b.manhattan_distance(a), 13);
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn alignment_detects_shared_row_or_column() {
        assert!(Point2::new(3, 5).is_aligned_with(Point2::new(3, 9)));
        assert!(Point2::new(3, 5).is_aligned_with(Point2::new(8, 5)));
        assert!(!Point2::new(3, 5).is_aligned_with(Point2::new(4, 6)));
    }

    #[test]
    fn rect_normalises_corner_order() {
        let r = Rect::new(Point2::new(9, 1), Point2::new(2, 7));
        assert_eq!(r.lo, Point2::new(2, 1));
        assert_eq!(r.hi, Point2::new(9, 7));
    }

    #[test]
    fn rect_bounding_covers_all_points() {
        let pts = [Point2::new(4, 4), Point2::new(1, 8), Point2::new(6, 2)];
        let r = Rect::bounding(pts).expect("non-empty");
        for p in pts {
            assert!(r.contains(p));
        }
        assert_eq!(r.lo, Point2::new(1, 2));
        assert_eq!(r.hi, Point2::new(6, 8));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn degenerate_rect_has_zero_hpwl_and_unit_area() {
        let r = Rect::new(Point2::new(5, 5), Point2::new(5, 5));
        assert_eq!(r.half_perimeter(), 0);
        assert_eq!(r.area(), 1);
        assert_eq!(r.width(), 1);
        assert_eq!(r.height(), 1);
    }

    #[test]
    fn intersection_includes_edge_touching() {
        let a = Rect::new(Point2::new(0, 0), Point2::new(4, 4));
        let b = Rect::new(Point2::new(4, 4), Point2::new(8, 8));
        let c = Rect::new(Point2::new(5, 5), Point2::new(8, 8));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
    }

    #[test]
    fn inflate_clamps_to_grid() {
        let r = Rect::new(Point2::new(0, 1), Point2::new(9, 9));
        let g = r.inflated(2, 10, 10);
        assert_eq!(g.lo, Point2::new(0, 0));
        assert_eq!(g.hi, Point2::new(9, 9));
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(Point3::new(1, 2, 3).to_string(), "(1, 2, M3)");
        assert_eq!(
            Rect::new(Point2::new(0, 0), Point2::new(1, 1)).to_string(),
            "[(0, 0) .. (1, 1)]"
        );
    }
}
