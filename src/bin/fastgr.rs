//! The `fastgr` command-line router.
//!
//! ```text
//! fastgr suite
//!     List the built-in benchmark suite.
//!
//! fastgr generate <suite-name | tiny> [--seed N] [--out design.txt]
//!     Generate a synthetic design and write it in the text format.
//!
//! fastgr info <design.txt>
//!     Print design statistics.
//!
//! fastgr route <design.txt | suite-name>
//!        [--preset cugr|fastgr-l|fastgr-h] [--guides out.guide]
//!        [--sort pins-asc|pins-desc|hpwl-asc|hpwl-desc|area-asc|area-desc]
//!        [--iterations N] [--svg out.svg] [--trace out.json]
//!     Route the design and print quality metrics and stage timings;
//!     optionally write ISPD-style routing guides, an SVG rendering, or a
//!     Chrome `trace_event` profile (load in Perfetto / chrome://tracing).
//! ```

use std::fs;
use std::process::ExitCode;

use fastgr::core::{Router, RouterConfig, SortingScheme};
use fastgr::design::{BenchmarkSpec, Design, Generator};
use fastgr::Recorder;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fastgr suite\n  fastgr generate <suite-name|tiny> [--seed N] [--out FILE]\n  \
         fastgr info <design.txt>\n  fastgr route <design.txt|suite-name> [--preset P] \
         [--guides FILE] [--sort SCHEME] [--iterations N] [--svg FILE] [--trace FILE]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "suite" => cmd_suite(),
        "generate" => cmd_generate(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "route" => cmd_route(&args[1..]),
        _ => usage(),
    }
}

fn cmd_suite() -> ExitCode {
    println!(
        "{:<9} {:>7} {:>9} {:>7}  analogue",
        "name", "nets", "grid", "layers"
    );
    for s in fastgr::design::suite() {
        println!(
            "{:<9} {:>7} {:>6}x{:<3} {:>6}  {} ({} nets)",
            s.name,
            s.nets,
            s.grid,
            s.grid,
            s.layers - 1,
            s.paper_analogue,
            s.paper_nets
        );
    }
    ExitCode::SUCCESS
}

/// Loads a design from a file path (native text format or an ISPD2008
/// `.gr` benchmark, selected by extension) or a suite benchmark name.
fn load_design(source: &str) -> Result<Design, String> {
    if let Some(spec) = BenchmarkSpec::find(source) {
        return Ok(spec.generate());
    }
    let text = fs::read_to_string(source)
        .map_err(|e| format!("cannot read {source:?} (and it is not a suite name): {e}"))?;
    if source.ends_with(".gr") {
        let name = source
            .rsplit('/')
            .next()
            .unwrap_or(source)
            .trim_end_matches(".gr");
        Design::from_ispd2008(name, &text).map_err(|e| format!("parse ispd {source}: {e}"))
    } else {
        Design::from_text(&text).map_err(|e| format!("parse {source}: {e}"))
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let design = if name == "tiny" {
        Generator::tiny(seed).generate()
    } else if let Some(spec) = BenchmarkSpec::find(name) {
        spec.generate()
    } else {
        eprintln!("unknown design {name:?}; use `fastgr suite` or `tiny`");
        return ExitCode::FAILURE;
    };
    let text = design.to_text();
    match flag_value(args, "--out") {
        Some(path) => {
            if let Err(e) = fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} ({} bytes)", path, text.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(source) = args.first() else {
        return usage();
    };
    let design = match load_design(source) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{design}");
    println!("pins: {}", design.pin_count());
    println!("blockages: {}", design.blockages().len());
    let mut by_pins = std::collections::BTreeMap::new();
    for net in design.nets() {
        *by_pins.entry(net.pin_count().min(9)).or_insert(0u32) += 1;
    }
    for (pins, count) in by_pins {
        let label = if pins == 9 {
            "9+".to_string()
        } else {
            pins.to_string()
        };
        println!("  {label}-pin nets: {count}");
    }
    let max_hpwl = design.nets().iter().map(|n| n.hpwl()).max().unwrap_or(0);
    println!("largest net HPWL: {max_hpwl}");
    ExitCode::SUCCESS
}

fn cmd_route(args: &[String]) -> ExitCode {
    let Some(source) = args.first() else {
        return usage();
    };
    let design = match load_design(source) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = match flag_value(args, "--preset").unwrap_or("fastgr-l") {
        "cugr" => RouterConfig::cugr(),
        "fastgr-l" => RouterConfig::fastgr_l(),
        "fastgr-h" => RouterConfig::fastgr_h(),
        other => {
            eprintln!("unknown preset {other:?} (cugr | fastgr-l | fastgr-h)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(sort) = flag_value(args, "--sort") {
        let scheme = match sort {
            "pins-asc" => SortingScheme::PinsAscending,
            "pins-desc" => SortingScheme::PinsDescending,
            "hpwl-asc" => SortingScheme::HpwlAscending,
            "hpwl-desc" => SortingScheme::HpwlDescending,
            "area-asc" => SortingScheme::AreaAscending,
            "area-desc" => SortingScheme::AreaDescending,
            other => {
                eprintln!("unknown sorting scheme {other:?}");
                return ExitCode::FAILURE;
            }
        };
        config = config.with_sorting(scheme);
    }
    if let Some(iters) = flag_value(args, "--iterations") {
        match iters.parse() {
            Ok(n) => config = config.with_rrr_iterations(n),
            Err(_) => {
                eprintln!("--iterations expects a number, got {iters:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let trace_path = flag_value(args, "--trace");
    let recorder = if trace_path.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    println!("{design}");
    let outcome = match Router::new(config).run_with_recorder(&design, &recorder) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("routing failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("quality:  {}", outcome.metrics);
    println!("timings:  {}", outcome.timings);
    println!("batches:  {}", outcome.trace.pattern_batches());
    println!("ripped:   {:?}", outcome.trace.nets_ripped());
    println!("congestion: {}", outcome.report);
    if let Some(path) = trace_path {
        let json = outcome.trace.to_chrome_trace_json();
        if let Err(e) = fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote trace to {path} ({} bytes)", json.len());
        print!("{}", outcome.trace.summary_table());
    }

    if let Some(path) = flag_value(args, "--svg") {
        let svg = fastgr::viz::SvgRenderer::new().render_routes(&design, &outcome.routes);
        if let Err(e) = fs::write(path, &svg) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote rendering to {path}");
    }
    if let Some(path) = flag_value(args, "--guides") {
        let text = outcome.guides.to_guide_text(&design);
        if let Err(e) = fs::write(path, &text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote guides to {path} ({} boxes)",
            outcome.guides.box_count()
        );
    }
    ExitCode::SUCCESS
}
