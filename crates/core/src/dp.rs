//! The GPU-friendly pattern-routing dynamic program (paper Section III-D/E/F).
//!
//! One multi-pin net maps to one device block. Its two-pin nets (tree edges)
//! are processed in the bottom-up DFS order; for every edge the DP computes
//! `c*(Ps, Pt, lt)` — the minimum cost of routing the edge plus its whole
//! child subtree, arriving at the parent position on layer `lt` — via the
//! min-plus computation-graph flows of Eqs. 5–7 (L-shape) and 11–14
//! (Z/hybrid shape), merged per Eq. 10. The bottom-children cost of Eq. 2 is
//! solved exactly by via-stack interval enumeration (`O(L^2)` intervals,
//! see `DESIGN.md` §6).
//!
//! Full argmin backtracking reconstructs the winning geometry, including
//! the via stacks joining children (and the pin-layer access stacks, which
//! this reproduction folds into the same interval formulation: a pin node
//! forces its via stack to reach layer 0).

use fastgr_gpu::flow::{chain_min_plus, merge_min, vec_mat_min_plus, Matrix};
use fastgr_gpu::BlockProfile;
use fastgr_grid::{GridGraph, Point2, Route, Segment, Via};
use fastgr_steiner::{RouteTree, TreeEdge};

use crate::selection::{NetClass, SelectionThresholds};

/// Which candidate pattern set each two-pin net is routed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternMode {
    /// 3-D L-shape patterns only (`L x L` candidates) — FastGR_L.
    LShape,
    /// Pure Z-shape patterns (`(M + N - 2) x L^3` candidates) — the
    /// Section III-E kernel, kept for ablation.
    ZShape,
    /// Hybrid shape (Z + degenerate L, `M + N` bend pairs) with the
    /// selection technique: only *medium* nets (per the thresholds) use the
    /// hybrid kernel, the rest use L-shape — FastGR_H.
    Hybrid(SelectionThresholds),
    /// Hybrid shape applied to every two-pin net regardless of size
    /// (the "without selection" ablation of Table VI).
    HybridAll,
}

/// Result of routing one multi-pin net with the pattern DP.
#[derive(Debug, Clone)]
pub struct NetDpResult {
    /// The winning geometry (connected; includes pin-access via stacks).
    pub route: Route,
    /// The DP cost of the winning solution under the current congestion.
    pub cost: f64,
    /// Simulated device flow profile of this net's block.
    pub profile: BlockProfile,
}

/// Per-(edge, target-layer) backtracking record.
#[derive(Debug, Clone, Copy)]
struct EdgeChoice {
    /// Candidate index (pattern-dependent meaning) or `CAND_PURE_VIA`.
    candidate: u32,
    /// Winning source layer `ls`.
    ls: u8,
    /// Winning bridge layer `lb` (Z/hybrid only; unused for L-shape).
    lb: u8,
}

const CAND_PURE_VIA: u32 = u32::MAX;

/// Chosen via-stack interval and child arrival layers at a node, per `ls`.
#[derive(Debug, Clone, Default)]
struct StackChoice {
    lo: u8,
    hi: u8,
    child_layers: Vec<u8>,
}

/// The pattern-routing DP engine for one grid state.
///
/// # Example
///
/// ```
/// use fastgr_core::{PatternDp, PatternMode};
/// use fastgr_design::{Net, NetId, Pin};
/// use fastgr_grid::{CostParams, GridGraph, Point2};
/// use fastgr_steiner::SteinerBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut graph = GridGraph::new(16, 16, 5, CostParams::default())?;
/// graph.fill_capacity(4.0);
/// let net = Net::new(NetId(0), "n", vec![
///     Pin::new(Point2::new(1, 1), 0),
///     Pin::new(Point2::new(10, 7), 0),
/// ]);
/// let tree = SteinerBuilder::new().build(&net);
/// let dp = PatternDp::new(&graph, PatternMode::LShape);
/// let result = dp.route_net(&tree).expect("routable");
/// assert!(result.route.is_connected());
/// assert_eq!(result.route.wirelength(), 15); // HPWL-tight L path
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PatternDp<'g> {
    graph: &'g GridGraph,
    mode: PatternMode,
}

impl<'g> PatternDp<'g> {
    /// Creates a DP engine over the given grid state.
    pub fn new(graph: &'g GridGraph, mode: PatternMode) -> Self {
        Self { graph, mode }
    }

    /// The pattern mode in use.
    pub fn mode(&self) -> PatternMode {
        self.mode
    }

    /// Routes one net given its Steiner tree. Returns `None` when no
    /// finite-cost pattern exists (fewer than one routable layer per
    /// direction — cannot happen on the standard suite's grids).
    pub fn route_net(&self, tree: &RouteTree) -> Option<NetDpResult> {
        let l = self.graph.num_layers() as usize;
        let edges = tree.ordered_edges();
        if edges.is_empty() {
            // Single-node net: no geometry needed.
            return Some(NetDpResult {
                route: Route::new(),
                cost: 0.0,
                profile: BlockProfile::new(1, 1),
            });
        }

        let n_nodes = tree.node_count();
        // Per-edge DP tables, indexed by the edge's child node.
        let mut edge_cost: Vec<Vec<f64>> = vec![Vec::new(); n_nodes];
        let mut edge_choice: Vec<Vec<EdgeChoice>> = vec![Vec::new(); n_nodes];
        // Per-node bottom cost tables (indexed by node, then ls).
        let mut stack_choice: Vec<Vec<StackChoice>> = vec![Vec::new(); n_nodes];
        let mut profile = BlockProfile::new(1, 0);

        for &edge in &edges {
            let v = edge.child as usize;
            let ps = tree.node(edge.child).position;
            let pt = tree.node(edge.parent).position;

            // Bottom-children cost of the child node (Eq. 2 + pin access).
            let child_edges = tree.child_edges(edge);
            let child_costs: Vec<&[f64]> = child_edges
                .iter()
                .map(|c| edge_cost[c.child as usize].as_slice())
                .collect();
            let (cbc, choices) = self.bottom_cost(ps, tree.node(edge.child).is_pin, &child_costs);
            stack_choice[v] = choices;
            profile = profile.then(BlockProfile::new(
                l * l,
                1 + (child_costs.len() + 1).next_power_of_two().trailing_zeros() as usize,
            ));

            // Route the edge with the mode-selected pattern set.
            let hpwl = ps.manhattan_distance(pt);
            let use_hybrid = match self.mode {
                PatternMode::LShape => false,
                PatternMode::ZShape => true,
                PatternMode::HybridAll => true,
                PatternMode::Hybrid(sel) => sel.classify(hpwl) == NetClass::Medium,
            };
            let (cost, choice, edge_profile) = if ps == pt {
                self.pure_via(ps, &cbc)
            } else if use_hybrid {
                self.z_or_hybrid(ps, pt, &cbc, matches!(self.mode, PatternMode::ZShape))
            } else {
                self.l_shape(ps, pt, &cbc)
            };
            profile = profile.then(edge_profile);
            edge_cost[v] = cost;
            edge_choice[v] = choice;
        }

        // Final reduction at the root (Eq. 4 generalised to multi-child
        // roots): pick the via-stack interval covering the root pin.
        let root = tree.root();
        let root_children: Vec<TreeEdge> = tree
            .node(root)
            .children
            .iter()
            .map(|&c| TreeEdge {
                child: c,
                parent: root,
            })
            .collect();
        let root_costs: Vec<&[f64]> = root_children
            .iter()
            .map(|c| edge_cost[c.child as usize].as_slice())
            .collect();
        let root_pos = tree.node(root).position;
        let (root_total, root_stack) =
            self.root_cost(root_pos, tree.node(root).is_pin, &root_costs)?;
        profile = profile.then(BlockProfile::new(l * l, 2));

        // Back-track the geometry.
        let mut route = Route::new();
        emit_stack(&mut route, root_pos, &root_stack);
        let mut stack = Vec::new();
        for (i, ce) in root_children.iter().enumerate() {
            stack.push((*ce, root_stack.child_layers[i]));
        }
        while let Some((edge, lt)) = stack.pop() {
            let v = edge.child as usize;
            let choice = edge_choice[v][lt as usize];
            let ps = tree.node(edge.child).position;
            let pt = tree.node(edge.parent).position;
            self.emit_edge(&mut route, ps, pt, lt, choice);
            let node_stack = &stack_choice[v][choice.ls as usize];
            emit_stack(&mut route, ps, node_stack);
            for (i, ce) in tree.child_edges(edge).iter().enumerate() {
                stack.push((*ce, node_stack.child_layers[i]));
            }
        }
        // Canonicalise: tree legs may overlap (two children sharing a
        // row); the physical net occupies each track once, so demand is
        // committed on the union. The DP cost keeps counting legs
        // independently (that is the objective the kernels optimise), so
        // `cost` is an upper bound on the geometry's cost.
        route.normalize();
        debug_assert!(route.is_connected(), "pattern route must be connected");

        Some(NetDpResult {
            route,
            cost: root_total,
            profile,
        })
    }

    /// Bottom-children cost `cbc(Ps, ls)` (Eq. 2) with pin access folded in:
    /// for every source layer `ls`, choose the via-stack interval
    /// `[lo, hi] ∋ ls` (with `lo = 0` forced at pins) minimising stack cost
    /// plus each child's best arrival layer inside the interval.
    fn bottom_cost(
        &self,
        pos: Point2,
        is_pin: bool,
        children: &[&[f64]],
    ) -> (Vec<f64>, Vec<StackChoice>) {
        let l = self.graph.num_layers() as usize;
        let mut cbc = vec![f64::INFINITY; l];
        let mut choices = vec![StackChoice::default(); l];
        for ls in 1..l {
            let lo_candidates: Vec<u8> = if is_pin {
                vec![0]
            } else {
                (1..=ls as u8).collect()
            };
            for lo in lo_candidates {
                for hi in ls as u8..l as u8 {
                    let mut total = self.graph.via_stack_cost(pos, lo, hi);
                    if !total.is_finite() {
                        continue;
                    }
                    let mut layers = Vec::with_capacity(children.len());
                    for child in children {
                        let from = lo.max(1) as usize;
                        let (best_l, best_c) =
                            ((from)..=(hi as usize)).map(|cl| (cl, child[cl])).fold(
                                (from, f64::INFINITY),
                                |acc, (cl, c)| {
                                    if c < acc.1 {
                                        (cl, c)
                                    } else {
                                        acc
                                    }
                                },
                            );
                        total += best_c;
                        layers.push(best_l as u8);
                    }
                    if total < cbc[ls] {
                        cbc[ls] = total;
                        choices[ls] = StackChoice {
                            lo,
                            hi,
                            child_layers: layers,
                        };
                    }
                }
            }
        }
        (cbc, choices)
    }

    /// Root reduction: like [`Self::bottom_cost`] but with no outgoing edge,
    /// minimising over the interval alone. Returns `None` when infeasible.
    fn root_cost(
        &self,
        pos: Point2,
        is_pin: bool,
        children: &[&[f64]],
    ) -> Option<(f64, StackChoice)> {
        let l = self.graph.num_layers() as usize;
        let mut best = f64::INFINITY;
        let mut best_choice = StackChoice::default();
        let lo_candidates: Vec<u8> = if is_pin {
            vec![0]
        } else {
            (1..l as u8).collect()
        };
        for lo in lo_candidates {
            for hi in lo.max(1)..l as u8 {
                if hi < lo {
                    continue;
                }
                let mut total = self.graph.via_stack_cost(pos, lo, hi);
                if !total.is_finite() {
                    continue;
                }
                let mut layers = Vec::with_capacity(children.len());
                for child in children {
                    let from = lo.max(1) as usize;
                    let (best_l, best_c) = (from..=(hi as usize)).map(|cl| (cl, child[cl])).fold(
                        (from, f64::INFINITY),
                        |acc, (cl, c)| {
                            if c < acc.1 {
                                (cl, c)
                            } else {
                                acc
                            }
                        },
                    );
                    total += best_c;
                    layers.push(best_l as u8);
                }
                if total < best {
                    best = total;
                    best_choice = StackChoice {
                        lo,
                        hi,
                        child_layers: layers,
                    };
                }
            }
        }
        best.is_finite().then_some((best, best_choice))
    }

    /// Degenerate edge whose endpoints share a G-cell: a pure via stack.
    fn pure_via(&self, pos: Point2, cbc: &[f64]) -> (Vec<f64>, Vec<EdgeChoice>, BlockProfile) {
        let l = cbc.len();
        let mut cost = vec![f64::INFINITY; l];
        let mut choice = vec![
            EdgeChoice {
                candidate: CAND_PURE_VIA,
                ls: 0,
                lb: 0
            };
            l
        ];
        for lt in 1..l {
            for (ls, &bottom) in cbc.iter().enumerate().skip(1) {
                let c = bottom + self.graph.via_stack_cost(pos, ls as u8, lt as u8);
                if c < cost[lt] {
                    cost[lt] = c;
                    choice[lt] = EdgeChoice {
                        candidate: CAND_PURE_VIA,
                        ls: ls as u8,
                        lb: 0,
                    };
                }
            }
        }
        (cost, choice, BlockProfile::new(l * l, 2))
    }

    /// The GPU-friendly 3-D L-shape flow (Eqs. 5–7, Fig. 8): two bend
    /// candidates, each an `L x L` min-plus product, merged per target
    /// layer.
    fn l_shape(
        &self,
        ps: Point2,
        pt: Point2,
        cbc: &[f64],
    ) -> (Vec<f64>, Vec<EdgeChoice>, BlockProfile) {
        let l = cbc.len();
        let bends = [Point2::new(pt.x, ps.y), Point2::new(ps.x, pt.y)];
        let mut candidate_values: Vec<Vec<f64>> = Vec::with_capacity(2);
        let mut candidate_args: Vec<Vec<usize>> = Vec::with_capacity(2);
        for bend in bends {
            // w1[ls] = cbc(Ps, ls) + cw(Ps, B, ls)            (Eq. 5)
            let w1: Vec<f64> = cbc
                .iter()
                .enumerate()
                .map(|(ls, &c)| c + self.graph.wire_run_cost(ls as u8, ps, bend))
                .collect();
            // w2[ls][lt] = cv(B, ls, lt) + cw(B, T, lt)       (Eq. 6)
            let mut w2 = Matrix::filled(l, l, f64::INFINITY);
            for ls in 0..l {
                for lt in 1..l {
                    let via = self.graph.via_stack_cost(bend, ls as u8, lt as u8);
                    let wire = self.graph.wire_run_cost(lt as u8, bend, pt);
                    w2[(ls, lt)] = via + wire;
                }
            }
            // c*(lt) = min_ls (w1[ls] + w2[ls][lt])           (Eq. 7)
            let r = vec_mat_min_plus(&w1, &w2);
            candidate_values.push(r.values);
            candidate_args.push(r.argmin);
        }
        let merged = merge_min(&candidate_values);
        let choice: Vec<EdgeChoice> = (0..l)
            .map(|lt| {
                let cand = merged.argmin[lt];
                EdgeChoice {
                    candidate: cand as u32,
                    ls: candidate_args[cand][lt] as u8,
                    lb: 0,
                }
            })
            .collect();
        // Flow: build stage + reduce over ls + merge over 2 candidates.
        let depth = 2 + (l.next_power_of_two().trailing_zeros() as usize) + 1;
        (merged.values, choice, BlockProfile::new(2 * l * l, depth))
    }

    /// The GPU-friendly 3-D Z-shape / hybrid flow (Eqs. 11–14, Figs. 9–10):
    /// one chained min-plus flow per candidate bend-point pair, merged per
    /// Eq. 10. With `z_only` the two degenerate L candidates are excluded
    /// (`M + N - 2` candidates, Section III-E); otherwise all `M + N`
    /// hybrid candidates are used (Section III-F).
    fn z_or_hybrid(
        &self,
        ps: Point2,
        pt: Point2,
        cbc: &[f64],
        z_only: bool,
    ) -> (Vec<f64>, Vec<EdgeChoice>, BlockProfile) {
        let l = cbc.len();
        let (x0, x1) = (ps.x.min(pt.x), ps.x.max(pt.x));
        let (y0, y1) = (ps.y.min(pt.y), ps.y.max(pt.y));

        // Candidate bend pairs: HVH over every column, VHV over every row.
        // `z_only` drops the pairs whose target bend coincides with Pt.
        let mut pairs: Vec<(Point2, Point2)> = Vec::new();
        for mx in x0..=x1 {
            if z_only && mx == pt.x {
                continue;
            }
            pairs.push((Point2::new(mx, ps.y), Point2::new(mx, pt.y)));
        }
        for my in y0..=y1 {
            if z_only && my == pt.y {
                continue;
            }
            pairs.push((Point2::new(ps.x, my), Point2::new(pt.x, my)));
        }
        debug_assert!(!pairs.is_empty());

        let mut candidate_values: Vec<Vec<f64>> = Vec::with_capacity(pairs.len());
        let mut candidate_src: Vec<Vec<usize>> = Vec::with_capacity(pairs.len());
        let mut candidate_mid: Vec<Vec<usize>> = Vec::with_capacity(pairs.len());
        for &(bs, bt) in &pairs {
            // w1[ls] = cbc + cw(Ps, Bs, ls)                   (Eq. 11)
            let w1: Vec<f64> = cbc
                .iter()
                .enumerate()
                .map(|(ls, &c)| c + self.graph.wire_run_cost(ls as u8, ps, bs))
                .collect();
            // w2[ls][lb] = cv(Bs, ls, lb) + cw(Bs, Bt, lb)    (Eq. 12)
            let mut w2 = Matrix::filled(l, l, f64::INFINITY);
            // w3[lb][lt] = cv(Bt, lb, lt) + cw(Bt, T, lt)     (Eq. 13)
            let mut w3 = Matrix::filled(l, l, f64::INFINITY);
            for a in 0..l {
                for b in 1..l {
                    w2[(a, b)] = self.graph.via_stack_cost(bs, a as u8, b as u8)
                        + self.graph.wire_run_cost(b as u8, bs, bt);
                    w3[(a, b)] = self.graph.via_stack_cost(bt, a as u8, b as u8)
                        + self.graph.wire_run_cost(b as u8, bt, pt);
                }
            }
            // c*(i)(lt) = min_{ls, lb} (w1 + w2 + w3)          (Eq. 14)
            let r = chain_min_plus(&w1, &w2, &w3);
            candidate_values.push(r.values);
            candidate_src.push(r.arg_src);
            candidate_mid.push(r.arg_mid);
        }

        // Merge step over all candidates (Eq. 10).
        let merged = merge_min(&candidate_values);
        let choice: Vec<EdgeChoice> = (0..l)
            .map(|lt| {
                let cand = merged.argmin[lt];
                EdgeChoice {
                    candidate: cand as u32,
                    ls: candidate_src[cand][lt] as u8,
                    lb: candidate_mid[cand][lt] as u8,
                }
            })
            .collect();
        let depth = 3
            + 2 * (l.next_power_of_two().trailing_zeros() as usize)
            + (pairs.len().next_power_of_two().trailing_zeros() as usize);
        (
            merged.values,
            choice,
            BlockProfile::new(pairs.len() * l * l, depth),
        )
    }

    /// Emits the wire/via geometry of one routed edge choice.
    fn emit_edge(&self, route: &mut Route, ps: Point2, pt: Point2, lt: u8, choice: EdgeChoice) {
        if choice.candidate == CAND_PURE_VIA {
            route.push_via(Via::new(ps, choice.ls, lt));
            return;
        }
        let use_hybrid_geometry = {
            // Pure-via and L-shape candidates are 0/1; hybrid candidates
            // carry a bridge layer. Distinguish by the mode that produced
            // them: L-shape edges never set `lb`.
            match self.mode {
                PatternMode::LShape => false,
                PatternMode::ZShape | PatternMode::HybridAll => true,
                PatternMode::Hybrid(sel) => {
                    sel.classify(ps.manhattan_distance(pt)) == NetClass::Medium
                }
            }
        };
        if !use_hybrid_geometry {
            let bend = if choice.candidate == 0 {
                Point2::new(pt.x, ps.y)
            } else {
                Point2::new(ps.x, pt.y)
            };
            if ps != bend {
                route.push_segment(Segment::new(choice.ls, ps, bend));
            }
            route.push_via(Via::new(bend, choice.ls, lt));
            if bend != pt {
                route.push_segment(Segment::new(lt, bend, pt));
            }
        } else {
            let (bs, bt) = self.hybrid_pair(ps, pt, choice.candidate as usize);
            if ps != bs {
                route.push_segment(Segment::new(choice.ls, ps, bs));
            }
            route.push_via(Via::new(bs, choice.ls, choice.lb));
            if bs != bt {
                route.push_segment(Segment::new(choice.lb, bs, bt));
            }
            route.push_via(Via::new(bt, choice.lb, lt));
            if bt != pt {
                route.push_segment(Segment::new(lt, bt, pt));
            }
        }
    }

    /// Reconstructs the candidate bend pair for a hybrid/Z candidate index
    /// (must mirror the enumeration order of [`Self::z_or_hybrid`]).
    fn hybrid_pair(&self, ps: Point2, pt: Point2, index: usize) -> (Point2, Point2) {
        let z_only = matches!(self.mode, PatternMode::ZShape);
        let (x0, x1) = (ps.x.min(pt.x), ps.x.max(pt.x));
        let (y0, y1) = (ps.y.min(pt.y), ps.y.max(pt.y));
        let mut i = 0;
        for mx in x0..=x1 {
            if z_only && mx == pt.x {
                continue;
            }
            if i == index {
                return (Point2::new(mx, ps.y), Point2::new(mx, pt.y));
            }
            i += 1;
        }
        for my in y0..=y1 {
            if z_only && my == pt.y {
                continue;
            }
            if i == index {
                return (Point2::new(ps.x, my), Point2::new(pt.x, my));
            }
            i += 1;
        }
        unreachable!("candidate index {index} out of range");
    }
}

/// Emits the via stack of a node's interval choice.
fn emit_stack(route: &mut Route, pos: Point2, choice: &StackChoice) {
    if choice.hi > choice.lo {
        route.push_via(Via::new(pos, choice.lo, choice.hi));
    }
}

/// Brute-force reference for tests: enumerate every L-shape combination of
/// one two-pin net with both endpoints pins, no children.
#[cfg(test)]
fn brute_force_two_pin_l(graph: &GridGraph, ps: Point2, pt: Point2) -> f64 {
    let l = graph.num_layers();
    let mut best = f64::INFINITY;
    for bend in [Point2::new(pt.x, ps.y), Point2::new(ps.x, pt.y)] {
        for ls in 1..l {
            for lt in 1..l {
                // Pin access: stack 0 -> ls at Ps, 0 -> lt at Pt.
                let c = graph.via_stack_cost(ps, 0, ls)
                    + graph.wire_run_cost(ls, ps, bend)
                    + graph.via_stack_cost(bend, ls, lt)
                    + graph.wire_run_cost(lt, bend, pt)
                    + graph.via_stack_cost(pt, 0, lt);
                if c < best {
                    best = c;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::{Net, NetId, Pin};
    use fastgr_grid::CostParams;
    use fastgr_steiner::SteinerBuilder;
    use proptest::prelude::*;

    fn graph(w: u16, h: u16, layers: u8) -> GridGraph {
        let mut g = GridGraph::new(w, h, layers, CostParams::default()).expect("valid");
        g.fill_capacity(6.0);
        g
    }

    fn net_of(points: &[(u16, u16)]) -> Net {
        Net::new(
            NetId(0),
            "n",
            points
                .iter()
                .map(|&(x, y)| Pin::new(Point2::new(x, y), 0))
                .collect(),
        )
    }

    fn route_with(g: &GridGraph, mode: PatternMode, points: &[(u16, u16)]) -> NetDpResult {
        let tree = SteinerBuilder::new().build(&net_of(points));
        PatternDp::new(g, mode).route_net(&tree).expect("routable")
    }

    #[test]
    fn two_pin_l_matches_brute_force() {
        let g = graph(16, 16, 5);
        let (ps, pt) = (Point2::new(2, 3), Point2::new(11, 9));
        let r = route_with(&g, PatternMode::LShape, &[(2, 3), (11, 9)]);
        let expect = brute_force_two_pin_l(&g, ps, pt);
        assert!(
            (r.cost - expect).abs() < 1e-9,
            "dp {} vs brute {}",
            r.cost,
            expect
        );
    }

    #[test]
    fn emitted_route_cost_equals_dp_cost() {
        let g = graph(20, 20, 6);
        for mode in [
            PatternMode::LShape,
            PatternMode::HybridAll,
            PatternMode::ZShape,
            PatternMode::Hybrid(SelectionThresholds::new(2, 100)),
        ] {
            let r = route_with(&g, mode, &[(1, 1), (14, 3), (7, 16), (3, 9)]);
            // The DP prices tree legs independently; normalised geometry
            // costs at most that (equality when no legs overlap).
            let recost = g.route_cost(&r.route);
            assert!(
                recost <= r.cost + 1e-6,
                "{mode:?}: geometry {} costs more than the dp bound {}",
                recost,
                r.cost
            );
            assert!(r.route.is_connected(), "{mode:?}: disconnected route");
        }
    }

    #[test]
    fn straight_two_pin_net_routes_straight() {
        let g = graph(16, 16, 5);
        let r = route_with(&g, PatternMode::LShape, &[(2, 5), (12, 5)]);
        assert_eq!(r.route.wirelength(), 10);
        // One horizontal segment, pin stacks on both ends.
        assert_eq!(r.route.segments().len(), 1);
        assert!(r.route.is_connected());
    }

    #[test]
    fn hybrid_never_costs_more_than_l_shape() {
        let mut g = graph(24, 24, 5);
        // Congest the two L corridors of a specific net on *every*
        // horizontal layer (M1, M3) so only a Z through a middle row wins.
        let mut blocker = Route::new();
        for layer in [1u8, 3] {
            blocker.push_segment(Segment::new(layer, Point2::new(2, 2), Point2::new(20, 2)));
            blocker.push_segment(Segment::new(layer, Point2::new(2, 18), Point2::new(20, 18)));
        }
        for _ in 0..6 {
            g.commit(&blocker).expect("valid");
        }
        let l = route_with(&g, PatternMode::LShape, &[(2, 2), (20, 18)]);
        let h = route_with(&g, PatternMode::HybridAll, &[(2, 2), (20, 18)]);
        assert!(
            h.cost <= l.cost + 1e-9,
            "hybrid {} must not lose to L {}",
            h.cost,
            l.cost
        );
        assert!(
            h.cost < l.cost - 1e-9,
            "expected a strictly better Z path here"
        );
    }

    #[test]
    fn selection_routes_small_nets_with_l_kernel() {
        let g = graph(24, 24, 5);
        let sel = SelectionThresholds::new(10, 50);
        // HPWL 4 <= t1: small -> L geometry (single bend).
        let r = route_with(&g, PatternMode::Hybrid(sel), &[(3, 3), (5, 5)]);
        assert!(r.route.segments().len() <= 2);
        assert!(r.route.is_connected());
    }

    #[test]
    fn single_gcell_net_is_free() {
        let g = graph(8, 8, 4);
        let r = route_with(&g, PatternMode::LShape, &[(3, 3)]);
        assert!(r.route.is_empty());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn multi_pin_net_connects_all_pins() {
        let g = graph(32, 32, 6);
        let pts = [(2, 2), (28, 4), (15, 29), (7, 18), (22, 22)];
        for mode in [PatternMode::LShape, PatternMode::HybridAll] {
            let r = route_with(&g, mode, &pts);
            assert!(r.route.is_connected());
            let touched = r.route.touched_points();
            for &(x, y) in &pts {
                assert!(
                    touched.contains(&Point2::new(x, y).on_layer(0)),
                    "{mode:?}: pin ({x}, {y}) not connected"
                );
            }
        }
    }

    #[test]
    fn congestion_steers_layer_choice() {
        let mut g = graph(16, 16, 6);
        let quiet = route_with(&g, PatternMode::LShape, &[(1, 8), (14, 8)]);
        // Saturate M1 along the straight row; M3/M5 are the alternatives.
        let mut blocker = Route::new();
        blocker.push_segment(Segment::new(1, Point2::new(0, 8), Point2::new(15, 8)));
        for _ in 0..8 {
            g.commit(&blocker).expect("valid");
        }
        let congested = route_with(&g, PatternMode::LShape, &[(1, 8), (14, 8)]);
        assert!(congested.cost > quiet.cost);
        // The route must avoid M1 now.
        assert!(congested.route.segments().iter().all(|s| s.layer != 1));
    }

    #[test]
    fn profile_grows_with_candidates() {
        let g = graph(32, 32, 6);
        let l = route_with(&g, PatternMode::LShape, &[(1, 1), (25, 20)]);
        let h = route_with(&g, PatternMode::HybridAll, &[(1, 1), (25, 20)]);
        assert!(h.profile.threads > l.profile.threads);
    }

    #[test]
    fn z_shape_excludes_l_candidates() {
        // For an aligned (straight) net the Z set still contains the
        // straight path (mx sweep includes interior columns), so routing
        // must succeed for all modes.
        let g = graph(16, 16, 5);
        for mode in [
            PatternMode::ZShape,
            PatternMode::HybridAll,
            PatternMode::LShape,
        ] {
            let r = route_with(&g, mode, &[(2, 5), (9, 5)]);
            assert!(r.route.is_connected(), "{mode:?} failed on straight net");
        }
    }

    proptest! {
        #[test]
        fn dp_cost_always_matches_emitted_geometry(
            pts in proptest::collection::hash_set((0u16..20, 0u16..20), 2..7),
            mode_pick in 0usize..3
        ) {
            let g = graph(20, 20, 5);
            let mode = [
                PatternMode::LShape,
                PatternMode::HybridAll,
                PatternMode::Hybrid(SelectionThresholds::new(5, 18)),
            ][mode_pick];
            let pts: Vec<(u16, u16)> = pts.into_iter().collect();
            let tree = SteinerBuilder::new().build(&net_of(&pts));
            let r = PatternDp::new(&g, mode).route_net(&tree).expect("routable");
            prop_assert!(r.route.is_connected());
            // DP cost upper-bounds the normalised geometry cost.
            prop_assert!(g.route_cost(&r.route) <= r.cost + 1e-6);
        }

        #[test]
        fn hybrid_is_never_worse_than_l(
            ax in 0u16..24, ay in 0u16..24, bx in 0u16..24, by in 0u16..24
        ) {
            let g = graph(24, 24, 6);
            let tree = SteinerBuilder::new().build(&net_of(&[(ax, ay), (bx, by)]));
            let l = PatternDp::new(&g, PatternMode::LShape).route_net(&tree).expect("ok");
            let h = PatternDp::new(&g, PatternMode::HybridAll).route_net(&tree).expect("ok");
            // The hybrid candidate set is a superset of the L set.
            prop_assert!(h.cost <= l.cost + 1e-9);
        }
    }
}
