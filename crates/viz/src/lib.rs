//! SVG visualisation of FastGR designs, routes and congestion maps.
//!
//! Global routers are visual beasts: a congestion heat map or a routed-net
//! overlay tells you in seconds what a table of overflow numbers cannot.
//! This crate renders, without any external dependency:
//!
//! * [`SvgRenderer::render_routes`] — the routed wires of a design, layers
//!   colour-coded, vias as dots, pins as squares, blockages shaded;
//! * [`SvgRenderer::render_congestion`] — the 2-D congestion heat map of a
//!   [`GridGraph`] (green → red, overflow in magenta).
//!
//! # Example
//!
//! ```
//! use fastgr_design::Generator;
//! use fastgr_grid::{Point2, Route, Segment};
//! use fastgr_viz::SvgRenderer;
//!
//! let design = Generator::tiny(1).generate();
//! let mut routes = vec![Route::new(); design.nets().len()];
//! let mut r = Route::new();
//! r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(5, 0)));
//! routes[0] = r;
//! let svg = SvgRenderer::new().render_routes(&design, &routes);
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("<line"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use fastgr_design::Design;
use fastgr_grid::{GridGraph, Route};

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VizConfig {
    /// Pixels per G-cell.
    pub cell_px: f64,
    /// Stroke width of wires in pixels.
    pub wire_px: f64,
    /// Render pins as squares.
    pub show_pins: bool,
    /// Render via stacks as dots.
    pub show_vias: bool,
}

impl Default for VizConfig {
    fn default() -> Self {
        Self {
            cell_px: 10.0,
            wire_px: 2.0,
            show_pins: true,
            show_vias: true,
        }
    }
}

/// Colour of a metal layer (stable palette, cycled above 10 layers).
fn layer_color(layer: u8) -> &'static str {
    const PALETTE: [&str; 10] = [
        "#888888", // M0 pin layer
        "#1f77b4", // M1
        "#d62728", // M2
        "#2ca02c", // M3
        "#9467bd", // M4
        "#ff7f0e", // M5
        "#17becf", // M6
        "#e377c2", // M7
        "#bcbd22", // M8
        "#7f7f7f", // M9
    ];
    PALETTE[(layer as usize) % PALETTE.len()]
}

/// Linear green→red heat colour with magenta overflow.
fn heat_color(utilization: f64) -> String {
    if utilization > 1.0 {
        return "#ff00ff".to_owned();
    }
    let u = utilization.clamp(0.0, 1.0);
    let r = (255.0 * u) as u8;
    let g = (200.0 * (1.0 - u)) as u8;
    format!("#{r:02x}{g:02x}40")
}

/// The SVG renderer. See the crate docs for an example.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvgRenderer {
    config: VizConfig,
}

impl SvgRenderer {
    /// Creates a renderer with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a renderer with explicit options.
    pub fn with_config(config: VizConfig) -> Self {
        Self { config }
    }

    /// The rendering options.
    pub fn config(&self) -> &VizConfig {
        &self.config
    }

    fn header(&self, width: u16, height: u16) -> String {
        let w = width as f64 * self.config.cell_px;
        let h = height as f64 * self.config.cell_px;
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"#ffffff\"/>\n"
        )
    }

    /// Pixel centre of a G-cell (y flipped so row 0 is at the bottom, as in
    /// chip coordinates).
    fn centre(&self, x: u16, y: u16, height: u16) -> (f64, f64) {
        (
            (x as f64 + 0.5) * self.config.cell_px,
            (height as f64 - 1.0 - y as f64 + 0.5) * self.config.cell_px,
        )
    }

    /// Renders the routed geometry of a design as an SVG document.
    ///
    /// # Panics
    ///
    /// Panics if `routes.len()` differs from the design's net count.
    pub fn render_routes(&self, design: &Design, routes: &[Route]) -> String {
        assert_eq!(routes.len(), design.nets().len(), "one route per net");
        let (w, h) = (design.width(), design.height());
        let mut svg = self.header(w, h);

        // Blockages as shaded rectangles.
        for b in design.blockages() {
            let (x0, y0) = self.centre(b.region.lo.x, b.region.hi.y, h);
            let bw = b.region.width() as f64 * self.config.cell_px;
            let bh = b.region.height() as f64 * self.config.cell_px;
            let _ = writeln!(
                svg,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{bw:.1}\" height=\"{bh:.1}\" \
                 fill=\"#000000\" fill-opacity=\"0.15\"/>",
                x0 - 0.5 * self.config.cell_px,
                y0 - 0.5 * self.config.cell_px,
            );
        }

        // Wires, lowest layers first so upper layers draw on top.
        let mut segments: Vec<(u8, f64, f64, f64, f64)> = Vec::new();
        for route in routes {
            for s in route.segments() {
                let (x1, y1) = self.centre(s.from.x, s.from.y, h);
                let (x2, y2) = self.centre(s.to.x, s.to.y, h);
                segments.push((s.layer, x1, y1, x2, y2));
            }
        }
        segments.sort_by_key(|s| s.0);
        for (layer, x1, y1, x2, y2) in segments {
            let _ = writeln!(
                svg,
                "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
                 stroke=\"{}\" stroke-width=\"{:.1}\" stroke-opacity=\"0.8\"/>",
                layer_color(layer),
                self.config.wire_px,
            );
        }

        if self.config.show_vias {
            for route in routes {
                for v in route.vias() {
                    let (cx, cy) = self.centre(v.at.x, v.at.y, h);
                    let _ = writeln!(
                        svg,
                        "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"{:.1}\" fill=\"#333333\"/>",
                        self.config.wire_px * 0.9,
                    );
                }
            }
        }

        if self.config.show_pins {
            let s = self.config.wire_px * 1.6;
            for net in design.nets() {
                for pin in net.pins() {
                    let (cx, cy) = self.centre(pin.position.x, pin.position.y, h);
                    let _ = writeln!(
                        svg,
                        "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{s:.1}\" height=\"{s:.1}\" \
                         fill=\"#000000\"/>",
                        cx - s / 2.0,
                        cy - s / 2.0,
                    );
                }
            }
        }

        svg.push_str("</svg>\n");
        svg
    }

    /// Renders the 2-D congestion heat map of a grid as an SVG document.
    pub fn render_congestion(&self, graph: &GridGraph) -> String {
        let (w, h) = (graph.width(), graph.height());
        let heat = graph.congestion_heatmap();
        let mut svg = self.header(w, h);
        let c = self.config.cell_px;
        for y in 0..h {
            for x in 0..w {
                let u = heat[y as usize * w as usize + x as usize];
                if u <= 0.0 {
                    continue;
                }
                let (cx, cy) = self.centre(x, y, h);
                let _ = writeln!(
                    svg,
                    "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{c:.1}\" height=\"{c:.1}\" \
                     fill=\"{}\"/>",
                    cx - c / 2.0,
                    cy - c / 2.0,
                    heat_color(u),
                );
            }
        }
        svg.push_str("</svg>\n");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::Generator;
    use fastgr_grid::{CostParams, Point2, Segment, Via};

    fn sample() -> (Design, Vec<Route>) {
        let design = Generator::tiny(3).generate();
        let mut routes = vec![Route::new(); design.nets().len()];
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(5, 0)));
        r.push_via(Via::new(Point2::new(5, 0), 1, 2));
        r.push_segment(Segment::new(2, Point2::new(5, 0), Point2::new(5, 4)));
        routes[0] = r;
        (design, routes)
    }

    #[test]
    fn routes_svg_is_well_formed() {
        let (design, routes) = sample();
        let svg = SvgRenderer::new().render_routes(&design, &routes);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Two wire segments, one via dot.
        assert_eq!(svg.matches("<line").count(), 2);
        assert!(svg.matches("<circle").count() >= 1);
        // Pins of 64 nets are drawn.
        assert!(svg.matches("<rect").count() > 64);
    }

    #[test]
    fn layer_colors_differ_per_layer() {
        let (design, mut routes) = sample();
        let mut r2 = Route::new();
        r2.push_segment(Segment::new(3, Point2::new(0, 2), Point2::new(4, 2)));
        routes[1] = r2;
        let svg = SvgRenderer::new().render_routes(&design, &routes);
        assert!(svg.contains(layer_color(1)));
        assert!(svg.contains(layer_color(3)));
        assert_ne!(layer_color(1), layer_color(3));
    }

    #[test]
    fn congestion_svg_shows_overflow_in_magenta() {
        let mut g = GridGraph::new(8, 8, 4, CostParams::default()).expect("valid");
        g.fill_capacity(1.0);
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(7, 0)));
        g.commit(&r).expect("valid");
        g.commit(&r).expect("valid"); // overflow
        let svg = SvgRenderer::new().render_congestion(&g);
        assert!(svg.contains("#ff00ff"));
    }

    #[test]
    fn empty_grid_renders_background_only() {
        let g = GridGraph::new(8, 8, 4, CostParams::default()).expect("valid");
        let svg = SvgRenderer::new().render_congestion(&g);
        // Just the background rect and the frame.
        assert_eq!(svg.matches("<rect").count(), 1);
    }

    #[test]
    fn heat_color_is_monotone_red() {
        let parse_r = |s: &str| u8::from_str_radix(&s[1..3], 16).unwrap();
        let low = parse_r(&heat_color(0.1));
        let high = parse_r(&heat_color(0.9));
        assert!(low < high);
        assert_eq!(heat_color(1.5), "#ff00ff");
    }

    #[test]
    fn disabling_overlays_removes_elements() {
        let (design, routes) = sample();
        let svg = SvgRenderer::with_config(VizConfig {
            show_pins: false,
            show_vias: false,
            ..VizConfig::default()
        })
        .render_routes(&design, &routes);
        assert_eq!(svg.matches("<circle").count(), 0);
    }
}
