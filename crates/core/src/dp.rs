//! The GPU-friendly pattern-routing dynamic program (paper Section III-D/E/F).
//!
//! One multi-pin net maps to one device block. Its two-pin nets (tree edges)
//! are processed in the bottom-up DFS order; for every edge the DP computes
//! `c*(Ps, Pt, lt)` — the minimum cost of routing the edge plus its whole
//! child subtree, arriving at the parent position on layer `lt` — via the
//! min-plus computation-graph flows of Eqs. 5–7 (L-shape) and 11–14
//! (Z/hybrid shape), merged per Eq. 10. The bottom-children cost of Eq. 2 is
//! solved exactly by via-stack interval enumeration (`O(L^2)` intervals,
//! see `DESIGN.md` §6).
//!
//! Full argmin backtracking reconstructs the winning geometry, including
//! the via stacks joining children (and the pin-layer access stacks, which
//! this reproduction folds into the same interval formulation: a pin node
//! forces its via stack to reach layer 0).
//!
//! # Memory discipline
//!
//! Pattern routing calls this DP once per net per batch, so its working
//! memory is hoisted into a reusable [`DpScratch`]:
//! [`PatternDp::route_net_into`] performs **zero heap allocation in steady
//! state** — every table, flow buffer, and traversal stack lives in the
//! scratch (or the recycled output [`Route`]) and only grows to the
//! high-water mark of the nets routed through it. The owned-result
//! [`PatternDp::route_net`] wrapper keeps one scratch per thread, so the
//! only steady-state allocations left on that path are the geometry
//! buffers of the `Route` it returns by value.

use std::cell::RefCell;

use fastgr_gpu::flow::{merge_min_rows, vec_mat_min_plus_into, Matrix};
use fastgr_gpu::BlockProfile;
use fastgr_grid::{CostProber, GridGraph, Point2, Route, Segment, Via};
use fastgr_steiner::{RouteTree, TreeEdge};

use crate::selection::{NetClass, SelectionThresholds};

/// Which candidate pattern set each two-pin net is routed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternMode {
    /// 3-D L-shape patterns only (`L x L` candidates) — FastGR_L.
    LShape,
    /// Pure Z-shape patterns (`(M + N - 2) x L^3` candidates) — the
    /// Section III-E kernel, kept for ablation.
    ZShape,
    /// Hybrid shape (Z + degenerate L, `M + N` bend pairs) with the
    /// selection technique: only *medium* nets (per the thresholds) use the
    /// hybrid kernel, the rest use L-shape — FastGR_H.
    Hybrid(SelectionThresholds),
    /// Hybrid shape applied to every two-pin net regardless of size
    /// (the "without selection" ablation of Table VI).
    HybridAll,
}

/// Result of routing one multi-pin net with the pattern DP.
#[derive(Debug, Clone)]
pub struct NetDpResult {
    /// The winning geometry (connected; includes pin-access via stacks).
    pub route: Route,
    /// The DP cost of the winning solution under the current congestion.
    pub cost: f64,
    /// Simulated device flow profile of this net's block.
    pub profile: BlockProfile,
}

/// Cost and device profile of one routed net — what
/// [`PatternDp::route_net_into`] returns alongside the geometry it wrote
/// into the caller's [`Route`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpSummary {
    /// The DP cost of the winning solution under the current congestion.
    pub cost: f64,
    /// Simulated device flow profile of this net's block.
    pub profile: BlockProfile,
}

/// Per-(edge, target-layer) backtracking record.
#[derive(Debug, Clone, Copy)]
struct EdgeChoice {
    /// Candidate index (pattern-dependent meaning) or `CAND_PURE_VIA`.
    candidate: u32,
    /// Winning source layer `ls`.
    ls: u8,
    /// Winning bridge layer `lb` (Z/hybrid only; unused for L-shape).
    lb: u8,
}

const EDGE_CHOICE_EMPTY: EdgeChoice = EdgeChoice {
    candidate: 0,
    ls: 0,
    lb: 0,
};

const CAND_PURE_VIA: u32 = u32::MAX;

/// Reusable working memory for the pattern DP.
///
/// All tables are flat, layer-strided vectors sized per net (number of
/// tree nodes × layer count); re-sizing only ever reuses capacity once the
/// buffers have seen the largest net, so repeated
/// [`PatternDp::route_net_into`] calls through one scratch allocate
/// nothing. One scratch serves one thread at a time; the worker-pool
/// engines keep one per thread.
#[derive(Debug)]
pub struct DpScratch {
    /// Bottom-up edge order of the current tree.
    edges: Vec<TreeEdge>,
    /// DFS working stack for [`RouteTree::ordered_edges_into`].
    dfs_stack: Vec<u32>,
    /// `edge_cost[v * L + lt]`: DP cost of edge `v -> parent(v)` arriving
    /// on layer `lt`.
    edge_cost: Vec<f64>,
    /// Backtracking record per `(edge, lt)` lane.
    edge_choice: Vec<EdgeChoice>,
    /// Winning via-stack interval per `(node, ls)` lane.
    stack_lo: Vec<u8>,
    stack_hi: Vec<u8>,
    /// Start of each node's region inside `layer_arena`.
    arena_offset: Vec<u32>,
    /// Chosen child arrival layers: node `v` with `d` children owns the
    /// region `[arena_offset[v] .. arena_offset[v] + d * L)`, laid out as
    /// `ls * d + child_index`.
    layer_arena: Vec<u8>,
    /// Bottom-children cost `cbc(Ps, ls)` of the edge in flight.
    cbc: Vec<f64>,
    /// Child arrival layers of the interval currently being tried.
    trial_layers: Vec<u8>,
    /// Output lanes of the edge in flight (copied into `edge_cost` /
    /// `edge_choice` once complete — the copy keeps borrows disjoint).
    out_cost: Vec<f64>,
    out_choice: Vec<EdgeChoice>,
    /// Flow operands (Eqs. 5–7 / 11–14).
    w1: Vec<f64>,
    w2: Matrix,
    w3: Matrix,
    /// Chain intermediates: best source per bridge layer.
    mid_values: Vec<f64>,
    mid_argmin: Vec<usize>,
    /// Per-candidate flow output lanes.
    lane_values: Vec<f64>,
    lane_argmin: Vec<usize>,
    /// All candidates' lanes, flattened `candidate * L + lt`.
    cand_values: Vec<f64>,
    cand_src: Vec<u32>,
    cand_mid: Vec<u32>,
    /// Winning candidate per lane after the Eq. 10 merge.
    merged_argmin: Vec<usize>,
    /// Candidate bend-point pairs of the Z/hybrid flow.
    pairs: Vec<(Point2, Point2)>,
    /// Hoisted per-bridge-layer wire terms of the Z/hybrid w2/w3 fills
    /// (`cw(Bs, Bt, b)` and `cw(Bt, T, b)` depend only on `b`, not on the
    /// source layer, so they are probed once per layer, not `L` times).
    run2: Vec<f64>,
    run3: Vec<f64>,
    /// Backtracking stack of `(edge, arrival layer)`.
    bt_stack: Vec<(TreeEdge, u8)>,
}

impl DpScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            edges: Vec::new(),
            dfs_stack: Vec::new(),
            edge_cost: Vec::new(),
            edge_choice: Vec::new(),
            stack_lo: Vec::new(),
            stack_hi: Vec::new(),
            arena_offset: Vec::new(),
            layer_arena: Vec::new(),
            cbc: Vec::new(),
            trial_layers: Vec::new(),
            out_cost: Vec::new(),
            out_choice: Vec::new(),
            w1: Vec::new(),
            w2: Matrix::filled(1, 1, 0.0),
            w3: Matrix::filled(1, 1, 0.0),
            mid_values: Vec::new(),
            mid_argmin: Vec::new(),
            lane_values: Vec::new(),
            lane_argmin: Vec::new(),
            cand_values: Vec::new(),
            cand_src: Vec::new(),
            cand_mid: Vec::new(),
            merged_argmin: Vec::new(),
            pairs: Vec::new(),
            run2: Vec::new(),
            run3: Vec::new(),
            bt_stack: Vec::new(),
        }
    }
}

impl Default for DpScratch {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread scratch backing [`PatternDp::route_net`]; worker-pool
    /// engines route many nets per thread, so the tables stay warm.
    static ROUTE_NET_SCRATCH: RefCell<DpScratch> = RefCell::new(DpScratch::new());
}

/// Where the DP reads its wire-run and via-stack costs from.
///
/// All three variants work in the same Q44.20 quantised cost domain, so a
/// probed DP and a direct DP produce bit-identical costs and routes — the
/// prober only changes *how fast* a cost is obtained (O(1) prefix
/// difference vs O(run-length) walk).
#[derive(Debug)]
enum CostSource<'g> {
    /// A prober built (and owned) at construction time. Boxed: the
    /// prober's inline scratch dwarfs the other variants.
    Owned(Box<CostProber>),
    /// A caller-managed prober, refreshed between batches by the pattern
    /// stage.
    Borrowed(&'g CostProber),
    /// No cache: every probe walks the grid's quantised edge costs.
    Direct,
}

/// The pattern-routing DP engine for one grid state.
///
/// Costs are read through a prefix-sum [`CostProber`] snapshot by default
/// ([`PatternDp::new`] builds one; [`PatternDp::with_prober`] borrows a
/// caller-managed one so the pattern stage can refresh it incrementally
/// between batches); [`PatternDp::direct`] skips the cache and walks the
/// grid per probe — same quantised arithmetic, bit-identical results,
/// O(run-length) slower per probe.
///
/// # Example
///
/// ```
/// use fastgr_core::{PatternDp, PatternMode};
/// use fastgr_design::{Net, NetId, Pin};
/// use fastgr_grid::{CostParams, GridGraph, Point2};
/// use fastgr_steiner::SteinerBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut graph = GridGraph::new(16, 16, 5, CostParams::default())?;
/// graph.fill_capacity(4.0);
/// let net = Net::new(NetId(0), "n", vec![
///     Pin::new(Point2::new(1, 1), 0),
///     Pin::new(Point2::new(10, 7), 0),
/// ]);
/// let tree = SteinerBuilder::new().build(&net);
/// let dp = PatternDp::new(&graph, PatternMode::LShape);
/// let result = dp.route_net(&tree).expect("routable");
/// assert!(result.route.is_connected());
/// assert_eq!(result.route.wirelength(), 15); // HPWL-tight L path
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PatternDp<'g> {
    graph: &'g GridGraph,
    mode: PatternMode,
    costs: CostSource<'g>,
}

impl<'g> PatternDp<'g> {
    /// Creates a DP engine over the given grid state, building an owned
    /// prefix-sum cost cache of the *current* congestion. The snapshot is
    /// not refreshed: construct after any demand/history mutation whose
    /// effect the DP should see (or use [`PatternDp::with_prober`] with an
    /// incrementally refreshed cache).
    pub fn new(graph: &'g GridGraph, mode: PatternMode) -> Self {
        Self {
            graph,
            mode,
            costs: CostSource::Owned(Box::new(CostProber::build(graph))),
        }
    }

    /// Creates a DP engine reading costs from a caller-managed prober
    /// (built/refreshed against the same `graph`).
    pub fn with_prober(graph: &'g GridGraph, mode: PatternMode, prober: &'g CostProber) -> Self {
        Self {
            graph,
            mode,
            costs: CostSource::Borrowed(prober),
        }
    }

    /// Creates a DP engine without a cost cache: probes walk the grid's
    /// quantised edge costs directly. Bit-identical to the probed engines,
    /// O(run-length) per probe — kept for the prober-off bench dimension
    /// and the equivalence tests.
    pub fn direct(graph: &'g GridGraph, mode: PatternMode) -> Self {
        Self {
            graph,
            mode,
            costs: CostSource::Direct,
        }
    }

    /// The pattern mode in use.
    pub fn mode(&self) -> PatternMode {
        self.mode
    }

    /// Cost `cw(a, b, l)` of a straight run, from the active cost source.
    #[inline]
    fn run_cost(&self, l: u8, a: Point2, b: Point2) -> f64 {
        match &self.costs {
            CostSource::Owned(p) => p.wire_run_cost(l, a, b),
            CostSource::Borrowed(p) => p.wire_run_cost(l, a, b),
            CostSource::Direct => self.graph.wire_run_cost_fixed(l, a, b),
        }
    }

    /// Cost `cv(p, l1, l2)` of a via stack, from the active cost source.
    #[inline]
    fn stack_cost(&self, p: Point2, l1: u8, l2: u8) -> f64 {
        match &self.costs {
            CostSource::Owned(pr) => pr.via_stack_cost(p, l1, l2),
            CostSource::Borrowed(pr) => pr.via_stack_cost(p, l1, l2),
            CostSource::Direct => self.graph.via_stack_cost_fixed(p, l1, l2),
        }
    }

    /// Extra modeled gather depth per flow entry: the direct engine walks
    /// every gcell of a run to cost it, so its blocks carry the run span as
    /// serial depth; probed engines gather in O(1).
    #[inline]
    fn gather_depth(&self, span: usize) -> usize {
        match &self.costs {
            CostSource::Direct => span,
            _ => 0,
        }
    }

    /// Routes one net given its Steiner tree. Returns `None` when no
    /// finite-cost pattern exists (fewer than one routable layer per
    /// direction — cannot happen on the standard suite's grids).
    ///
    /// Thin wrapper over [`PatternDp::route_net_into`] with a per-thread
    /// [`DpScratch`]; the returned [`Route`] is the only per-call heap
    /// use.
    pub fn route_net(&self, tree: &RouteTree) -> Option<NetDpResult> {
        ROUTE_NET_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let mut route = Route::new();
            self.route_net_into(tree, &mut scratch, &mut route)
                .map(|summary| NetDpResult {
                    route,
                    cost: summary.cost,
                    profile: summary.profile,
                })
        })
    }

    /// Routes one net, writing the winning geometry into `out` (cleared
    /// first) and drawing all working memory from `scratch`. In steady
    /// state — once the scratch and `out` have grown to the largest net —
    /// this performs **no heap allocation**.
    ///
    /// Returns `None` when no finite-cost pattern exists; `out` content is
    /// unspecified in that case.
    pub fn route_net_into(
        &self,
        tree: &RouteTree,
        scratch: &mut DpScratch,
        out: &mut Route,
    ) -> Option<DpSummary> {
        out.clear();
        let l = self.graph.num_layers() as usize;
        tree.ordered_edges_into(&mut scratch.dfs_stack, &mut scratch.edges);
        if scratch.edges.is_empty() {
            // Single-node net: no geometry needed.
            return Some(DpSummary {
                cost: 0.0,
                profile: BlockProfile::new(1, 1),
            });
        }

        let n_nodes = tree.node_count();
        scratch.edge_cost.clear();
        scratch.edge_cost.resize(n_nodes * l, f64::INFINITY);
        scratch.edge_choice.clear();
        scratch.edge_choice.resize(n_nodes * l, EDGE_CHOICE_EMPTY);
        scratch.stack_lo.clear();
        scratch.stack_lo.resize(n_nodes * l, 0);
        scratch.stack_hi.clear();
        scratch.stack_hi.resize(n_nodes * l, 0);
        scratch.arena_offset.clear();
        let mut arena_len = 0u32;
        for node in tree.nodes() {
            scratch.arena_offset.push(arena_len);
            arena_len += (node.children.len() * l) as u32;
        }
        scratch.layer_arena.clear();
        scratch.layer_arena.resize(arena_len as usize, 0);

        let mut profile = BlockProfile::new(1, 0);
        for i in 0..scratch.edges.len() {
            let edge = scratch.edges[i];
            let v = edge.child as usize;
            let ps = tree.node(edge.child).position;
            let pt = tree.node(edge.parent).position;
            let deg = tree.node(edge.child).children.len();

            // Bottom-children cost of the child node (Eq. 2 + pin access).
            self.bottom_cost_into(tree, v, scratch);
            profile = profile.then(BlockProfile::new(
                l * l,
                1 + (deg + 1).next_power_of_two().trailing_zeros() as usize,
            ));

            // Route the edge with the mode-selected pattern set.
            let hpwl = ps.manhattan_distance(pt);
            let use_hybrid = match self.mode {
                PatternMode::LShape => false,
                PatternMode::ZShape => true,
                PatternMode::HybridAll => true,
                PatternMode::Hybrid(sel) => sel.classify(hpwl) == NetClass::Medium,
            };
            let edge_profile = if ps == pt {
                self.pure_via_into(ps, scratch)
            } else if use_hybrid {
                self.z_or_hybrid_into(ps, pt, matches!(self.mode, PatternMode::ZShape), scratch)
            } else {
                self.l_shape_into(ps, pt, scratch)
            };
            profile = profile.then(edge_profile);
            scratch.edge_cost[v * l..(v + 1) * l].copy_from_slice(&scratch.out_cost);
            scratch.edge_choice[v * l..(v + 1) * l].copy_from_slice(&scratch.out_choice);
        }

        // Final reduction at the root (Eq. 4 generalised to multi-child
        // roots): pick the via-stack interval covering the root pin.
        let root = tree.root();
        let (root_total, root_lo, root_hi) = self.root_cost_into(tree, scratch)?;
        profile = profile.then(BlockProfile::new(l * l, 2));

        // Back-track the geometry.
        let root_pos = tree.node(root).position;
        if root_hi > root_lo {
            out.push_via(Via::new(root_pos, root_lo, root_hi));
        }
        scratch.bt_stack.clear();
        let root_arena = scratch.arena_offset[root as usize] as usize;
        for (i, &c) in tree.node(root).children.iter().enumerate() {
            scratch.bt_stack.push((
                TreeEdge {
                    child: c,
                    parent: root,
                },
                scratch.layer_arena[root_arena + i],
            ));
        }
        while let Some((edge, lt)) = scratch.bt_stack.pop() {
            let v = edge.child as usize;
            let choice = scratch.edge_choice[v * l + lt as usize];
            let ps = tree.node(edge.child).position;
            let pt = tree.node(edge.parent).position;
            self.emit_edge(out, ps, pt, lt, choice);
            let ls = choice.ls as usize;
            let (lo, hi) = (scratch.stack_lo[v * l + ls], scratch.stack_hi[v * l + ls]);
            if hi > lo {
                out.push_via(Via::new(ps, lo, hi));
            }
            let children = &tree.node(edge.child).children;
            let base = scratch.arena_offset[v] as usize + ls * children.len();
            for (i, &c) in children.iter().enumerate() {
                scratch.bt_stack.push((
                    TreeEdge {
                        child: c,
                        parent: edge.child,
                    },
                    scratch.layer_arena[base + i],
                ));
            }
        }
        // Canonicalise: tree legs may overlap (two children sharing a
        // row); the physical net occupies each track once, so demand is
        // committed on the union. The DP cost keeps counting legs
        // independently (that is the objective the kernels optimise), so
        // `cost` is an upper bound on the geometry's cost.
        out.normalize();

        Some(DpSummary {
            cost: root_total,
            profile,
        })
    }

    /// Bottom-children cost `cbc(Ps, ls)` (Eq. 2) with pin access folded in:
    /// for every source layer `ls`, choose the via-stack interval
    /// `[lo, hi] ∋ ls` (with `lo = 0` forced at pins) minimising stack cost
    /// plus each child's best arrival layer inside the interval. Results
    /// land in `scratch.cbc` / `stack_lo` / `stack_hi` / `layer_arena`.
    fn bottom_cost_into(&self, tree: &RouteTree, v: usize, scratch: &mut DpScratch) {
        let l = self.graph.num_layers() as usize;
        let node = tree.node(v as u32);
        let (pos, is_pin) = (node.position, node.is_pin);
        let children = &node.children;
        let deg = children.len();
        scratch.cbc.clear();
        scratch.cbc.resize(l, f64::INFINITY);
        scratch.trial_layers.clear();
        scratch.trial_layers.resize(deg, 0);
        let arena = scratch.arena_offset[v] as usize;
        for ls in 1..l {
            let (lo_first, lo_last) = if is_pin { (0u8, 0u8) } else { (1u8, ls as u8) };
            for lo in lo_first..=lo_last {
                for hi in ls as u8..l as u8 {
                    let mut total = self.stack_cost(pos, lo, hi);
                    if !total.is_finite() {
                        continue;
                    }
                    for (ci, &c) in children.iter().enumerate() {
                        let costs = &scratch.edge_cost[c as usize * l..(c as usize + 1) * l];
                        let from = lo.max(1) as usize;
                        let (mut best_l, mut best_c) = (from, f64::INFINITY);
                        for (cl, &cost) in costs.iter().enumerate().take(hi as usize + 1).skip(from)
                        {
                            if cost < best_c {
                                best_c = cost;
                                best_l = cl;
                            }
                        }
                        total += best_c;
                        scratch.trial_layers[ci] = best_l as u8;
                    }
                    if total < scratch.cbc[ls] {
                        scratch.cbc[ls] = total;
                        scratch.stack_lo[v * l + ls] = lo;
                        scratch.stack_hi[v * l + ls] = hi;
                        scratch.layer_arena[arena + ls * deg..arena + (ls + 1) * deg]
                            .copy_from_slice(&scratch.trial_layers);
                    }
                }
            }
        }
    }

    /// Root reduction: like [`Self::bottom_cost_into`] but with no outgoing
    /// edge, minimising over the interval alone. The winning child arrival
    /// layers land in the root's `ls = 0` arena lane; returns
    /// `(total, lo, hi)` or `None` when infeasible.
    fn root_cost_into(&self, tree: &RouteTree, scratch: &mut DpScratch) -> Option<(f64, u8, u8)> {
        let l = self.graph.num_layers() as usize;
        let root = tree.root();
        let node = tree.node(root);
        let (pos, is_pin) = (node.position, node.is_pin);
        let children = &node.children;
        let deg = children.len();
        scratch.trial_layers.clear();
        scratch.trial_layers.resize(deg, 0);
        let arena = scratch.arena_offset[root as usize] as usize;
        let mut best = f64::INFINITY;
        let (mut best_lo, mut best_hi) = (0u8, 0u8);
        let (lo_first, lo_last) = if is_pin {
            (0u8, 0u8)
        } else {
            (1u8, l as u8 - 1)
        };
        for lo in lo_first..=lo_last {
            for hi in lo.max(1)..l as u8 {
                let mut total = self.stack_cost(pos, lo, hi);
                if !total.is_finite() {
                    continue;
                }
                for (ci, &c) in children.iter().enumerate() {
                    let costs = &scratch.edge_cost[c as usize * l..(c as usize + 1) * l];
                    let from = lo.max(1) as usize;
                    let (mut best_l, mut best_c) = (from, f64::INFINITY);
                    for (cl, &cost) in costs.iter().enumerate().take(hi as usize + 1).skip(from) {
                        if cost < best_c {
                            best_c = cost;
                            best_l = cl;
                        }
                    }
                    total += best_c;
                    scratch.trial_layers[ci] = best_l as u8;
                }
                if total < best {
                    best = total;
                    best_lo = lo;
                    best_hi = hi;
                    scratch.layer_arena[arena..arena + deg]
                        .copy_from_slice(&scratch.trial_layers);
                }
            }
        }
        best.is_finite().then_some((best, best_lo, best_hi))
    }

    /// Degenerate edge whose endpoints share a G-cell: a pure via stack.
    /// Writes `scratch.out_cost` / `out_choice`.
    fn pure_via_into(&self, pos: Point2, scratch: &mut DpScratch) -> BlockProfile {
        let l = scratch.cbc.len();
        scratch.out_cost.clear();
        scratch.out_cost.resize(l, f64::INFINITY);
        scratch.out_choice.clear();
        scratch.out_choice.resize(
            l,
            EdgeChoice {
                candidate: CAND_PURE_VIA,
                ls: 0,
                lb: 0,
            },
        );
        for lt in 1..l {
            for (ls, &bottom) in scratch.cbc.iter().enumerate().skip(1) {
                let c = bottom + self.stack_cost(pos, ls as u8, lt as u8);
                if c < scratch.out_cost[lt] {
                    scratch.out_cost[lt] = c;
                    scratch.out_choice[lt] = EdgeChoice {
                        candidate: CAND_PURE_VIA,
                        ls: ls as u8,
                        lb: 0,
                    };
                }
            }
        }
        BlockProfile::new(l * l, 2)
    }

    /// The GPU-friendly 3-D L-shape flow (Eqs. 5–7, Fig. 8): two bend
    /// candidates, each an `L x L` min-plus product, merged per target
    /// layer. Writes `scratch.out_cost` / `out_choice`.
    fn l_shape_into(&self, ps: Point2, pt: Point2, scratch: &mut DpScratch) -> BlockProfile {
        let l = scratch.cbc.len();
        let bends = [Point2::new(pt.x, ps.y), Point2::new(ps.x, pt.y)];
        scratch.cand_values.clear();
        scratch.cand_values.resize(2 * l, f64::INFINITY);
        scratch.cand_src.clear();
        scratch.cand_src.resize(2 * l, 0);
        for (ci, &bend) in bends.iter().enumerate() {
            // w1[ls] = cbc(Ps, ls) + cw(Ps, B, ls)            (Eq. 5)
            let (w1, cbc) = (&mut scratch.w1, &scratch.cbc);
            w1.clear();
            w1.extend(
                cbc.iter()
                    .enumerate()
                    .map(|(ls, &c)| c + self.run_cost(ls as u8, ps, bend)),
            );
            // w2[ls][lt] = cv(B, ls, lt) + cw(B, T, lt)       (Eq. 6)
            // The wire term depends only on lt: probe it once per target
            // layer, not once per (ls, lt) cell.
            scratch.w2.reset(l, l, f64::INFINITY);
            for lt in 1..l {
                let wire = self.run_cost(lt as u8, bend, pt);
                for ls in 0..l {
                    scratch.w2[(ls, lt)] = self.stack_cost(bend, ls as u8, lt as u8) + wire;
                }
            }
            // c*(lt) = min_ls (w1[ls] + w2[ls][lt])           (Eq. 7)
            vec_mat_min_plus_into(
                &scratch.w1,
                &scratch.w2,
                &mut scratch.lane_values,
                &mut scratch.lane_argmin,
            );
            scratch.cand_values[ci * l..(ci + 1) * l].copy_from_slice(&scratch.lane_values);
            for (t, &src) in scratch.lane_argmin.iter().enumerate() {
                scratch.cand_src[ci * l + t] = src as u32;
            }
        }
        merge_min_rows(
            &scratch.cand_values,
            l,
            &mut scratch.out_cost,
            &mut scratch.merged_argmin,
        );
        let (out_choice, merged_argmin, cand_src) = (
            &mut scratch.out_choice,
            &scratch.merged_argmin,
            &scratch.cand_src,
        );
        out_choice.clear();
        out_choice.extend((0..l).map(|lt| {
            let cand = merged_argmin[lt];
            EdgeChoice {
                candidate: cand as u32,
                ls: cand_src[cand * l + lt] as u8,
                lb: 0,
            }
        }));
        // Flow: build stage + reduce over ls + merge over 2 candidates;
        // the direct engine's build stage serially walks each run.
        let depth = 2
            + (l.next_power_of_two().trailing_zeros() as usize)
            + 1
            + self.gather_depth(ps.manhattan_distance(pt) as usize);
        BlockProfile::new(2 * l * l, depth)
    }

    /// The GPU-friendly 3-D Z-shape / hybrid flow (Eqs. 11–14, Figs. 9–10):
    /// one chained min-plus flow per candidate bend-point pair, merged per
    /// Eq. 10. With `z_only` the two degenerate L candidates are excluded
    /// (`M + N - 2` candidates, Section III-E); otherwise all `M + N`
    /// hybrid candidates are used (Section III-F). Writes
    /// `scratch.out_cost` / `out_choice`.
    fn z_or_hybrid_into(
        &self,
        ps: Point2,
        pt: Point2,
        z_only: bool,
        scratch: &mut DpScratch,
    ) -> BlockProfile {
        let l = scratch.cbc.len();
        let (x0, x1) = (ps.x.min(pt.x), ps.x.max(pt.x));
        let (y0, y1) = (ps.y.min(pt.y), ps.y.max(pt.y));

        // Candidate bend pairs: HVH over every column, VHV over every row.
        // `z_only` drops the pairs whose target bend coincides with Pt.
        scratch.pairs.clear();
        for mx in x0..=x1 {
            if z_only && mx == pt.x {
                continue;
            }
            scratch
                .pairs
                .push((Point2::new(mx, ps.y), Point2::new(mx, pt.y)));
        }
        for my in y0..=y1 {
            if z_only && my == pt.y {
                continue;
            }
            scratch
                .pairs
                .push((Point2::new(ps.x, my), Point2::new(pt.x, my)));
        }
        let n_pairs = scratch.pairs.len();
        debug_assert!(n_pairs > 0);

        scratch.cand_values.clear();
        scratch.cand_values.resize(n_pairs * l, f64::INFINITY);
        scratch.cand_src.clear();
        scratch.cand_src.resize(n_pairs * l, 0);
        scratch.cand_mid.clear();
        scratch.cand_mid.resize(n_pairs * l, 0);
        for ci in 0..n_pairs {
            let (bs, bt) = scratch.pairs[ci];
            // w1[ls] = cbc + cw(Ps, Bs, ls)                   (Eq. 11)
            let (w1, cbc) = (&mut scratch.w1, &scratch.cbc);
            w1.clear();
            w1.extend(
                cbc.iter()
                    .enumerate()
                    .map(|(ls, &c)| c + self.run_cost(ls as u8, ps, bs)),
            );
            // The wire terms of w2/w3 depend only on the bridge/target
            // layer `b`, not on `a`: probe them once per layer instead of
            // L times inside the L x L fills.
            scratch.run2.clear();
            scratch
                .run2
                .extend((0..l).map(|b| self.run_cost(b as u8, bs, bt)));
            scratch.run3.clear();
            scratch
                .run3
                .extend((0..l).map(|b| self.run_cost(b as u8, bt, pt)));
            // w2[ls][lb] = cv(Bs, ls, lb) + cw(Bs, Bt, lb)    (Eq. 12)
            scratch.w2.reset(l, l, f64::INFINITY);
            // w3[lb][lt] = cv(Bt, lb, lt) + cw(Bt, T, lt)     (Eq. 13)
            scratch.w3.reset(l, l, f64::INFINITY);
            for a in 0..l {
                for b in 1..l {
                    scratch.w2[(a, b)] =
                        self.stack_cost(bs, a as u8, b as u8) + scratch.run2[b];
                    scratch.w3[(a, b)] =
                        self.stack_cost(bt, a as u8, b as u8) + scratch.run3[b];
                }
            }
            // c*(i)(lt) = min_{ls, lb} (w1 + w2 + w3)          (Eq. 14):
            // stage 1 reduces sources per bridge, stage 2 bridges per
            // target — together the chain min-plus of `chain_min_plus`.
            vec_mat_min_plus_into(
                &scratch.w1,
                &scratch.w2,
                &mut scratch.mid_values,
                &mut scratch.mid_argmin,
            );
            vec_mat_min_plus_into(
                &scratch.mid_values,
                &scratch.w3,
                &mut scratch.lane_values,
                &mut scratch.lane_argmin,
            );
            scratch.cand_values[ci * l..(ci + 1) * l].copy_from_slice(&scratch.lane_values);
            for (t, &mid) in scratch.lane_argmin.iter().enumerate() {
                scratch.cand_mid[ci * l + t] = mid as u32;
                scratch.cand_src[ci * l + t] = scratch.mid_argmin[mid] as u32;
            }
        }

        // Merge step over all candidates (Eq. 10).
        merge_min_rows(
            &scratch.cand_values,
            l,
            &mut scratch.out_cost,
            &mut scratch.merged_argmin,
        );
        let (out_choice, merged_argmin, cand_src, cand_mid) = (
            &mut scratch.out_choice,
            &scratch.merged_argmin,
            &scratch.cand_src,
            &scratch.cand_mid,
        );
        out_choice.clear();
        out_choice.extend((0..l).map(|lt| {
            let cand = merged_argmin[lt];
            EdgeChoice {
                candidate: cand as u32,
                ls: cand_src[cand * l + lt] as u8,
                lb: cand_mid[cand * l + lt] as u8,
            }
        }));
        let depth = 3
            + 2 * (l.next_power_of_two().trailing_zeros() as usize)
            + (n_pairs.next_power_of_two().trailing_zeros() as usize)
            + self.gather_depth(ps.manhattan_distance(pt) as usize);
        BlockProfile::new(n_pairs * l * l, depth)
    }

    /// Emits the wire/via geometry of one routed edge choice.
    fn emit_edge(&self, route: &mut Route, ps: Point2, pt: Point2, lt: u8, choice: EdgeChoice) {
        if choice.candidate == CAND_PURE_VIA {
            route.push_via(Via::new(ps, choice.ls, lt));
            return;
        }
        let use_hybrid_geometry = {
            // Pure-via and L-shape candidates are 0/1; hybrid candidates
            // carry a bridge layer. Distinguish by the mode that produced
            // them: L-shape edges never set `lb`.
            match self.mode {
                PatternMode::LShape => false,
                PatternMode::ZShape | PatternMode::HybridAll => true,
                PatternMode::Hybrid(sel) => {
                    sel.classify(ps.manhattan_distance(pt)) == NetClass::Medium
                }
            }
        };
        if !use_hybrid_geometry {
            let bend = if choice.candidate == 0 {
                Point2::new(pt.x, ps.y)
            } else {
                Point2::new(ps.x, pt.y)
            };
            if ps != bend {
                route.push_segment(Segment::new(choice.ls, ps, bend));
            }
            route.push_via(Via::new(bend, choice.ls, lt));
            if bend != pt {
                route.push_segment(Segment::new(lt, bend, pt));
            }
        } else {
            let (bs, bt) = self.hybrid_pair(ps, pt, choice.candidate as usize);
            if ps != bs {
                route.push_segment(Segment::new(choice.ls, ps, bs));
            }
            route.push_via(Via::new(bs, choice.ls, choice.lb));
            if bs != bt {
                route.push_segment(Segment::new(choice.lb, bs, bt));
            }
            route.push_via(Via::new(bt, choice.lb, lt));
            if bt != pt {
                route.push_segment(Segment::new(lt, bt, pt));
            }
        }
    }

    /// Reconstructs the candidate bend pair for a hybrid/Z candidate index
    /// (must mirror the enumeration order of [`Self::z_or_hybrid_into`]).
    fn hybrid_pair(&self, ps: Point2, pt: Point2, index: usize) -> (Point2, Point2) {
        let z_only = matches!(self.mode, PatternMode::ZShape);
        let (x0, x1) = (ps.x.min(pt.x), ps.x.max(pt.x));
        let (y0, y1) = (ps.y.min(pt.y), ps.y.max(pt.y));
        let mut i = 0;
        for mx in x0..=x1 {
            if z_only && mx == pt.x {
                continue;
            }
            if i == index {
                return (Point2::new(mx, ps.y), Point2::new(mx, pt.y));
            }
            i += 1;
        }
        for my in y0..=y1 {
            if z_only && my == pt.y {
                continue;
            }
            if i == index {
                return (Point2::new(ps.x, my), Point2::new(pt.x, my));
            }
            i += 1;
        }
        unreachable!("candidate index {index} out of range");
    }
}

/// Brute-force reference for tests: enumerate every L-shape combination of
/// one two-pin net with both endpoints pins, no children. Uses the
/// quantised (`_fixed`) grid walks — the arithmetic domain the DP's cost
/// sources share — so the comparison is exact.
#[cfg(test)]
fn brute_force_two_pin_l(graph: &GridGraph, ps: Point2, pt: Point2) -> f64 {
    let l = graph.num_layers();
    let mut best = f64::INFINITY;
    for bend in [Point2::new(pt.x, ps.y), Point2::new(ps.x, pt.y)] {
        for ls in 1..l {
            for lt in 1..l {
                // Pin access: stack 0 -> ls at Ps, 0 -> lt at Pt.
                let c = graph.via_stack_cost_fixed(ps, 0, ls)
                    + graph.wire_run_cost_fixed(ls, ps, bend)
                    + graph.via_stack_cost_fixed(bend, ls, lt)
                    + graph.wire_run_cost_fixed(lt, bend, pt)
                    + graph.via_stack_cost_fixed(pt, 0, lt);
                if c < best {
                    best = c;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::{Net, NetId, Pin};
    use fastgr_grid::CostParams;
    use fastgr_steiner::SteinerBuilder;
    use proptest::prelude::*;

    fn graph(w: u16, h: u16, layers: u8) -> GridGraph {
        let mut g = GridGraph::new(w, h, layers, CostParams::default()).expect("valid");
        g.fill_capacity(6.0);
        g
    }

    fn net_of(points: &[(u16, u16)]) -> Net {
        Net::new(
            NetId(0),
            "n",
            points
                .iter()
                .map(|&(x, y)| Pin::new(Point2::new(x, y), 0))
                .collect(),
        )
    }

    fn route_with(g: &GridGraph, mode: PatternMode, points: &[(u16, u16)]) -> NetDpResult {
        let tree = SteinerBuilder::new().build(&net_of(points));
        PatternDp::new(g, mode).route_net(&tree).expect("routable")
    }

    #[test]
    fn two_pin_l_matches_brute_force() {
        let g = graph(16, 16, 5);
        let (ps, pt) = (Point2::new(2, 3), Point2::new(11, 9));
        let r = route_with(&g, PatternMode::LShape, &[(2, 3), (11, 9)]);
        let expect = brute_force_two_pin_l(&g, ps, pt);
        assert!(
            (r.cost - expect).abs() < 1e-9,
            "dp {} vs brute {}",
            r.cost,
            expect
        );
    }

    #[test]
    fn emitted_route_cost_equals_dp_cost() {
        let g = graph(20, 20, 6);
        for mode in [
            PatternMode::LShape,
            PatternMode::HybridAll,
            PatternMode::ZShape,
            PatternMode::Hybrid(SelectionThresholds::new(2, 100)),
        ] {
            let r = route_with(&g, mode, &[(1, 1), (14, 3), (7, 16), (3, 9)]);
            // The DP prices tree legs independently; normalised geometry
            // costs at most that (equality when no legs overlap). The DP
            // cost is a Q44.20-quantised sum while `route_cost` is raw
            // f64, so the bound carries the quantisation slack (< 2^-21
            // per edge).
            let recost = g.route_cost(&r.route);
            assert!(
                recost <= r.cost + 1e-3,
                "{mode:?}: geometry {} costs more than the dp bound {}",
                recost,
                r.cost
            );
            assert!(r.route.is_connected(), "{mode:?}: disconnected route");
        }
    }

    #[test]
    fn straight_two_pin_net_routes_straight() {
        let g = graph(16, 16, 5);
        let r = route_with(&g, PatternMode::LShape, &[(2, 5), (12, 5)]);
        assert_eq!(r.route.wirelength(), 10);
        // One horizontal segment, pin stacks on both ends.
        assert_eq!(r.route.segments().len(), 1);
        assert!(r.route.is_connected());
    }

    #[test]
    fn hybrid_never_costs_more_than_l_shape() {
        let mut g = graph(24, 24, 5);
        // Congest the two L corridors of a specific net on *every*
        // horizontal layer (M1, M3) so only a Z through a middle row wins.
        let mut blocker = Route::new();
        for layer in [1u8, 3] {
            blocker.push_segment(Segment::new(layer, Point2::new(2, 2), Point2::new(20, 2)));
            blocker.push_segment(Segment::new(layer, Point2::new(2, 18), Point2::new(20, 18)));
        }
        for _ in 0..6 {
            g.commit(&blocker).expect("valid");
        }
        let l = route_with(&g, PatternMode::LShape, &[(2, 2), (20, 18)]);
        let h = route_with(&g, PatternMode::HybridAll, &[(2, 2), (20, 18)]);
        assert!(
            h.cost <= l.cost + 1e-9,
            "hybrid {} must not lose to L {}",
            h.cost,
            l.cost
        );
        assert!(
            h.cost < l.cost - 1e-9,
            "expected a strictly better Z path here"
        );
    }

    #[test]
    fn selection_routes_small_nets_with_l_kernel() {
        let g = graph(24, 24, 5);
        let sel = SelectionThresholds::new(10, 50);
        // HPWL 4 <= t1: small -> L geometry (single bend).
        let r = route_with(&g, PatternMode::Hybrid(sel), &[(3, 3), (5, 5)]);
        assert!(r.route.segments().len() <= 2);
        assert!(r.route.is_connected());
    }

    #[test]
    fn single_gcell_net_is_free() {
        let g = graph(8, 8, 4);
        let r = route_with(&g, PatternMode::LShape, &[(3, 3)]);
        assert!(r.route.is_empty());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn multi_pin_net_connects_all_pins() {
        let g = graph(32, 32, 6);
        let pts = [(2, 2), (28, 4), (15, 29), (7, 18), (22, 22)];
        for mode in [PatternMode::LShape, PatternMode::HybridAll] {
            let r = route_with(&g, mode, &pts);
            assert!(r.route.is_connected());
            let touched = r.route.touched_points();
            for &(x, y) in &pts {
                assert!(
                    touched.contains(&Point2::new(x, y).on_layer(0)),
                    "{mode:?}: pin ({x}, {y}) not connected"
                );
            }
        }
    }

    #[test]
    fn congestion_steers_layer_choice() {
        let mut g = graph(16, 16, 6);
        let quiet = route_with(&g, PatternMode::LShape, &[(1, 8), (14, 8)]);
        // Saturate M1 along the straight row; M3/M5 are the alternatives.
        let mut blocker = Route::new();
        blocker.push_segment(Segment::new(1, Point2::new(0, 8), Point2::new(15, 8)));
        for _ in 0..8 {
            g.commit(&blocker).expect("valid");
        }
        let congested = route_with(&g, PatternMode::LShape, &[(1, 8), (14, 8)]);
        assert!(congested.cost > quiet.cost);
        // The route must avoid M1 now.
        assert!(congested.route.segments().iter().all(|s| s.layer != 1));
    }

    #[test]
    fn profile_grows_with_candidates() {
        let g = graph(32, 32, 6);
        let l = route_with(&g, PatternMode::LShape, &[(1, 1), (25, 20)]);
        let h = route_with(&g, PatternMode::HybridAll, &[(1, 1), (25, 20)]);
        assert!(h.profile.threads > l.profile.threads);
    }

    #[test]
    fn probed_and_direct_engines_agree_exactly() {
        // The prober and the direct walks share the quantised cost domain,
        // so costs and routes are bit-identical — equality, not epsilon.
        let mut g = graph(24, 24, 6);
        let mut blocker = Route::new();
        blocker.push_segment(Segment::new(1, Point2::new(0, 8), Point2::new(20, 8)));
        for _ in 0..5 {
            g.commit(&blocker).expect("valid");
        }
        let pts = [(2, 2), (20, 5), (11, 19), (4, 12)];
        for mode in [
            PatternMode::LShape,
            PatternMode::ZShape,
            PatternMode::HybridAll,
            PatternMode::Hybrid(SelectionThresholds::new(2, 100)),
        ] {
            let tree = SteinerBuilder::new().build(&net_of(&pts));
            let probed = PatternDp::new(&g, mode).route_net(&tree).expect("routable");
            let direct = PatternDp::direct(&g, mode)
                .route_net(&tree)
                .expect("routable");
            assert_eq!(probed.cost, direct.cost, "{mode:?}: costs diverge");
            assert_eq!(probed.route, direct.route, "{mode:?}: routes diverge");
        }
    }

    #[test]
    fn prober_removes_span_factor_from_modeled_work() {
        // Per-net modeled work of the hybrid kernel: O((M+N)^2 * L^2) when
        // every probe walks its run (direct), O((M+N) * L^2) with the
        // prefix-sum prober. Growing a two-pin net's span 8x must grow the
        // probed work roughly linearly (plus the log-merge term) but the
        // direct work quadratically.
        let g = graph(40, 40, 6);
        let work = |dp: &PatternDp, s: u16| {
            let tree = SteinerBuilder::new().build(&net_of(&[(1, 1), (1 + s, 1 + s)]));
            dp.route_net(&tree).expect("routable").profile.work() as f64
        };
        let probed = PatternDp::new(&g, PatternMode::HybridAll);
        let direct = PatternDp::direct(&g, PatternMode::HybridAll);
        let probed_ratio = work(&probed, 32) / work(&probed, 4);
        let direct_ratio = work(&direct, 32) / work(&direct, 4);
        assert!(
            probed_ratio < 12.0,
            "probed work grew superlinearly: {probed_ratio}"
        );
        assert!(
            direct_ratio > 18.0,
            "direct work should keep the span factor: {direct_ratio}"
        );
        assert!(direct_ratio > 2.0 * probed_ratio);
    }

    #[test]
    fn z_shape_excludes_l_candidates() {
        // For an aligned (straight) net the Z set still contains the
        // straight path (mx sweep includes interior columns), so routing
        // must succeed for all modes.
        let g = graph(16, 16, 5);
        for mode in [
            PatternMode::ZShape,
            PatternMode::HybridAll,
            PatternMode::LShape,
        ] {
            let r = route_with(&g, mode, &[(2, 5), (9, 5)]);
            assert!(r.route.is_connected(), "{mode:?} failed on straight net");
        }
    }

    #[test]
    fn scratch_reuse_across_nets_matches_fresh_runs() {
        // One shared scratch and one recycled Route, driven through nets
        // of very different shapes (growing AND shrinking tables), must
        // reproduce what fresh per-call state computes.
        let g = graph(32, 32, 6);
        let mut scratch = DpScratch::new();
        let mut recycled = Route::new();
        let netlists: Vec<Vec<(u16, u16)>> = vec![
            vec![(2, 2), (28, 4), (15, 29), (7, 18), (22, 22)],
            vec![(1, 1), (9, 9)],
            vec![(5, 5)],
            vec![(0, 0), (31, 31), (0, 31), (31, 0)],
            vec![(3, 7), (3, 7), (4, 7)],
        ];
        for mode in [
            PatternMode::LShape,
            PatternMode::HybridAll,
            PatternMode::ZShape,
        ] {
            let dp = PatternDp::new(&g, mode);
            for pts in &netlists {
                let tree = SteinerBuilder::new().build(&net_of(pts));
                let shared = dp
                    .route_net_into(&tree, &mut scratch, &mut recycled)
                    .expect("routable");
                let fresh = dp
                    .route_net_into(&tree, &mut DpScratch::new(), &mut Route::new())
                    .expect("routable");
                assert_eq!(shared, fresh, "{mode:?} {pts:?}: summaries diverge");
                let fresh_route = dp.route_net(&tree).expect("routable").route;
                assert_eq!(recycled, fresh_route, "{mode:?} {pts:?}: routes diverge");
            }
        }
    }

    proptest! {
        #[test]
        fn dp_cost_always_matches_emitted_geometry(
            pts in proptest::collection::hash_set((0u16..20, 0u16..20), 2..7),
            mode_pick in 0usize..3
        ) {
            let g = graph(20, 20, 5);
            let mode = [
                PatternMode::LShape,
                PatternMode::HybridAll,
                PatternMode::Hybrid(SelectionThresholds::new(5, 18)),
            ][mode_pick];
            let pts: Vec<(u16, u16)> = pts.into_iter().collect();
            let tree = SteinerBuilder::new().build(&net_of(&pts));
            let r = PatternDp::new(&g, mode).route_net(&tree).expect("routable");
            prop_assert!(r.route.is_connected());
            // DP cost upper-bounds the normalised geometry cost (modulo
            // Q44.20 quantisation slack vs the raw-f64 `route_cost`).
            prop_assert!(g.route_cost(&r.route) <= r.cost + 1e-3);
        }

        #[test]
        fn hybrid_is_never_worse_than_l(
            ax in 0u16..24, ay in 0u16..24, bx in 0u16..24, by in 0u16..24
        ) {
            let g = graph(24, 24, 6);
            let tree = SteinerBuilder::new().build(&net_of(&[(ax, ay), (bx, by)]));
            let l = PatternDp::new(&g, PatternMode::LShape).route_net(&tree).expect("ok");
            let h = PatternDp::new(&g, PatternMode::HybridAll).route_net(&tree).expect("ok");
            // The hybrid candidate set is a superset of the L set.
            prop_assert!(h.cost <= l.cost + 1e-9);
        }
    }
}
