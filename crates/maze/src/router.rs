//! The windowed multi-terminal 3-D shortest-path router.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use fastgr_grid::{Direction, GridGraph, Point2, Point3, Rect, Route, Segment, Via};

/// Fixed-point cost resolution: 1 µ-cost units keep the priority queue on
/// plain integers (no NaN hazards, total order for free).
const COST_SCALE: f64 = 1e6;

fn to_fixed(c: f64) -> u64 {
    debug_assert!(c >= 0.0 && c.is_finite());
    (c * COST_SCALE).round() as u64
}

/// Admissible A* heuristic: Manhattan distance to the target at the
/// cheapest possible per-edge cost (0 when running plain Dijkstra).
fn heuristic(astar: bool, unit_wire: f64, target: Point2, p: Point3) -> u64 {
    if astar {
        to_fixed(p.xy().manhattan_distance(target) as f64 * unit_wire)
    } else {
        0
    }
}

/// Configuration of the maze router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MazeConfig {
    /// G-cells added around the pin bounding box to form the search window.
    pub window_margin: u16,
    /// Use the admissible Manhattan-distance A* heuristic (plain Dijkstra
    /// when `false`).
    pub astar: bool,
}

impl Default for MazeConfig {
    fn default() -> Self {
        Self {
            window_margin: 3,
            astar: true,
        }
    }
}

/// Errors from maze routing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MazeError {
    /// A pin lies outside the grid.
    PinOutsideGrid {
        /// The offending pin position.
        pin: Point2,
    },
    /// A net has no pins.
    EmptyNet,
    /// No path exists inside the search window (e.g. fully blocked layers).
    NoPath {
        /// The pin that could not be reached.
        target: Point2,
    },
}

impl fmt::Display for MazeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MazeError::PinOutsideGrid { pin } => write!(f, "pin {pin} is outside the grid"),
            MazeError::EmptyNet => write!(f, "cannot route a net without pins"),
            MazeError::NoPath { target } => {
                write!(f, "no path to pin {target} inside the search window")
            }
        }
    }
}

impl Error for MazeError {}

/// Search statistics of one routing call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MazeStats {
    /// Vertices popped from the priority queue.
    pub expanded: u64,
    /// Number of two-pin searches performed.
    pub searches: u32,
}

/// The windowed multi-terminal 3-D maze router. See the crate docs.
#[derive(Debug, Clone, Default)]
pub struct MazeRouter {
    config: MazeConfig,
}

/// Reusable search state for [`MazeRouter::route_into`].
///
/// Owns the dense per-window arrays (`dist`/`prev`/`gen`), the priority
/// queue, and every intermediate buffer a routing call needs. All buffers
/// grow to a high-water mark and are recycled via generation stamping, so
/// after a warm-up call the steady-state search loop performs **zero heap
/// allocation** — keep one scratch per worker thread and route every net
/// through it, mirroring the pattern stage's `DpScratch` discipline.
#[derive(Debug)]
pub struct MazeScratch {
    /// Current search window (set by `bind`, valid for one routing call).
    rect: Rect,
    w: usize,
    h: usize,
    dist: Vec<u64>,
    /// Back-pointer: packed predecessor index + 1, 0 = none/source.
    prev: Vec<u32>,
    /// Visit generation so we can reuse the buffers without clearing.
    gen: Vec<u32>,
    current_gen: u32,
    /// Priority queue of (f = g + h, index).
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Back-traced vertex path of the most recent two-pin search.
    path: Vec<usize>,
    /// Window indices of the connected component grown so far.
    component: Vec<usize>,
    /// Pins not yet connected to the component.
    remaining: Vec<Point2>,
    /// Deduplicated, sorted copy of the caller's pins.
    distinct: Vec<Point2>,
}

impl Default for MazeScratch {
    fn default() -> Self {
        Self {
            rect: Rect::new(Point2::new(0, 0), Point2::new(0, 0)),
            w: 0,
            h: 0,
            dist: Vec::new(),
            prev: Vec::new(),
            gen: Vec::new(),
            current_gen: 0,
            heap: BinaryHeap::new(),
            path: Vec::new(),
            component: Vec::new(),
            remaining: Vec::new(),
            distinct: Vec::new(),
        }
    }
}

impl MazeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebinds the scratch to a new search window, growing the dense
    /// arrays to the high-water mark (never shrinking).
    fn bind(&mut self, rect: Rect, layers: usize) {
        self.rect = rect;
        self.w = rect.width() as usize;
        self.h = rect.height() as usize;
        let n = self.w * self.h * layers;
        if n > self.dist.len() {
            self.dist.resize(n, u64::MAX);
            self.prev.resize(n, 0);
            self.gen.resize(n, 0);
        }
    }

    fn index(&self, p: Point3) -> usize {
        let x = (p.x - self.rect.lo.x) as usize;
        let y = (p.y - self.rect.lo.y) as usize;
        (p.layer as usize * self.h + y) * self.w + x
    }

    fn point(&self, idx: usize) -> Point3 {
        let layer = idx / (self.w * self.h);
        let rem = idx % (self.w * self.h);
        let y = rem / self.w;
        let x = rem % self.w;
        Point3::new(
            self.rect.lo.x + x as u16,
            self.rect.lo.y + y as u16,
            layer as u8,
        )
    }

    fn next_generation(&mut self) {
        if self.current_gen == u32::MAX {
            // Generation counter wrapped: reset the stamps once rather than
            // clearing `dist` on every search.
            self.gen.fill(0);
            self.current_gen = 0;
        }
        self.current_gen += 1;
    }

    fn dist_at(&self, idx: usize) -> u64 {
        if self.gen[idx] == self.current_gen {
            self.dist[idx]
        } else {
            u64::MAX
        }
    }

    fn set(&mut self, idx: usize, dist: u64, prev: Option<usize>) {
        self.gen[idx] = self.current_gen;
        self.dist[idx] = dist;
        self.prev[idx] = prev.map_or(0, |p| p as u32 + 1);
    }

    fn prev_at(&self, idx: usize) -> Option<usize> {
        if self.gen[idx] == self.current_gen && self.prev[idx] != 0 {
            Some(self.prev[idx] as usize - 1)
        } else {
            None
        }
    }

    /// Relaxes the edge `from -> q` with incremental cost `step`; `h` is
    /// the precomputed heuristic of `q`.
    fn relax(&mut self, q: Point3, step: f64, g: u64, from: usize, h: u64) {
        if !step.is_finite() {
            return;
        }
        let qi = self.index(q);
        let ng = g.saturating_add(to_fixed(step));
        if ng < self.dist_at(qi) {
            self.set(qi, ng, Some(from));
            self.heap.push(Reverse((ng.saturating_add(h), qi)));
        }
    }
}

impl MazeRouter {
    /// Creates a router with the given configuration.
    pub fn new(config: MazeConfig) -> Self {
        Self { config }
    }

    /// The router configuration.
    pub fn config(&self) -> &MazeConfig {
        &self.config
    }

    /// Routes a net given its distinct pin G-cells (all pins are assumed to
    /// be on layer 0, the convention of this reproduction's designs).
    ///
    /// Returns a connected [`Route`]; a single-pin net yields an empty one.
    ///
    /// # Errors
    ///
    /// * [`MazeError::EmptyNet`] for zero pins;
    /// * [`MazeError::PinOutsideGrid`] for an out-of-grid pin;
    /// * [`MazeError::NoPath`] when a pin cannot be reached inside the
    ///   window (retry with a larger [`MazeConfig::window_margin`]).
    pub fn route(&self, graph: &GridGraph, pins: &[Point2]) -> Result<Route, MazeError> {
        self.route_with_stats(graph, pins).map(|(route, _)| route)
    }

    /// Like [`MazeRouter::route`] but also returns search statistics.
    ///
    /// Allocating convenience wrapper around [`MazeRouter::route_into`];
    /// hot loops should hold a [`MazeScratch`] and call `route_into`
    /// directly.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MazeRouter::route`].
    pub fn route_with_stats(
        &self,
        graph: &GridGraph,
        pins: &[Point2],
    ) -> Result<(Route, MazeStats), MazeError> {
        let mut scratch = MazeScratch::new();
        let mut route = Route::new();
        let stats = self.route_into(graph, pins, &mut scratch, &mut route)?;
        debug_assert!(route.is_connected(), "maze route must be connected");
        Ok((route, stats))
    }

    /// Routes a net into a caller-provided [`Route`], reusing `scratch`.
    ///
    /// `out` is cleared first and holds the normalized result on success
    /// (its contents are unspecified on error). After a warm-up call that
    /// grows the scratch to its high-water mark, this performs no heap
    /// allocation — the property the counting-allocator test and the
    /// `*_into` zero-alloc lint rule enforce.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MazeRouter::route`].
    pub fn route_into(
        &self,
        graph: &GridGraph,
        pins: &[Point2],
        scratch: &mut MazeScratch,
        out: &mut Route,
    ) -> Result<MazeStats, MazeError> {
        out.clear();
        if pins.is_empty() {
            return Err(MazeError::EmptyNet);
        }
        for &pin in pins {
            if !graph.contains(pin) {
                return Err(MazeError::PinOutsideGrid { pin });
            }
        }
        scratch.distinct.clear();
        scratch.distinct.extend_from_slice(pins);
        scratch.distinct.sort_unstable();
        scratch.distinct.dedup();

        let mut stats = MazeStats::default();
        if scratch.distinct.len() == 1 {
            return Ok(stats);
        }

        let bbox = Rect::bounding(scratch.distinct.iter().copied()).expect("non-empty");
        let window_rect = bbox.inflated(self.config.window_margin, graph.width(), graph.height());
        scratch.bind(window_rect, graph.num_layers() as usize);

        // Component vertices (indices into the window), starting from the
        // first pin on layer 0.
        let anchor = scratch.distinct[0];
        let first = scratch.index(anchor.on_layer(0));
        scratch.component.clear();
        scratch.component.push(first);

        // Connect remaining pins, nearest-first to keep paths short.
        {
            let (remaining, distinct) = (&mut scratch.remaining, &scratch.distinct);
            remaining.clear();
            remaining.extend_from_slice(&distinct[1..]);
        }
        while !scratch.remaining.is_empty() {
            // Pick the unconnected pin closest to the current component bbox
            // (cheap proxy: distance to the first pin).
            let (pick, _) = scratch
                .remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.manhattan_distance(anchor))
                .expect("non-empty");
            let target = scratch.remaining.swap_remove(pick);
            self.search_into(graph, scratch, target, &mut stats)?;
            // Merge path vertices into the component and geometry.
            Self::emit_geometry(scratch, out);
            let (component, path) = (&mut scratch.component, &scratch.path);
            component.extend_from_slice(path);
        }
        out.normalize();
        Ok(stats)
    }

    /// Multi-source Dijkstra/A* from `scratch.component` to `(target,
    /// layer 0)`. Leaves the path, as window indices from source side to
    /// target, in `scratch.path`.
    fn search_into(
        &self,
        graph: &GridGraph,
        scratch: &mut MazeScratch,
        target: Point2,
        stats: &mut MazeStats,
    ) -> Result<(), MazeError> {
        stats.searches += 1;
        scratch.next_generation();
        let target_idx = scratch.index(target.on_layer(0));
        let unit_wire = graph.params().unit_wire;
        let astar = self.config.astar;

        scratch.heap.clear();
        for i in 0..scratch.component.len() {
            let s = scratch.component[i];
            scratch.set(s, 0, None);
            let h = heuristic(astar, unit_wire, target, scratch.point(s));
            scratch.heap.push(Reverse((h, s)));
        }

        while let Some(Reverse((_, idx))) = scratch.heap.pop() {
            let g = scratch.dist_at(idx);
            if g == u64::MAX {
                continue;
            }
            let p = scratch.point(idx);
            if idx == target_idx {
                // Back-trace.
                scratch.path.clear();
                scratch.path.push(idx);
                let mut cur = idx;
                while let Some(prev) = scratch.prev_at(cur) {
                    scratch.path.push(prev);
                    cur = prev;
                }
                scratch.path.reverse();
                return Ok(());
            }
            stats.expanded += 1;

            // Wire moves along the preferred direction (layers with capacity).
            let layer = p.layer;
            if layer >= 1 {
                match graph.layer(layer).direction {
                    Direction::Horizontal => {
                        if p.x > scratch.rect.lo.x {
                            let q = Point3::new(p.x - 1, p.y, layer);
                            let cap = graph.wire_capacity(layer, q.xy()).unwrap_or(0.0);
                            if cap > 0.0 {
                                let h = heuristic(astar, unit_wire, target, q);
                                scratch.relax(q, graph.wire_edge_cost(layer, q.xy()), g, idx, h);
                            }
                        }
                        if p.x < scratch.rect.hi.x {
                            let cap = graph.wire_capacity(layer, p.xy()).unwrap_or(0.0);
                            if cap > 0.0 {
                                let q = Point3::new(p.x + 1, p.y, layer);
                                let h = heuristic(astar, unit_wire, target, q);
                                scratch.relax(q, graph.wire_edge_cost(layer, p.xy()), g, idx, h);
                            }
                        }
                    }
                    Direction::Vertical => {
                        if p.y > scratch.rect.lo.y {
                            let q = Point3::new(p.x, p.y - 1, layer);
                            let cap = graph.wire_capacity(layer, q.xy()).unwrap_or(0.0);
                            if cap > 0.0 {
                                let h = heuristic(astar, unit_wire, target, q);
                                scratch.relax(q, graph.wire_edge_cost(layer, q.xy()), g, idx, h);
                            }
                        }
                        if p.y < scratch.rect.hi.y {
                            let cap = graph.wire_capacity(layer, p.xy()).unwrap_or(0.0);
                            if cap > 0.0 {
                                let q = Point3::new(p.x, p.y + 1, layer);
                                let h = heuristic(astar, unit_wire, target, q);
                                scratch.relax(q, graph.wire_edge_cost(layer, p.xy()), g, idx, h);
                            }
                        }
                    }
                }
            }
            // Via moves.
            if layer + 1 < graph.num_layers() {
                let q = Point3::new(p.x, p.y, layer + 1);
                let h = heuristic(astar, unit_wire, target, q);
                scratch.relax(q, graph.via_edge_cost(layer, p.xy()), g, idx, h);
            }
            if layer > 0 {
                let q = Point3::new(p.x, p.y, layer - 1);
                let h = heuristic(astar, unit_wire, target, q);
                scratch.relax(q, graph.via_edge_cost(layer - 1, p.xy()), g, idx, h);
            }
        }
        Err(MazeError::NoPath { target })
    }

    /// Converts the back-traced vertex path in `scratch.path` into merged
    /// segments and vias appended to `route`.
    fn emit_geometry(scratch: &MazeScratch, route: &mut Route) {
        let path = &scratch.path;
        if path.len() < 2 {
            return;
        }
        let mut run_start = scratch.point(path[0]);
        // Run-length merge: walk the path, cutting whenever the move kind
        // (wire vs via) changes. Same-layer wire runs are always straight
        // because shortest paths never revisit a vertex.
        let mut i = 1;
        while i < path.len() {
            let dir = step_dir(scratch.point(path[i - 1]), scratch.point(path[i]));
            let mut j = i;
            while j + 1 < path.len() && step_dir(scratch.point(path[j]), scratch.point(path[j + 1])) == dir
            {
                j += 1;
            }
            let (from, to) = (run_start, scratch.point(path[j]));
            match dir {
                StepDir::Wire => {
                    route.push_segment(Segment::new(from.layer, from.xy(), to.xy()));
                }
                StepDir::Via => {
                    route.push_via(Via::new(from.xy(), from.layer, to.layer));
                }
            }
            run_start = scratch.point(path[j]);
            i = j + 1;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepDir {
    Wire,
    Via,
}

fn step_dir(a: Point3, b: Point3) -> StepDir {
    if a.layer != b.layer {
        StepDir::Via
    } else {
        StepDir::Wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_grid::CostParams;
    use proptest::prelude::*;

    fn graph(w: u16, h: u16, layers: u8) -> GridGraph {
        let mut g = GridGraph::new(w, h, layers, CostParams::default()).expect("valid");
        g.fill_capacity(4.0);
        g
    }

    #[test]
    fn two_pin_route_is_connected_and_tight() {
        let g = graph(16, 16, 4);
        let r = MazeRouter::default()
            .route(&g, &[Point2::new(1, 1), Point2::new(12, 9)])
            .expect("routable");
        assert!(r.is_connected());
        // Shortest possible wirelength is the Manhattan distance.
        assert_eq!(r.wirelength(), 19);
        // Needs vias: from layer 0 up and between H/V layers.
        assert!(r.via_count() >= 2);
    }

    #[test]
    fn single_pin_net_routes_empty() {
        let g = graph(8, 8, 4);
        let r = MazeRouter::default()
            .route(&g, &[Point2::new(3, 3)])
            .expect("ok");
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_pins_collapse() {
        let g = graph(8, 8, 4);
        let r = MazeRouter::default()
            .route(&g, &[Point2::new(3, 3), Point2::new(3, 3)])
            .expect("ok");
        assert!(r.is_empty());
    }

    #[test]
    fn empty_net_is_rejected() {
        let g = graph(8, 8, 4);
        assert_eq!(
            MazeRouter::default().route(&g, &[]),
            Err(MazeError::EmptyNet)
        );
    }

    #[test]
    fn out_of_grid_pin_is_rejected() {
        let g = graph(8, 8, 4);
        assert!(matches!(
            MazeRouter::default().route(&g, &[Point2::new(0, 0), Point2::new(99, 0)]),
            Err(MazeError::PinOutsideGrid { .. })
        ));
    }

    #[test]
    fn reused_scratch_reproduces_fresh_results() {
        let g = graph(20, 20, 5);
        let router = MazeRouter::default();
        let nets: Vec<Vec<Point2>> = vec![
            vec![Point2::new(1, 1), Point2::new(12, 9)],
            vec![Point2::new(18, 2), Point2::new(3, 17), Point2::new(9, 9)],
            vec![Point2::new(0, 19), Point2::new(19, 0)],
            vec![Point2::new(5, 5)],
        ];
        let mut scratch = MazeScratch::new();
        let mut out = Route::new();
        for pins in &nets {
            let fresh = router.route(&g, pins).expect("routable");
            let stats = router
                .route_into(&g, pins, &mut scratch, &mut out)
                .expect("routable");
            assert_eq!(&out, &fresh, "scratch reuse changed geometry");
            assert!(stats.searches as usize + 1 >= pins.len());
        }
    }

    #[test]
    fn route_into_reports_errors_with_reused_scratch() {
        let g = graph(8, 8, 4);
        let mut scratch = MazeScratch::new();
        let mut out = Route::new();
        let router = MazeRouter::default();
        // Warm up with a good net, then fail, then route again.
        router
            .route_into(&g, &[Point2::new(0, 0), Point2::new(7, 7)], &mut scratch, &mut out)
            .expect("routable");
        assert_eq!(
            router.route_into(&g, &[], &mut scratch, &mut out),
            Err(MazeError::EmptyNet)
        );
        router
            .route_into(&g, &[Point2::new(2, 2), Point2::new(5, 1)], &mut scratch, &mut out)
            .expect("routable after error");
        assert!(out.is_connected());
    }

    #[test]
    fn detours_around_congestion() {
        let mut g = graph(16, 16, 4);
        // Saturate the straight horizontal corridor on M1 at y=5.
        let mut blocker = Route::new();
        blocker.push_segment(Segment::new(1, Point2::new(0, 5), Point2::new(15, 5)));
        for _ in 0..8 {
            g.commit(&blocker).expect("valid");
        }
        let r = MazeRouter::default()
            .route(&g, &[Point2::new(2, 5), Point2::new(13, 5)])
            .expect("routable");
        assert!(r.is_connected());
        // With M3 (horizontal) available, the route should escape the
        // saturated M1 corridor rather than add overflow there.
        let m1_wl: u64 = r
            .segments()
            .iter()
            .filter(|s| s.layer == 1 && s.from.y == 5)
            .map(|s| s.length() as u64)
            .sum();
        assert!(
            m1_wl < 11,
            "expected detour off the congested corridor, m1 wl {m1_wl}"
        );
    }

    #[test]
    fn multi_pin_route_spans_all_pins() {
        let g = graph(20, 20, 5);
        let pins = [
            Point2::new(2, 2),
            Point2::new(17, 3),
            Point2::new(9, 16),
            Point2::new(4, 12),
        ];
        let r = MazeRouter::default().route(&g, &pins).expect("routable");
        assert!(r.is_connected());
        let touched = r.touched_points();
        for pin in pins {
            assert!(
                touched.contains(&pin.on_layer(0)),
                "pin {pin} not reached by the route"
            );
        }
    }

    #[test]
    fn astar_and_dijkstra_agree_on_cost() {
        let g = graph(24, 24, 4);
        let pins = [Point2::new(1, 2), Point2::new(20, 19)];
        let a = MazeRouter::new(MazeConfig {
            astar: true,
            ..MazeConfig::default()
        })
        .route(&g, &pins)
        .expect("ok");
        let d = MazeRouter::new(MazeConfig {
            astar: false,
            ..MazeConfig::default()
        })
        .route(&g, &pins)
        .expect("ok");
        assert!((g.route_cost(&a) - g.route_cost(&d)).abs() < 1e-3);
    }

    #[test]
    fn astar_expands_fewer_nodes() {
        let g = graph(32, 32, 4);
        let pins = [Point2::new(1, 1), Point2::new(30, 30)];
        let (_, sa) = MazeRouter::new(MazeConfig {
            astar: true,
            window_margin: 16,
        })
        .route_with_stats(&g, &pins)
        .expect("ok");
        let (_, sd) = MazeRouter::new(MazeConfig {
            astar: false,
            window_margin: 16,
        })
        .route_with_stats(&g, &pins)
        .expect("ok");
        assert!(
            sa.expanded < sd.expanded,
            "a* {} vs dijkstra {}",
            sa.expanded,
            sd.expanded
        );
    }

    #[test]
    fn fully_blocked_layer_reports_no_path() {
        let mut g = GridGraph::new(8, 8, 3, CostParams::default()).expect("valid");
        // Only M1 (horizontal) has capacity; M2 stays at 0 so vertical
        // movement is impossible.
        g.set_layer_capacity(1, 4.0);
        let res = MazeRouter::default().route(&g, &[Point2::new(0, 0), Point2::new(0, 7)]);
        assert!(matches!(res, Err(MazeError::NoPath { .. })));
    }

    proptest! {
        #[test]
        fn random_two_pin_routes_connect(
            ax in 0u16..20, ay in 0u16..20, bx in 0u16..20, by in 0u16..20
        ) {
            let g = graph(20, 20, 5);
            let r = MazeRouter::default()
                .route(&g, &[Point2::new(ax, ay), Point2::new(bx, by)])
                .expect("routable");
            prop_assert!(r.is_connected());
            let manhattan =
                Point2::new(ax, ay).manhattan_distance(Point2::new(bx, by)) as u64;
            prop_assert!(r.wirelength() >= manhattan);
            if (ax, ay) != (bx, by) {
                let touched = r.touched_points();
                prop_assert!(touched.contains(&Point2::new(ax, ay).on_layer(0)));
                prop_assert!(touched.contains(&Point2::new(bx, by).on_layer(0)));
            }
        }

        /// Routing through a reused scratch is geometry-identical to a
        /// fresh router call, for any pin set.
        #[test]
        fn scratch_reuse_is_transparent(
            pins in proptest::collection::vec((0u16..20, 0u16..20), 1..6)
        ) {
            let g = graph(20, 20, 5);
            let pins: Vec<Point2> = pins.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
            let router = MazeRouter::default();
            let mut scratch = MazeScratch::new();
            let mut out = Route::new();
            // Warm the scratch on an unrelated net first.
            router
                .route_into(&g, &[Point2::new(0, 0), Point2::new(19, 19)], &mut scratch, &mut out)
                .expect("routable");
            let fresh = router.route(&g, &pins).expect("routable");
            router.route_into(&g, &pins, &mut scratch, &mut out).expect("routable");
            prop_assert_eq!(&out, &fresh);
        }
    }
}
