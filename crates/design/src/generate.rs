//! Seeded synthetic design generator.
//!
//! Produces designs with the statistical structure the FastGR evaluation
//! relies on (see `DESIGN.md` §4):
//!
//! * long-tailed pin-count distribution (mostly 2–4-pin nets, a thin tail of
//!   large fan-out nets),
//! * long-tailed net *extent* distribution — the bulk of nets are local,
//!   ~1% are medium and ~0.1% span a large fraction of the die, which is
//!   exactly the split the selection technique of Section IV-D exploits,
//! * spatial hotspots so congestion is non-uniform (drives rip-up and
//!   reroute), and
//! * macro blockages that remove capacity on lower layers.

use fastgr_grid::{Point2, Rect};

use crate::net::{Blockage, Design, Net, NetId, Pin};
use crate::rng::SplitMix64;

/// Tunable knobs of the synthetic generator.
///
/// The defaults produce a small but congested design; the benchmark suite
/// ([`crate::suite`]) overrides dimensions per benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorParams {
    /// Design name.
    pub name: String,
    /// Grid width in G-cells.
    pub width: u16,
    /// Grid height in G-cells.
    pub height: u16,
    /// Number of metal layers (including pin layer 0).
    pub layers: u8,
    /// Number of nets to generate.
    pub num_nets: usize,
    /// Uniform track capacity of routable layers.
    pub capacity: f64,
    /// Number of congestion hotspots.
    pub hotspots: usize,
    /// Probability that a net is attracted to a hotspot.
    pub hotspot_affinity: f64,
    /// Number of macro blockages.
    pub blockages: usize,
    /// PRNG seed; equal seeds give byte-identical designs.
    pub seed: u64,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        Self {
            name: "synthetic".to_owned(),
            width: 32,
            height: 32,
            layers: 6,
            num_nets: 512,
            capacity: 12.0,
            hotspots: 4,
            hotspot_affinity: 0.35,
            blockages: 3,
            seed: 1,
        }
    }
}

/// Deterministic synthetic design generator.
///
/// # Example
///
/// ```
/// use fastgr_design::Generator;
///
/// let a = Generator::tiny(3).generate();
/// let b = Generator::tiny(3).generate();
/// assert_eq!(a, b); // same seed, same design
/// ```
#[derive(Debug, Clone)]
pub struct Generator {
    params: GeneratorParams,
}

impl Generator {
    /// Creates a generator with explicit parameters.
    pub fn new(params: GeneratorParams) -> Self {
        Self { params }
    }

    /// A tiny 16x16, 5-layer, 64-net design for examples and tests.
    pub fn tiny(seed: u64) -> Self {
        Self::new(GeneratorParams {
            name: format!("tiny-{seed}"),
            width: 16,
            height: 16,
            layers: 5,
            num_nets: 64,
            capacity: 8.0,
            hotspots: 2,
            blockages: 1,
            seed,
            ..GeneratorParams::default()
        })
    }

    /// The parameters this generator will use.
    pub fn params(&self) -> &GeneratorParams {
        &self.params
    }

    /// Generates the design.
    pub fn generate(&self) -> Design {
        let p = &self.params;
        let mut rng = SplitMix64::new(p.seed);

        let hotspots: Vec<Point2> = (0..p.hotspots)
            .map(|_| {
                Point2::new(
                    rng.next_range(0, p.width as u64 - 1) as u16,
                    rng.next_range(0, p.height as u64 - 1) as u16,
                )
            })
            .collect();

        let blockages: Vec<Blockage> = (0..p.blockages)
            .map(|_| {
                let w = rng.next_range(2, (p.width as u64 / 5).max(2)) as u16;
                let h = rng.next_range(2, (p.height as u64 / 5).max(2)) as u16;
                let x = rng.next_range(0, (p.width - w) as u64) as u16;
                let y = rng.next_range(0, (p.height - h) as u64) as u16;
                // Blockages hit the lowest routable layers hardest.
                let layer = 1 + rng.next_below(2.min(p.layers as u64 - 2).max(1)) as u8;
                Blockage {
                    layer,
                    region: Rect::new(Point2::new(x, y), Point2::new(x + w - 1, y + h - 1)),
                    factor: 0.1 + 0.3 * rng.next_f64(),
                }
            })
            .collect();

        let nets: Vec<Net> = (0..p.num_nets)
            .map(|i| {
                let id = NetId(i as u32);
                let pins = self.generate_pins(&mut rng, &hotspots);
                Net::new(id, format!("net{i}"), pins)
            })
            .collect();

        Design::new(
            p.name.clone(),
            p.width,
            p.height,
            p.layers,
            p.capacity,
            blockages,
            nets,
        )
    }

    /// Draws the pin count: 2 (55%), 3 (20%), 4 (10%), 5–8 (10%),
    /// exponential tail up to 48 (5%).
    fn pin_count(rng: &mut SplitMix64) -> usize {
        let r = rng.next_f64();
        if r < 0.55 {
            2
        } else if r < 0.75 {
            3
        } else if r < 0.85 {
            4
        } else if r < 0.95 {
            5 + rng.next_below(4) as usize
        } else {
            (8.0 + rng.next_exp(8.0)).min(48.0) as usize
        }
    }

    /// Draws the 2-D extent of the net's bounding box. Roughly 99% small,
    /// ~1% medium, ~0.1–0.3% large, matching the paper's split.
    fn extent(rng: &mut SplitMix64, span: u16) -> u16 {
        let r = rng.next_f64();
        let span = span as f64;
        let e = if r < 0.988 {
            1.0 + rng.next_exp(2.5)
        } else if r < 0.998 {
            span / 12.0 + rng.next_exp(span / 10.0)
        } else {
            span / 3.0 + rng.next_f64() * span / 3.0
        };
        (e.round() as u16).clamp(1, span.max(2.0) as u16 - 1)
    }

    fn generate_pins(&self, rng: &mut SplitMix64, hotspots: &[Point2]) -> Vec<Pin> {
        let p = &self.params;
        let k = Self::pin_count(rng);
        let ew = Self::extent(rng, p.width);
        let eh = Self::extent(rng, p.height);

        // Net centre: near a hotspot with probability `hotspot_affinity`.
        let centre = if !hotspots.is_empty() && rng.next_bool(p.hotspot_affinity) {
            let h = hotspots[rng.next_below(hotspots.len() as u64) as usize];
            let dx = rng
                .next_exp(p.width as f64 / 10.0)
                .min(p.width as f64 / 3.0) as i32;
            let dy = rng
                .next_exp(p.height as f64 / 10.0)
                .min(p.height as f64 / 3.0) as i32;
            let sx = if rng.next_bool(0.5) { -1 } else { 1 };
            let sy = if rng.next_bool(0.5) { -1 } else { 1 };
            Point2::new(
                (h.x as i32 + sx * dx).clamp(0, p.width as i32 - 1) as u16,
                (h.y as i32 + sy * dy).clamp(0, p.height as i32 - 1) as u16,
            )
        } else {
            Point2::new(
                rng.next_range(0, p.width as u64 - 1) as u16,
                rng.next_range(0, p.height as u64 - 1) as u16,
            )
        };

        // Bounding box around the centre, clamped to the grid.
        let x0 = (centre.x as i32 - ew as i32 / 2).clamp(0, p.width as i32 - 1) as u16;
        let y0 = (centre.y as i32 - eh as i32 / 2).clamp(0, p.height as i32 - 1) as u16;
        let x1 = (x0 + ew).min(p.width - 1);
        let y1 = (y0 + eh).min(p.height - 1);

        let mut pins = Vec::with_capacity(k);
        // First two pins at opposite corners so the box extent is realised.
        pins.push(Pin::new(Point2::new(x0, y0), 0));
        pins.push(Pin::new(Point2::new(x1, y1), 0));
        for _ in 2..k {
            pins.push(Pin::new(
                Point2::new(
                    rng.next_range(x0 as u64, x1 as u64) as u16,
                    rng.next_range(y0 as u64, y1 as u64) as u16,
                ),
                0,
            ));
        }
        pins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = GeneratorParams {
            seed: 99,
            ..GeneratorParams::default()
        };
        let a = Generator::new(p.clone()).generate();
        let b = Generator::new(p).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::tiny(1).generate();
        let b = Generator::tiny(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn all_pins_are_on_grid_layer_zero() {
        let d = Generator::new(GeneratorParams::default()).generate();
        for net in d.nets() {
            for pin in net.pins() {
                assert!(pin.position.x < d.width());
                assert!(pin.position.y < d.height());
                assert_eq!(pin.layer, 0);
            }
        }
    }

    #[test]
    fn pin_count_distribution_is_long_tailed() {
        let d = Generator::new(GeneratorParams {
            num_nets: 4000,
            width: 64,
            height: 64,
            ..GeneratorParams::default()
        })
        .generate();
        let two = d.nets().iter().filter(|n| n.pin_count() == 2).count();
        let big = d.nets().iter().filter(|n| n.pin_count() > 8).count();
        assert!(two > 1800, "expected majority 2-pin nets, got {two}");
        assert!(big > 10, "expected a tail of large nets, got {big}");
        assert!(big < 400, "tail too fat: {big}");
    }

    #[test]
    fn extent_distribution_matches_selection_split() {
        // Mirrors Section IV-D: ~99% small, ~1% medium, ~0.1% large.
        let d = Generator::new(GeneratorParams {
            num_nets: 20_000,
            width: 128,
            height: 128,
            ..GeneratorParams::default()
        })
        .generate();
        let total = d.nets().len() as f64;
        let small = d.nets().iter().filter(|n| n.hpwl() <= 12).count() as f64;
        let large = d.nets().iter().filter(|n| n.hpwl() > 60).count() as f64;
        assert!(small / total > 0.85, "small fraction {}", small / total);
        assert!(large / total < 0.02, "large fraction {}", large / total);
        assert!(large >= 1.0, "need at least one large net");
    }

    #[test]
    fn blockages_fit_grid() {
        let d = Generator::new(GeneratorParams {
            blockages: 8,
            ..GeneratorParams::default()
        })
        .generate();
        assert_eq!(d.blockages().len(), 8);
        for b in d.blockages() {
            assert!(b.region.hi.x < d.width());
            assert!(b.region.hi.y < d.height());
            assert!(b.layer >= 1 && b.layer < d.layers());
            assert!((0.0..=1.0).contains(&b.factor));
        }
    }

    #[test]
    fn tiny_preset_has_documented_shape() {
        let d = Generator::tiny(42).generate();
        assert_eq!(d.width(), 16);
        assert_eq!(d.layers(), 5);
        assert_eq!(d.nets().len(), 64);
    }
}
