//! Micro-benchmarks of the rip-up-and-reroute stage: strategy comparison
//! on a congested hotspot design, and the incremental overflow recheck
//! against the full rescan it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fastgr_core::{
    PatternEngine, PatternMode, PatternStage, RrrStage, RrrStrategy, SortingScheme,
};
use fastgr_design::{Design, Generator, GeneratorParams};
use fastgr_grid::{CostParams, GridGraph, Route};
use fastgr_maze::MazeConfig;

fn congested() -> (Design, GridGraph, Vec<Route>) {
    let design = Generator::new(GeneratorParams {
        name: "rrr-bench".to_string(),
        width: 24,
        height: 24,
        layers: 5,
        num_nets: 360,
        capacity: 3.0,
        hotspots: 2,
        hotspot_affinity: 0.6,
        blockages: 2,
        seed: 5,
    })
    .generate();
    let mut graph = design.build_graph(CostParams::default()).expect("valid");
    let outcome = PatternStage {
        mode: PatternMode::LShape,
        engine: PatternEngine::SequentialCpu,
        sorting: SortingScheme::HpwlAscending,
        steiner_passes: 4,
        congestion_aware_planning: false,
        cost_probing: true,
        validate: false,
    }
    .run(&design, &mut graph)
    .expect("routable");
    (design, graph, outcome.routes)
}

fn bench_strategies(c: &mut Criterion) {
    let (design, graph, routes) = congested();
    let mut group = c.benchmark_group("rrr_strategy");
    group.sample_size(10);
    for (strategy, name) in [
        (RrrStrategy::TaskGraph, "task_graph"),
        (RrrStrategy::BatchBarrier, "batch_barrier"),
        (RrrStrategy::Sequential, "sequential"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            let stage = RrrStage {
                iterations: 2,
                strategy: s,
                sorting: SortingScheme::HpwlAscending,
                maze: MazeConfig::default(),
                workers: 4,
                history_increment: 0.0,
                validate: false,
            };
            b.iter(|| {
                let mut g = graph.clone();
                let mut r = routes.clone();
                black_box(stage.run(&design, &mut g, &mut r).expect("ok"));
            });
        });
    }
    group.finish();
}

fn bench_overflow_scan(c: &mut Criterion) {
    // The incremental recheck's two ingredients, measured against the full
    // rescan they replace: with nothing dirty, `route_touches_dirty`
    // rejects every route without walking its segments' demand.
    let (_, mut graph, routes) = congested();
    graph.clear_dirty();
    let mut group = c.benchmark_group("rrr_overflow_scan");
    group.bench_function("full_rescan", |b| {
        b.iter(|| {
            let n = routes
                .iter()
                .filter(|r| graph.route_has_overflow(r))
                .count();
            black_box(n)
        });
    });
    group.bench_function("dirty_filtered", |b| {
        b.iter(|| {
            let n = routes
                .iter()
                .filter(|r| graph.route_touches_dirty(r) && graph.route_has_overflow(r))
                .count();
            black_box(n)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_overflow_scan);
criterion_main!(benches);
