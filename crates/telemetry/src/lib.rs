//! Run-trace telemetry for the FastGR pipeline.
//!
//! The paper's entire evaluation (Tables III–VI, Figs. 12–14) is built on
//! per-stage and per-kernel timing breakdowns. This crate is the one
//! observability layer the whole workspace reports into:
//!
//! * [`Stopwatch`] — the workspace's **single clock**. Every crate that
//!   measures wall time uses it; `Instant::now()` anywhere else is
//!   rejected by the `timing-instant` rule of the `fastgr-analysis` lint
//!   pass, so all timing flows through one place.
//! * [`Recorder`] — a lightweight span/counter/event recorder. A
//!   *disabled* recorder (the default everywhere) is a no-op sink: every
//!   record call is a single branch on an `Option`, performs no
//!   allocation and takes no lock, so instrumented code costs nothing
//!   when telemetry is off.
//! * [`RunTrace`] — the aggregated, structured result of one routing run:
//!   stage [`Span`]s, deterministic [`Counter`]s, per-kernel
//!   [`KernelEvent`]s and worker-thread [`TimelineEvent`]s. Exportable as
//!   a summary table ([`RunTrace::summary_table`]) and as Chrome
//!   `trace_event` JSON ([`RunTrace::to_chrome_trace_json`]) loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! * [`json`] — a minimal JSON parser used to validate emitted traces
//!   (CI smoke tests, golden tests) without external dependencies.
//!
//! # Determinism
//!
//! Counter *values* are deterministic: for a fixed configuration they are
//! byte-identical across runs and across worker counts (only event
//! *timestamps* vary). [`RunTrace::deterministic_signature`] renders
//! exactly the deterministic portion of a trace, which the test suite
//! asserts against a golden file.
//!
//! # Example
//!
//! ```
//! use fastgr_telemetry::Recorder;
//!
//! let recorder = Recorder::enabled();
//! {
//!     let _span = recorder.span("planning", "stage");
//!     recorder.accumulate("nets.planned", 64.0);
//! }
//! let trace = recorder.take_trace();
//! assert_eq!(trace.counter("nets.planned"), Some(64.0));
//! assert_eq!(trace.spans().len(), 1);
//! let json = trace.to_chrome_trace_json();
//! assert!(fastgr_telemetry::json::parse(&json).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod clock;
pub mod json;
mod recorder;
mod trace;

pub use clock::Stopwatch;
pub use recorder::{Recorder, SpanGuard};
pub use trace::{
    Counter, CounterSample, KernelEvent, RunTrace, Span, TimelineEvent, TRACK_DEVICE, TRACK_MAIN,
    TRACK_WORKER_BASE,
};
