//! Minimal std-only substitute for the subset of `crossbeam` that fastgr
//! uses: the MPMC unbounded channel (`crossbeam::channel`).
//!
//! The build container has no network access to crates.io, so the real
//! crossbeam cannot be fetched. This shim re-implements the exact API
//! surface the workspace consumes — `unbounded()`, cloneable `Sender` /
//! `Receiver`, blocking `recv` that errors once every sender is gone — on
//! top of `std::sync` primitives. Semantics match crossbeam's for this
//! subset; throughput is lower (a single mutex-guarded deque instead of a
//! lock-free queue), which only affects scheduler micro-benchmarks, never
//! results.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone.
    ///
    /// This shim never reports it (receivers share the queue's lifetime),
    /// but the type exists so call sites can name it.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Appends a message to the queue, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake every blocked receiver so it can
                // observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors when the channel is empty
        /// and no sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive used by drain loops in tests.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn mpmc_across_threads_delivers_everything() {
            let (tx, rx) = unbounded::<usize>();
            let n = 1000;
            std::thread::scope(|scope| {
                for chunk in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..n / 4 {
                            tx.send(chunk * (n / 4) + i).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut got = Vec::new();
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            while let Ok(v) = rx.recv() {
                                local.push(v);
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    got.extend(h.join().unwrap());
                }
                got.sort_unstable();
                assert_eq!(got, (0..n).collect::<Vec<_>>());
            });
        }
    }
}
