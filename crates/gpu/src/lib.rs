//! Software-simulated CUDA-like device for FastGR's pattern-routing kernels.
//!
//! The paper runs its pattern-routing computation-graph flows (Figs. 7–10)
//! on an NVIDIA RTX 3090. No GPU is available in this reproduction, so this
//! crate *simulates* the device (substitution documented in `DESIGN.md` §4):
//!
//! * the **kernels are real** — [`flow`] implements the min-plus
//!   vector/matrix operations the paper reformulates pattern routing into,
//!   and the routing solutions they produce are the ones used downstream;
//! * only **timing** is modelled — [`Device::launch`] executes each block on
//!   a host worker pool ([`pool::HostPool`]; blocks of one kernel are
//!   independent, so they parallelise across real CPU threads) and charges
//!   simulated time from a calibrated, design-independent performance model
//!   ([`DeviceConfig`]): one kernel costs
//!   `launch_overhead + max(max_block_time, sum_block_time / sm_count)`,
//!   where a block running a flow of depth `d` with `t` homogeneous threads
//!   costs `d * ceil(t / threads_per_block) * stage_time`. Per-block times
//!   are reduced in index order, so the modelled time is byte-identical for
//!   every worker count; the measured wall-clock time is reported
//!   separately as `host_seconds`;
//! * the paper's zero-copy host-mapped transfers are modelled by
//!   [`ZeroCopyBuffer`], which counts mapped bytes at zero marginal time —
//!   matching the paper's observation that zero-copy keeps transfer time
//!   under a second.
//!
//! # Example
//!
//! ```
//! use fastgr_gpu::{BlockProfile, Device, DeviceConfig};
//!
//! let mut device = Device::new(DeviceConfig::rtx3090_like());
//! // Launch a kernel with 1000 blocks, each an 81-thread depth-2 flow.
//! let stats = device.launch("l-shape", 1000, |_block| BlockProfile::new(81, 2));
//! assert_eq!(stats.blocks, 1000);
//! assert!(stats.modeled_seconds > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod device;
pub mod flow;
pub mod pool;

pub use buffer::ZeroCopyBuffer;
pub use device::{BlockProfile, Device, DeviceConfig, DeviceStats, KernelStats};
pub use pool::{BlockEventTap, HostPool, NoTap, SyncSlots};
