//! Property-based tests of the grid-graph invariants.

#![cfg(test)]

use proptest::prelude::*;

use crate::{CostParams, GridGraph, Point2, Route, Segment, Via};

fn graph(w: u16, h: u16, layers: u8, cap: f64) -> GridGraph {
    let mut g = GridGraph::new(w, h, layers, CostParams::default()).expect("valid dims");
    g.fill_capacity(cap);
    g
}

/// Strategy: a random valid route on a 16x16, 5-layer grid.
fn arb_route() -> impl Strategy<Value = Route> {
    let seg = (1u8..5, 0u16..16, 0u16..16, 0u16..16).prop_map(|(layer, a, fixed, b)| {
        // Respect the layer's preferred direction.
        if layer % 2 == 1 {
            Segment::new(layer, Point2::new(a, fixed), Point2::new(b, fixed))
        } else {
            Segment::new(layer, Point2::new(fixed, a), Point2::new(fixed, b))
        }
    });
    let via = (0u16..16, 0u16..16, 0u8..5, 0u8..5)
        .prop_map(|(x, y, l1, l2)| Via::new(Point2::new(x, y), l1, l2));
    (
        proptest::collection::vec(seg, 0..6),
        proptest::collection::vec(via, 0..4),
    )
        .prop_map(|(segs, vias)| {
            let mut r = Route::new();
            for s in segs {
                r.push_segment(s);
            }
            for v in vias {
                r.push_via(v);
            }
            r
        })
}

proptest! {
    /// Committing and uncommitting any set of valid routes restores the
    /// pristine demand state exactly (exact f64 arithmetic on small ints).
    #[test]
    fn commit_uncommit_round_trips(routes in proptest::collection::vec(arb_route(), 0..8)) {
        let mut g = graph(16, 16, 5, 4.0);
        let pristine = g.report();
        for r in &routes {
            g.commit(r).expect("valid route");
        }
        for r in routes.iter().rev() {
            g.uncommit(r).expect("valid route");
        }
        let after = g.report();
        prop_assert_eq!(pristine, after);
    }

    /// Demand totals equal the summed geometry of committed routes.
    #[test]
    fn demand_equals_geometry(routes in proptest::collection::vec(arb_route(), 0..8)) {
        let mut g = graph(16, 16, 5, 4.0);
        for r in &routes {
            g.commit(r).expect("valid route");
        }
        let report = g.report();
        let wl: u64 = routes.iter().map(Route::wirelength).sum();
        let vias: u64 = routes.iter().map(Route::via_count).sum();
        prop_assert_eq!(report.total_wire_demand, wl as f64);
        prop_assert_eq!(report.total_via_demand, vias as f64);
    }

    /// Straight-run costs are additive along a split point.
    #[test]
    fn run_cost_is_additive(x0 in 0u16..14, len1 in 1u16..8, len2 in 1u16..8, y in 0u16..16) {
        let g = graph(32, 16, 5, 4.0);
        let a = Point2::new(x0, y);
        let m = Point2::new((x0 + len1).min(31), y);
        let b = Point2::new((x0 + len1 + len2).min(31), y);
        let whole = g.wire_run_cost(1, a, b);
        let parts = g.wire_run_cost(1, a, m) + g.wire_run_cost(1, m, b);
        prop_assert!((whole - parts).abs() < 1e-9);
    }

    /// Via stack costs are additive across a middle layer.
    #[test]
    fn via_stack_cost_is_additive(x in 0u16..16, y in 0u16..16, l1 in 0u8..5, l2 in 0u8..5) {
        let g = graph(16, 16, 5, 4.0);
        let p = Point2::new(x, y);
        let (lo, hi) = (l1.min(l2), l1.max(l2));
        for mid in lo..=hi {
            let whole = g.via_stack_cost(p, lo, hi);
            let parts = g.via_stack_cost(p, lo, mid) + g.via_stack_cost(p, mid, hi);
            prop_assert!((whole - parts).abs() < 1e-9);
        }
    }

    /// The congestion heat map never reports utilisation on untouched
    /// cells, and reflects every overflowing edge.
    #[test]
    fn heatmap_bounds(routes in proptest::collection::vec(arb_route(), 0..6)) {
        let mut g = graph(16, 16, 5, 2.0);
        for r in &routes {
            g.commit(r).expect("valid route");
        }
        let heat = g.congestion_heatmap();
        prop_assert!(heat.iter().all(|&u| u >= 0.0));
        let report = g.report();
        let peak = heat.iter().copied().fold(0.0, f64::max);
        // Peak utilisation from the heat map agrees with the report.
        prop_assert!((peak - report.max_utilization).abs() < 1e-9);
    }

    /// `route_cost` is finite for every valid route and increases (weakly)
    /// as unrelated demand accumulates on its edges.
    #[test]
    fn cost_monotone_in_demand(route in arb_route()) {
        let mut g = graph(16, 16, 5, 4.0);
        let before = g.route_cost(&route);
        prop_assert!(before.is_finite());
        g.commit(&route).expect("valid route");
        let after = g.route_cost(&route);
        prop_assert!(after + 1e-12 >= before);
    }
}
