//! Metal layer model: preferred routing directions per layer.

use std::fmt;

/// Preferred routing direction of a metal layer.
///
/// Modern processes route each metal layer in a single preferred direction;
/// the grid graph only has wire edges *along* that direction (Fig. 1 of the
/// paper). Direction alternates layer by layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Wires run along the x axis.
    Horizontal,
    /// Wires run along the y axis.
    Vertical,
}

impl Direction {
    /// The perpendicular direction.
    ///
    /// # Example
    ///
    /// ```
    /// use fastgr_grid::Direction;
    /// assert_eq!(Direction::Horizontal.orthogonal(), Direction::Vertical);
    /// ```
    pub const fn orthogonal(self) -> Self {
        match self {
            Direction::Horizontal => Direction::Vertical,
            Direction::Vertical => Direction::Horizontal,
        }
    }

    /// Conventional direction of metal layer `layer` when layer 1 is
    /// horizontal and directions alternate upwards (layer 0, the pin layer,
    /// is vertical by this convention but carries no routing capacity).
    pub const fn of_layer(layer: u8) -> Self {
        if layer % 2 == 1 {
            Direction::Horizontal
        } else {
            Direction::Vertical
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Horizontal => "horizontal",
            Direction::Vertical => "vertical",
        })
    }
}

/// Static description of one metal layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerInfo {
    /// Layer index, 0-based from the substrate up.
    pub index: u8,
    /// Preferred routing direction.
    pub direction: Direction,
    /// Default number of routing tracks through one G-cell edge.
    pub default_capacity: f64,
}

impl LayerInfo {
    /// Creates a layer with the conventional alternating direction and the
    /// given default capacity.
    pub const fn new(index: u8, default_capacity: f64) -> Self {
        Self {
            index,
            direction: Direction::of_layer(index),
            default_capacity,
        }
    }
}

impl fmt::Display for LayerInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "M{} ({}, cap {})",
            self.index, self.direction, self.default_capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_alternate_from_horizontal_m1() {
        assert_eq!(Direction::of_layer(1), Direction::Horizontal);
        assert_eq!(Direction::of_layer(2), Direction::Vertical);
        assert_eq!(Direction::of_layer(3), Direction::Horizontal);
        assert_eq!(Direction::of_layer(4), Direction::Vertical);
    }

    #[test]
    fn orthogonal_is_involutive() {
        for d in [Direction::Horizontal, Direction::Vertical] {
            assert_eq!(d.orthogonal().orthogonal(), d);
            assert_ne!(d.orthogonal(), d);
        }
    }

    #[test]
    fn layer_info_uses_conventional_direction() {
        let m3 = LayerInfo::new(3, 2.5);
        assert_eq!(m3.direction, Direction::Horizontal);
        assert_eq!(m3.default_capacity, 2.5);
        assert_eq!(m3.to_string(), "M3 (horizontal, cap 2.5)");
    }
}
