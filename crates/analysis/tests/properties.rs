//! Property, differential and mutation tests tying the analysis layer to
//! the real scheduler over the synthetic design suite.
//!
//! The acceptance bar (ISSUE, PR 2): the static validator and the race
//! checker pass clean on every `Schedule::build` output over design-suite
//! nets, and each deliberately corrupted schedule is rejected.

use fastgr_analysis::{
    validate_batches, validate_schedule, validate_view, RaceChecker, ScheduleView,
};
use fastgr_design::{Design, Generator, GeneratorParams};
use fastgr_grid::{Point2, Rect};
use fastgr_taskgraph::{extract_batches, ConflictGraph, ExecutionHooks, Executor, Schedule};
use proptest::prelude::*;

/// Conflict graph + identity net order for a design, as the pattern stage
/// builds them (net bounding boxes, sorted net order).
fn conflicts_of(design: &Design) -> (ConflictGraph, Vec<u32>) {
    let bboxes: Vec<Rect> = design.nets().iter().map(|n| n.bounding_box()).collect();
    let order: Vec<u32> = (0..bboxes.len() as u32).collect();
    (ConflictGraph::from_bounding_boxes(&bboxes), order)
}

/// The design-suite nets the mutation tests run over: a few tiny seeds
/// plus one mid-size congested design.
fn design_suite() -> Vec<Design> {
    let mut designs: Vec<Design> = [1u64, 7, 42].iter().map(|&s| Generator::tiny(s).generate()).collect();
    designs.push(
        Generator::new(GeneratorParams {
            name: "props-mid".to_owned(),
            width: 32,
            height: 32,
            layers: 5,
            num_nets: 200,
            capacity: 4.0,
            hotspots: 3,
            hotspot_affinity: 0.4,
            blockages: 2,
            seed: 9,
        })
        .generate(),
    );
    designs
}

#[test]
fn every_design_suite_schedule_validates_clean() {
    for design in design_suite() {
        let (conflicts, order) = conflicts_of(&design);
        let schedule = Schedule::build(&order, &conflicts);
        let report = validate_schedule(&schedule, &conflicts);
        assert!(report.is_clean(), "{}: {report}", design.name());
        assert_eq!(report.tasks_checked, design.nets().len());

        let batches = extract_batches(&order, &conflicts);
        let report = validate_batches(&batches, &conflicts);
        assert!(report.is_clean(), "{}: {report}", design.name());
    }
}

#[test]
fn mutation_reversed_conflict_edge_is_always_rejected() {
    for design in design_suite() {
        let (conflicts, order) = conflicts_of(&design);
        let schedule = Schedule::build(&order, &conflicts);
        let Some((a, b)) = schedule.edges().next() else {
            panic!("{}: design suite nets must conflict somewhere", design.name());
        };
        let mut view = ScheduleView::from_schedule(&schedule);
        assert!(view.reverse_edge(a, b));
        let report = validate_view(&view, &conflicts);
        assert!(
            !report.is_clean(),
            "{}: reversed edge {a} -> {b} not caught",
            design.name()
        );
    }
}

#[test]
fn mutation_merged_conflicting_batches_are_always_rejected() {
    for design in design_suite() {
        let (conflicts, order) = conflicts_of(&design);
        let mut batches = extract_batches(&order, &conflicts);
        assert!(batches.len() >= 2, "{}: needs two batches", design.name());
        // The root batch is a *maximal* independent set: every task outside
        // it conflicts with at least one member, so merging any later batch
        // into it must trip the independence check.
        let merged = batches.remove(1);
        batches[0].extend(merged);
        let report = validate_batches(&batches, &conflicts);
        assert!(
            !report.is_clean(),
            "{}: merged conflicting batch not caught",
            design.name()
        );
        assert!(report.diagnostics.iter().any(|d| d.rule == "batch-conflict"));
    }
}

#[test]
fn executor_runs_over_design_suite_are_race_free() {
    for design in design_suite() {
        let (conflicts, order) = conflicts_of(&design);
        let schedule = Schedule::build(&order, &conflicts);
        for workers in [1, 4] {
            let checker = RaceChecker::new(schedule.task_count());
            Executor::new(workers).run_with_hooks(&schedule, |_t| {}, &checker);
            let report = checker.report(&conflicts);
            assert!(
                report.is_clean(),
                "{} workers={workers}: {report}",
                design.name()
            );
        }
    }
}

#[test]
fn race_checker_flags_forced_unordered_conflicting_pair() {
    // Acceptance mutation: take a real conflicting pair from a design and
    // replay an execution where the two tasks ran on different workers
    // with no handoff — the checker must flag exactly that pair.
    let design = Generator::tiny(7).generate();
    let (conflicts, _) = conflicts_of(&design);
    let (a, b) = (0..conflicts.task_count() as u32)
        .find_map(|t| conflicts.neighbors(t).first().map(|&n| (t.min(n), t.max(n))))
        .expect("tiny designs have conflicting nets");
    let checker = RaceChecker::new(conflicts.task_count());
    // Every other task runs ordered on worker 0; a and b race on 1 and 2.
    for t in 0..conflicts.task_count() as u32 {
        if t == a || t == b {
            continue;
        }
        checker.on_task_start(t, 0);
        checker.on_task_finish(t, 0);
    }
    checker.on_task_start(a, 1);
    checker.on_task_finish(a, 1);
    checker.on_task_start(b, 2);
    checker.on_task_finish(b, 2);
    let report = checker.report(&conflicts);
    let raced: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "task-race")
        .collect();
    assert!(
        raced.iter().any(|d| d.tasks == Some((a, b))),
        "expected ({a}, {b}) flagged: {report}"
    );
}

proptest! {
    /// Random rectangle sets: batches are always independent sets covering
    /// every task once, and the built schedule always validates clean.
    #[test]
    fn random_rectangles_always_validate(
        raw in proptest::collection::vec((0u16..30, 0u16..30, 0u16..12, 0u16..12), 0..60)
    ) {
        let boxes: Vec<Rect> = raw
            .iter()
            .map(|&(x, y, w, h)| Rect::new(Point2::new(x, y), Point2::new(x + w, y + h)))
            .collect();
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let order: Vec<u32> = (0..boxes.len() as u32).collect();

        let batches = extract_batches(&order, &conflicts);
        prop_assert!(validate_batches(&batches, &conflicts).is_clean());

        let schedule = Schedule::build(&order, &conflicts);
        let report = validate_schedule(&schedule, &conflicts);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// Differential: the bucketised conflict graph equals the naive
    /// all-pairs reference on random inputs.
    #[test]
    fn bucketised_conflict_graph_matches_naive(
        raw in proptest::collection::vec((0u16..40, 0u16..40, 0u16..15, 0u16..15), 0..50)
    ) {
        let boxes: Vec<Rect> = raw
            .iter()
            .map(|&(x, y, w, h)| Rect::new(Point2::new(x, y), Point2::new(x + w, y + h)))
            .collect();
        prop_assert_eq!(
            ConflictGraph::from_bounding_boxes(&boxes),
            ConflictGraph::from_bounding_boxes_naive(&boxes)
        );
    }

    /// Random single-edge reversals over random schedules are always
    /// rejected by the validator.
    #[test]
    fn random_edge_reversal_is_always_rejected(
        raw in proptest::collection::vec((0u16..20, 0u16..20, 2u16..10, 2u16..10), 2..30),
        pick in 0usize..1000
    ) {
        let boxes: Vec<Rect> = raw
            .iter()
            .map(|&(x, y, w, h)| Rect::new(Point2::new(x, y), Point2::new(x + w, y + h)))
            .collect();
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let order: Vec<u32> = (0..boxes.len() as u32).collect();
        let schedule = Schedule::build(&order, &conflicts);
        let edges: Vec<(u32, u32)> = schedule.edges().collect();
        if edges.is_empty() {
            return Ok(()); // nothing to mutate
        }
        let (a, b) = edges[pick % edges.len()];
        let mut view = ScheduleView::from_schedule(&schedule);
        prop_assert!(view.reverse_edge(a, b));
        prop_assert!(!validate_view(&view, &conflicts).is_clean());
    }
}
