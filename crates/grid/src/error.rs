//! Error type for grid-graph construction and mutation.

use std::error::Error;
use std::fmt;

use crate::{Point2, Segment};

/// Errors reported by [`GridGraph`](crate::GridGraph) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GridError {
    /// The requested grid dimensions are unusable (zero-sized or too few
    /// layers to route on).
    InvalidDimensions {
        /// Requested width in G-cells.
        width: u16,
        /// Requested height in G-cells.
        height: u16,
        /// Requested number of metal layers.
        layers: u8,
    },
    /// A coordinate lies outside the grid.
    OutOfBounds {
        /// The offending 2-D coordinate.
        point: Point2,
        /// The offending layer (if the access was 3-D).
        layer: Option<u8>,
    },
    /// A wire segment does not run along its layer's preferred direction.
    WrongDirection {
        /// The offending segment.
        segment: Segment,
    },
    /// A via spans an empty or inverted layer range.
    InvalidViaSpan {
        /// Lower layer of the via.
        lo: u8,
        /// Upper layer of the via.
        hi: u8,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidDimensions {
                width,
                height,
                layers,
            } => write!(
                f,
                "invalid grid dimensions {width}x{height} with {layers} layers \
                 (need width, height >= 2 and layers >= 2)"
            ),
            GridError::OutOfBounds {
                point,
                layer: Some(l),
            } => {
                write!(f, "coordinate {point} on layer M{l} is outside the grid")
            }
            GridError::OutOfBounds { point, layer: None } => {
                write!(f, "coordinate {point} is outside the grid")
            }
            GridError::WrongDirection { segment } => write!(
                f,
                "segment {} -> {} on M{} does not follow the preferred direction",
                segment.from, segment.to, segment.layer
            ),
            GridError::InvalidViaSpan { lo, hi } => {
                write!(f, "via span M{lo}..M{hi} is empty or inverted")
            }
        }
    }
}

impl Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_context() {
        let e = GridError::OutOfBounds {
            point: Point2::new(99, 3),
            layer: Some(2),
        };
        assert!(e.to_string().contains("(99, 3)"));
        assert!(e.to_string().contains("M2"));

        let e = GridError::InvalidDimensions {
            width: 0,
            height: 5,
            layers: 1,
        };
        assert!(e.to_string().contains("0x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GridError>();
    }
}
