//! Micro-benchmarks of the task graph scheduler pipeline: conflict graph
//! construction, Algorithm 1 batch extraction, schedule building, and the
//! executor's dependency-counting overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fastgr_design::SplitMix64;
use fastgr_grid::{Point2, Rect};
use fastgr_taskgraph::{extract_batches, ConflictGraph, Executor, Schedule};

fn random_boxes(n: usize, side: u16, extent: u16, seed: u64) -> Vec<Rect> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let x = rng.next_below((side - extent) as u64) as u16;
            let y = rng.next_below((side - extent) as u64) as u16;
            let w = 1 + rng.next_below(extent as u64) as u16;
            let h = 1 + rng.next_below(extent as u64) as u16;
            Rect::new(Point2::new(x, y), Point2::new(x + w, y + h))
        })
        .collect()
}

fn bench_conflict_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_graph");
    for n in [500usize, 2000, 8000] {
        let boxes = random_boxes(n, 140, 6, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ConflictGraph::from_bounding_boxes(&boxes)));
        });
    }
    group.finish();
}

fn bench_batch_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_extraction");
    for n in [500usize, 2000, 8000] {
        let boxes = random_boxes(n, 140, 6, 42);
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let order: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(extract_batches(&order, &conflicts)));
        });
    }
    group.finish();
}

fn bench_schedule_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_build");
    for n in [500usize, 2000, 8000] {
        let boxes = random_boxes(n, 140, 6, 42);
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let order: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Schedule::build(&order, &conflicts)));
        });
    }
    group.finish();
}

fn bench_executor_overhead(c: &mut Criterion) {
    // Per-task scheduling overhead with trivial task bodies.
    let boxes = random_boxes(2000, 140, 6, 42);
    let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
    let order: Vec<u32> = (0..2000).collect();
    let schedule = Schedule::build(&order, &conflicts);
    let mut group = c.benchmark_group("executor");
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("noop_tasks", workers),
            &workers,
            |b, &w| {
                let executor = Executor::new(w);
                b.iter(|| {
                    executor.run(&schedule, |t| {
                        black_box(t);
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_conflict_graph,
    bench_batch_extraction,
    bench_schedule_build,
    bench_executor_overhead
);
criterion_main!(benches);
