//! 2-D projected global routing with layer assignment — the classic
//! FastRoute/NTHU-Route-style alternative to FastGR's direct 3-D flow.
//!
//! Section II-A of the paper contrasts the two families: "Many 2-D global
//! routers set the via capacity as infinite to ignore the cost of vias,
//! while some 3-D global routers consider the via capacity, e.g., CUGR."
//! This crate implements the 2-D family so the repository can *measure*
//! that trade-off (see the `reproduce ablations` harness):
//!
//! 1. [`Projection`] — collapse the 3-D grid into one 2-D grid per routing
//!    direction (capacities summed over same-direction layers);
//! 2. [`TwoDRouter`] — congestion-aware 2-D L-shape pattern routing over
//!    the projection, producing per-net 2-D segment plans;
//! 3. [`LayerAssigner`] — per-net dynamic-programming layer assignment of
//!    the fixed 2-D geometry onto the real 3-D grid, inserting via stacks
//!    at bends, junctions and pins.
//!
//! The output is ordinary [`Route`] geometry, directly comparable (same
//! grid, same metrics) with FastGR's 3-D pattern routing.
//!
//! # Example
//!
//! ```
//! use fastgr_assign::TwoDFlow;
//! use fastgr_design::Generator;
//! use fastgr_grid::CostParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = Generator::tiny(3).generate();
//! let mut graph = design.build_graph(CostParams::default())?;
//! let routes = TwoDFlow::new().run(&design, &mut graph)?;
//! assert_eq!(routes.len(), design.nets().len());
//! assert!(routes.iter().all(|r| r.is_connected()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assigner;
mod projection;
mod router2d;

pub use assigner::LayerAssigner;
pub use projection::Projection;
pub use router2d::{Plan2D, Segment2D, TwoDRouter};

use fastgr_design::Design;
use fastgr_grid::{GridError, GridGraph, Route};

/// The complete 2-D + layer-assignment flow as one call.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoDFlow {
    _private: (),
}

impl TwoDFlow {
    /// Creates the flow with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes `design`: 2-D pattern routing over the projection of `graph`,
    /// then layer assignment onto `graph` (demand committed).
    ///
    /// # Errors
    ///
    /// Propagates [`GridError`] on commit failures (internal invariant —
    /// assigned routes are always valid).
    pub fn run(&self, design: &Design, graph: &mut GridGraph) -> Result<Vec<Route>, GridError> {
        let mut projection = Projection::from_graph(graph);
        let plans = TwoDRouter::new().route_all(design, &mut projection);
        LayerAssigner::new().assign_all(design, graph, &plans)
    }
}
