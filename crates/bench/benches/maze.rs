//! Micro-benchmarks of 3-D maze routing: A* vs Dijkstra, growing spans,
//! and the effect of congestion on search cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fastgr_grid::{CostParams, GridGraph, Point2, Route, Segment};
use fastgr_maze::{MazeConfig, MazeRouter};

fn graph(side: u16, layers: u8) -> GridGraph {
    let mut g = GridGraph::new(side, side, layers, CostParams::default()).expect("valid");
    g.fill_capacity(8.0);
    g
}

fn bench_span(c: &mut Criterion) {
    let g = graph(128, 6);
    let mut group = c.benchmark_group("maze_span");
    for span in [8u16, 32, 96] {
        let pins = [Point2::new(4, 4), Point2::new(4 + span, 4 + span / 2)];
        group.bench_with_input(BenchmarkId::new("astar", span), &span, |b, _| {
            let r = MazeRouter::new(MazeConfig {
                astar: true,
                window_margin: 8,
            });
            b.iter(|| black_box(r.route(&g, &pins).expect("routable")));
        });
        group.bench_with_input(BenchmarkId::new("dijkstra", span), &span, |b, _| {
            let r = MazeRouter::new(MazeConfig {
                astar: false,
                window_margin: 8,
            });
            b.iter(|| black_box(r.route(&g, &pins).expect("routable")));
        });
    }
    group.finish();
}

fn bench_congested(c: &mut Criterion) {
    // Congestion forces detours: the search expands more vertices.
    let mut g = graph(64, 6);
    let mut blocker = Route::new();
    for y in (8..56).step_by(4) {
        blocker.push_segment(Segment::new(1, Point2::new(8, y), Point2::new(56, y)));
        blocker.push_segment(Segment::new(3, Point2::new(8, y), Point2::new(56, y)));
    }
    for _ in 0..9 {
        g.commit(&blocker).expect("valid");
    }
    let pins = [Point2::new(2, 30), Point2::new(60, 34)];
    let mut group = c.benchmark_group("maze_congestion");
    group.bench_function("congested_corridors", |b| {
        let r = MazeRouter::default();
        b.iter(|| black_box(r.route(&g, &pins).expect("routable")));
    });
    group.finish();
}

fn bench_multi_pin(c: &mut Criterion) {
    let g = graph(96, 6);
    let mut group = c.benchmark_group("maze_multi_pin");
    for pins in [2usize, 5, 10] {
        let positions: Vec<Point2> = (0..pins)
            .map(|i| {
                let t = i as u16;
                Point2::new((t * 41) % 90 + 2, (t * 67) % 90 + 2)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(pins), &pins, |b, _| {
            let r = MazeRouter::default();
            b.iter(|| black_box(r.route(&g, &positions).expect("routable")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_span, bench_congested, bench_multi_pin);
criterion_main!(benches);
