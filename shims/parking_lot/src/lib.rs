//! Minimal std-only substitute for the subset of `parking_lot` that fastgr
//! uses: non-poisoning `Mutex` and `RwLock` whose lock methods return
//! guards directly (no `Result`).
//!
//! The build container has no network access to crates.io, so the real
//! parking_lot cannot be fetched. This shim wraps `std::sync` primitives
//! and swallows poisoning (a panicked holder's data is still returned),
//! which matches parking_lot's no-poisoning semantics for every use in
//! this workspace.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let (a, b) = (l.read(), l.read());
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.into_inner().len(), 4);
    }
}
