//! The span/counter/event recorder handed through the pipeline.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::clock::Stopwatch;
use crate::trace::{CounterSample, KernelEvent, RunTrace, Span, TimelineEvent, TRACK_MAIN};

/// Shared recorder state behind an enabled [`Recorder`].
#[derive(Debug)]
struct Inner {
    epoch: Stopwatch,
    spans: Mutex<Vec<Span>>,
    events: Mutex<Vec<TimelineEvent>>,
    counters: Mutex<BTreeMap<String, f64>>,
    counter_samples: Mutex<Vec<CounterSample>>,
    kernels: Mutex<Vec<KernelEvent>>,
}

impl Inner {
    fn new() -> Self {
        Self {
            epoch: Stopwatch::start(),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            counter_samples: Mutex::new(Vec::new()),
            kernels: Mutex::new(Vec::new()),
        }
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        // A poisoned telemetry mutex means a worker panicked mid-record;
        // the data is still structurally sound (Vec pushes are atomic
        // w.r.t. the lock), so keep collecting rather than double-panic.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A cheap, cloneable handle the pipeline records into.
///
/// A recorder is either *enabled* (shares an [`Arc`] of collection state)
/// or *disabled* (the default): a no-op sink where every record call is a
/// single branch on an `Option` — no allocation, no lock, no formatting.
/// Clones share the same underlying trace.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that collects into a shared trace. The epoch (time
    /// zero of all recorded timestamps) is the moment of this call.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner::new())),
        }
    }

    /// The no-op sink: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this recorder collects anything. Use to skip work whose
    /// only purpose is producing telemetry input (e.g. formatting names).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a named span on the main track; the span is recorded when
    /// the returned guard drops.
    #[must_use = "the span closes (and records) when the guard drops"]
    pub fn span(&self, name: &str, cat: &'static str) -> SpanGuard {
        self.span_on(name, cat, TRACK_MAIN)
    }

    /// Opens a span whose name carries an index (e.g. `rrr.iter3`). The
    /// name is only formatted when the recorder is enabled.
    #[must_use = "the span closes (and records) when the guard drops"]
    pub fn span_indexed(&self, prefix: &str, index: usize, cat: &'static str) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard::noop();
        }
        self.span_on(&format!("{prefix}{index}"), cat, TRACK_MAIN)
    }

    fn span_on(&self, name: &str, cat: &'static str, track: u32) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard {
                inner: Some(SpanGuardInner {
                    recorder: Arc::clone(inner),
                    name: name.to_owned(),
                    cat,
                    track,
                    start_seconds: inner.epoch.elapsed_seconds(),
                }),
            },
            None => SpanGuard::noop(),
        }
    }

    /// Records a begin marker on a worker track (pair with [`Recorder::end`]).
    pub fn begin(&self, name: &str, cat: &'static str, track: u32) {
        self.mark(name, cat, track, true);
    }

    /// Records the end marker matching a prior [`Recorder::begin`] on the
    /// same track.
    pub fn end(&self, name: &str, cat: &'static str, track: u32) {
        self.mark(name, cat, track, false);
    }

    fn mark(&self, name: &str, cat: &'static str, track: u32, begin: bool) {
        if let Some(inner) = &self.inner {
            let t_seconds = inner.epoch.elapsed_seconds();
            Inner::lock(&inner.events).push(TimelineEvent {
                name: name.to_owned(),
                cat,
                begin,
                t_seconds,
                track,
            });
        }
    }

    /// Adds `delta` to a named counter (created at zero).
    pub fn accumulate(&self, name: &str, delta: f64) {
        if let Some(inner) = &self.inner {
            *Inner::lock(&inner.counters).entry(name.to_owned()).or_insert(0.0) += delta;
        }
    }

    /// Records a timestamped sample of a counter (a Chrome `"C"` event),
    /// without touching the accumulated value.
    pub fn counter_sample(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let t_seconds = inner.epoch.elapsed_seconds();
            Inner::lock(&inner.counter_samples).push(CounterSample {
                name: name.to_owned(),
                t_seconds,
                value,
            });
        }
    }

    /// Records one kernel launch on the simulated device. `start_offset`
    /// is how long ago (in seconds) the launch began.
    pub fn kernel(&self, name: &str, blocks: usize, modeled_seconds: f64, host_seconds: f64) {
        if let Some(inner) = &self.inner {
            let now = inner.epoch.elapsed_seconds();
            Inner::lock(&inner.kernels).push(KernelEvent {
                name: name.to_owned(),
                blocks,
                modeled_seconds,
                host_seconds,
                start_seconds: (now - host_seconds).max(0.0),
            });
        }
    }

    /// Drains everything recorded so far into a [`RunTrace`]. A disabled
    /// recorder yields the empty trace. Other clones of this recorder
    /// keep working but start from empty collections.
    pub fn take_trace(&self) -> RunTrace {
        match &self.inner {
            Some(inner) => RunTrace::from_parts(
                std::mem::take(&mut Inner::lock(&inner.spans)),
                std::mem::take(&mut Inner::lock(&inner.counters)),
                std::mem::take(&mut Inner::lock(&inner.counter_samples)),
                std::mem::take(&mut Inner::lock(&inner.kernels)),
                std::mem::take(&mut Inner::lock(&inner.events)),
            ),
            None => RunTrace::default(),
        }
    }
}

#[derive(Debug)]
struct SpanGuardInner {
    recorder: Arc<Inner>,
    name: String,
    cat: &'static str,
    track: u32,
    start_seconds: f64,
}

/// RAII guard returned by [`Recorder::span`]; records the completed span
/// when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

impl SpanGuard {
    fn noop() -> Self {
        Self { inner: None }
    }

    /// Closes the span now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            let end = g.recorder.epoch.elapsed_seconds();
            Inner::lock(&g.recorder.spans).push(Span {
                name: g.name.clone(),
                cat: g.cat,
                start_seconds: g.start_seconds,
                duration_seconds: (end - g.start_seconds).max(0.0),
                track: g.track,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_sink() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        {
            let _s = r.span("planning", "stage");
            r.accumulate("nets", 5.0);
            r.counter_sample("nets", 5.0);
            r.kernel("pattern", 8, 1e-4, 1e-3);
            r.begin("block0", "block", 1);
            r.end("block0", "block", 1);
        }
        let trace = r.take_trace();
        assert_eq!(trace, RunTrace::default());
        assert!(!trace.has_timeline());
    }

    #[test]
    fn spans_record_on_drop_in_close_order() {
        let r = Recorder::enabled();
        let outer = r.span("outer", "stage");
        {
            let _inner = r.span("inner", "stage");
        }
        outer.finish();
        let trace = r.take_trace();
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["inner", "outer"]);
        let inner = &trace.spans()[0];
        let outer = &trace.spans()[1];
        assert!(outer.start_seconds <= inner.start_seconds);
        assert!(outer.duration_seconds >= inner.duration_seconds);
    }

    #[test]
    fn accumulate_sums_and_clones_share_state() {
        let r = Recorder::enabled();
        let clone = r.clone();
        r.accumulate("batches", 2.0);
        clone.accumulate("batches", 3.0);
        let trace = r.take_trace();
        assert_eq!(trace.counter("batches"), Some(5.0));
        // Drained: the next take sees an empty trace.
        assert_eq!(clone.take_trace().counter("batches"), None);
    }

    #[test]
    fn kernel_and_marks_are_captured() {
        let r = Recorder::enabled();
        r.kernel("pattern", 16, 2e-4, 1e-3);
        r.begin("task0", "task", 3);
        r.end("task0", "task", 3);
        r.counter_sample("rrr.nets_ripped", 9.0);
        let trace = r.take_trace();
        assert_eq!(trace.kernels().len(), 1);
        assert_eq!(trace.kernels()[0].blocks, 16);
        assert!(trace.kernels()[0].start_seconds >= 0.0);
        assert_eq!(trace.events().len(), 2);
        assert!(trace.events()[0].begin);
        assert!(!trace.events()[1].begin);
        assert_eq!(trace.events()[0].track, 3);
        assert_eq!(trace.counter_samples().len(), 1);
    }

    #[test]
    fn span_indexed_formats_only_when_enabled() {
        let enabled = Recorder::enabled();
        {
            let _s = enabled.span_indexed("rrr.iter", 2, "stage");
        }
        assert_eq!(enabled.take_trace().spans()[0].name, "rrr.iter2");
        let disabled = Recorder::disabled();
        {
            let _s = disabled.span_indexed("rrr.iter", 2, "stage");
        }
        assert!(disabled.take_trace().spans().is_empty());
    }

    #[test]
    fn recording_is_thread_safe() {
        let r = Recorder::enabled();
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        r.begin(&format!("b{i}"), "block", w + 1);
                        r.accumulate("work", 1.0);
                        r.end(&format!("b{i}"), "block", w + 1);
                    }
                });
            }
        });
        let trace = r.take_trace();
        assert_eq!(trace.counter("work"), Some(200.0));
        assert_eq!(trace.events().len(), 400);
    }
}
