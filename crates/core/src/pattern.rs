//! The pattern routing stage driver (paper Sections III-C/D/E/F, Fig. 7).
//!
//! Planning (Steiner trees + net ordering + batch extraction) happens on the
//! host; each conflict-free batch of multi-pin nets then becomes one kernel
//! launch with one block per net. The baseline engine instead routes nets
//! one by one on the CPU, which is what CUGR does.
//!
//! Parallel execution is deterministic by construction: every concurrent
//! phase (Steiner planning, block execution) writes to index-disjoint
//! slots ([`fastgr_gpu::SyncSlots`]) that are read back in index order, so
//! the routed geometry — and the modelled device time — are byte-identical
//! for every worker count.

use std::sync::OnceLock;

use fastgr_design::Design;
use fastgr_gpu::{Device, DeviceConfig, HostPool, SyncSlots};
use fastgr_grid::{CostProber, GridGraph, Rect, Route};
use fastgr_steiner::{RouteTree, SteinerBuilder};
use fastgr_taskgraph::{extract_batches, ConflictGraph};
use fastgr_telemetry::{Recorder, Stopwatch};

use crate::dp::{PatternDp, PatternMode};
use crate::error::RouteError;
use crate::ordering::SortingScheme;

/// How the pattern kernels are executed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PatternEngine {
    /// The GPU-friendly flow kernels on the simulated device: blocks = nets
    /// of one batch; reported PATTERN time is the modelled device time.
    GpuFlow(DeviceConfig),
    /// Sequential net-by-net dynamic programming on the CPU (the CUGR
    /// baseline); reported PATTERN time is measured wall time.
    SequentialCpu,
    /// Batch-parallel dynamic programming on CPU worker threads: the nets
    /// of each conflict-free batch route concurrently through the
    /// Taskflow-substitute executor (the paper's scheduler applied to the
    /// pattern stage without a GPU). Reported PATTERN time is measured
    /// wall time.
    ParallelCpu {
        /// Worker thread count (clamped to at least 1).
        workers: usize,
    },
}

/// Outcome of the pattern routing stage.
#[derive(Debug, Clone)]
pub struct PatternOutcome {
    /// Routed geometry per net id (committed to the grid).
    pub routes: Vec<Route>,
    /// The Steiner trees (reused by examples and by rip-up diagnostics).
    pub trees: Vec<RouteTree>,
    /// Number of conflict-free batches the scheduler produced.
    pub batch_count: usize,
    /// Host seconds spent planning (Steiner trees, sorting, batching).
    pub planning_seconds: f64,
    /// Measured host seconds of the routing work itself.
    pub host_seconds: f64,
    /// Modelled device seconds (GPU engine only).
    pub modeled_gpu_seconds: Option<f64>,
    /// The PATTERN runtime this engine reports: modelled device time for
    /// the GPU engine, measured wall time for the sequential engine.
    pub reported_seconds: f64,
}

/// The pattern routing stage.
///
/// # Example
///
/// ```
/// use fastgr_core::{PatternEngine, PatternMode, PatternStage, SortingScheme};
/// use fastgr_design::Generator;
/// use fastgr_grid::CostParams;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = Generator::tiny(3).generate();
/// let mut graph = design.build_graph(CostParams::default())?;
/// let stage = PatternStage {
///     mode: PatternMode::LShape,
///     engine: PatternEngine::SequentialCpu,
///     sorting: SortingScheme::HpwlAscending,
///     steiner_passes: 4,
///     congestion_aware_planning: false,
///     cost_probing: true,
///     validate: true,
/// };
/// let outcome = stage.run(&design, &mut graph)?;
/// assert_eq!(outcome.routes.len(), design.nets().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PatternStage {
    /// Pattern candidate set (and selection) per two-pin net.
    pub mode: PatternMode,
    /// Execution engine.
    pub engine: PatternEngine,
    /// Internet ordering scheme for batching.
    pub sorting: SortingScheme,
    /// Steiner tree optimisation passes (median Steinerisation + edge
    /// shifting); 0 leaves the raw MST — the edge-shifting ablation.
    pub steiner_passes: usize,
    /// Congestion-aware planning: edge shifting consults a RUDY density
    /// map of the design so trees bend away from predicted hot spots
    /// (CUGR's planning behaviour). Off by default.
    pub congestion_aware_planning: bool,
    /// Prefix-sum cost probing: the kernels read wire-run and via-stack
    /// costs from a [`CostProber`] cache (built once, incrementally
    /// refreshed at every commit boundary from the grid's dirty bitsets)
    /// instead of walking raw congestion per probe. Bit-identical routes
    /// either way — both paths share the Q44.20 quantised cost domain —
    /// so this is purely the O((M+N)²·L²) → O((M+N)·L²) per-net speedup.
    pub cost_probing: bool,
    /// Debug-assert-style soundness checking: when set, the extracted
    /// batches are verified against the conflict graph with the
    /// `fastgr-analysis` validator (every batch an independent set, every
    /// task covered exactly once) and any violation panics with structured
    /// diagnostics. Costs one extra pass over the conflict edges.
    pub validate: bool,
}

/// Density weight converting RUDY units into G-cell-edge cost units.
const RUDY_SHIFT_WEIGHT: f64 = 2.0;

impl PatternStage {
    /// Runs the stage: plans, routes every net, and commits all demand to
    /// `graph`.
    ///
    /// # Errors
    ///
    /// * [`RouteError::TooFewLayers`] if the grid cannot host both routing
    ///   directions;
    /// * [`RouteError::NoFinitePattern`] if a net admits no finite pattern;
    /// * [`RouteError::Grid`] on commit failures (internal invariant).
    pub fn run(
        &self,
        design: &Design,
        graph: &mut GridGraph,
    ) -> Result<PatternOutcome, RouteError> {
        self.run_traced(design, graph, &Recorder::disabled())
    }

    /// [`PatternStage::run`] reporting into a telemetry recorder: one
    /// `planning` and one `pattern` stage span, per-kernel events from the
    /// simulated device (GPU engine), and `pattern.*` counters. With a
    /// disabled recorder this is exactly [`PatternStage::run`].
    pub fn run_traced(
        &self,
        design: &Design,
        graph: &mut GridGraph,
        recorder: &Recorder,
    ) -> Result<PatternOutcome, RouteError> {
        if graph.num_layers() < 3 {
            return Err(RouteError::TooFewLayers {
                layers: graph.num_layers(),
            });
        }

        // Host workers for every index-parallel phase of this run. The
        // sequential engine stays fully serial (it is the CUGR baseline).
        let pool = match self.engine {
            PatternEngine::GpuFlow(cfg) => HostPool::resolved(cfg.host_workers),
            PatternEngine::ParallelCpu { workers } => HostPool::new(workers),
            PatternEngine::SequentialCpu => HostPool::new(1),
        };

        // --- Planning: Steiner trees, ordering, batch extraction. ---
        let plan_span = recorder.span("planning", "stage");
        let plan_start = Stopwatch::start();
        let mut builder = SteinerBuilder::new().with_passes(self.steiner_passes);
        if self.congestion_aware_planning {
            builder = builder.with_density(
                crate::analysis::rudy_map(design),
                design.width(),
                RUDY_SHIFT_WEIGHT,
            );
        }
        let nets = design.nets();
        let trees: Vec<RouteTree> = pool.map(nets.len(), |i| builder.build(&nets[i]));
        let order = self.sorting.sorted_ids(design.nets());
        let bboxes: Vec<Rect> = design.nets().iter().map(|n| n.bounding_box()).collect();
        let conflicts = ConflictGraph::from_bounding_boxes(&bboxes);
        let batches = extract_batches(&order, &conflicts);
        if self.validate {
            fastgr_analysis::validate_batches(&batches, &conflicts)
                .assert_clean("pattern stage batch extraction");
        }
        let planning_seconds = plan_start.elapsed_seconds();
        plan_span.finish();
        recorder.accumulate("pattern.nets", nets.len() as f64);
        recorder.accumulate("pattern.batches", batches.len() as f64);

        // --- Routing. ---
        let route_span = recorder.span("pattern", "stage");
        let route_start = Stopwatch::start();
        let mut routes: Vec<Route> = vec![Route::new(); design.nets().len()];
        let mut modeled_gpu_seconds = None;

        // Prefix-sum cost cache shared by every engine: built once against
        // the pre-routing congestion (rows summed in parallel on the same
        // pool), then incrementally refreshed from the grid's dirty bitsets
        // at each commit boundary — per batch for the batched engines, per
        // net for the sequential baseline, preserving each engine's
        // congestion-snapshot semantics exactly.
        let mut prober = if self.cost_probing {
            graph.clear_dirty();
            Some(CostProber::build_with_pool(graph, &pool))
        } else {
            None
        };

        match self.engine {
            PatternEngine::GpuFlow(device_config) => {
                let mut device = Device::new(device_config);
                device.set_recorder(recorder.clone());
                for batch in &batches {
                    // One block per multi-pin net of the batch; blocks run
                    // concurrently on the device's host pool, each writing
                    // its own index-disjoint slot. Demand commits after the
                    // launch in batch order (the batch is conflict-free, so
                    // order within it is moot).
                    if let Some(p) = prober.as_mut() {
                        p.refresh(graph, &pool);
                    }
                    let slots = SyncSlots::new(batch.len());
                    let failed: OnceLock<u32> = OnceLock::new();
                    {
                        let dp = match prober.as_ref() {
                            Some(p) => PatternDp::with_prober(graph, self.mode, p),
                            None => PatternDp::direct(graph, self.mode),
                        };
                        device.launch("pattern", batch.len(), |b| {
                            let net_id = batch[b];
                            match dp.route_net(&trees[net_id as usize]) {
                                Some(result) => {
                                    slots.set(b, result.route);
                                    result.profile
                                }
                                None => {
                                    let _ = failed.set(net_id);
                                    fastgr_gpu::BlockProfile::new(1, 1)
                                }
                            }
                        });
                    }
                    if let Some(&net) = failed.get() {
                        return Err(RouteError::NoFinitePattern { net });
                    }
                    for (b, slot) in slots.into_vec().into_iter().enumerate() {
                        routes[batch[b] as usize] = slot.expect("routed above");
                    }
                    for &net_id in batch {
                        graph.commit(&routes[net_id as usize])?;
                    }
                }
                recorder.accumulate("pattern.kernel_launches", device.stats().launches as f64);
                modeled_gpu_seconds = Some(device.stats().modeled_seconds);
            }
            PatternEngine::SequentialCpu => {
                // CUGR-style: net by net in sorted order, committing each
                // route before the next net is planned. The cache refresh
                // is incremental — O(rows touched by the previous commit),
                // never a per-net full rebuild.
                for &net_id in &order {
                    if let Some(p) = prober.as_mut() {
                        p.refresh(graph, &pool);
                    }
                    let dp = match prober.as_ref() {
                        Some(p) => PatternDp::with_prober(graph, self.mode, p),
                        None => PatternDp::direct(graph, self.mode),
                    };
                    let result = dp
                        .route_net(&trees[net_id as usize])
                        .ok_or(RouteError::NoFinitePattern { net: net_id })?;
                    routes[net_id as usize] = result.route;
                    graph.commit(&routes[net_id as usize])?;
                }
            }
            PatternEngine::ParallelCpu { workers } => {
                use fastgr_taskgraph::{Executor, Schedule};
                let executor = Executor::new(workers);
                for batch in &batches {
                    // All nets of a batch are mutually conflict-free, so an
                    // edge-free schedule (disjoint unit boxes) lets the
                    // executor run the whole batch in parallel.
                    let ids: Vec<u32> = (0..batch.len() as u32).collect();
                    let disjoint_boxes: Vec<Rect> = (0..batch.len())
                        .map(|i| {
                            let p = fastgr_grid::Point2::new((i % 60000) as u16, 0);
                            Rect::new(p, p)
                        })
                        .collect();
                    let conflicts = ConflictGraph::from_bounding_boxes(&disjoint_boxes);
                    let schedule = Schedule::build(&ids, &conflicts);
                    if let Some(p) = prober.as_mut() {
                        p.refresh(graph, &pool);
                    }
                    let slots = SyncSlots::new(batch.len());
                    let failed: OnceLock<u32> = OnceLock::new();
                    {
                        let dp = match prober.as_ref() {
                            Some(p) => PatternDp::with_prober(graph, self.mode, p),
                            None => PatternDp::direct(graph, self.mode),
                        };
                        executor.run(&schedule, |t| {
                            let net_id = batch[t as usize];
                            match dp.route_net(&trees[net_id as usize]) {
                                Some(result) => {
                                    slots.set(t as usize, result.route);
                                }
                                None => {
                                    let _ = failed.set(net_id);
                                }
                            }
                        });
                    }
                    if let Some(&net) = failed.get() {
                        return Err(RouteError::NoFinitePattern { net });
                    }
                    for (t, slot) in slots.into_vec().into_iter().enumerate() {
                        routes[batch[t] as usize] = slot.expect("routed above");
                        graph.commit(&routes[batch[t] as usize])?;
                    }
                }
            }
        }

        if let Some(p) = &prober {
            recorder.accumulate("pattern.cost_cache_builds", p.builds() as f64);
            recorder.accumulate("pattern.cost_cache_rows_rebuilt", p.rows_rebuilt() as f64);
            recorder.accumulate("pattern.cost_probes", p.probes() as f64);
        }
        let host_seconds = route_start.elapsed_seconds();
        route_span.finish();
        let reported_seconds = modeled_gpu_seconds.unwrap_or(host_seconds);
        Ok(PatternOutcome {
            routes,
            trees,
            batch_count: batches.len(),
            planning_seconds,
            host_seconds,
            modeled_gpu_seconds,
            reported_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::Generator;
    use fastgr_grid::CostParams;

    fn run(engine: PatternEngine, mode: PatternMode) -> (PatternOutcome, GridGraph) {
        run_probing(engine, mode, true)
    }

    fn run_probing(
        engine: PatternEngine,
        mode: PatternMode,
        cost_probing: bool,
    ) -> (PatternOutcome, GridGraph) {
        let design = Generator::tiny(11).generate();
        let mut graph = design.build_graph(CostParams::default()).expect("valid");
        let stage = PatternStage {
            mode,
            engine,
            sorting: SortingScheme::HpwlAscending,
            steiner_passes: 4,
            congestion_aware_planning: false,
            cost_probing,
            validate: true,
        };
        let outcome = stage.run(&design, &mut graph).expect("routable");
        (outcome, graph)
    }

    #[test]
    fn gpu_and_cpu_engines_route_every_net() {
        for engine in [
            PatternEngine::SequentialCpu,
            PatternEngine::GpuFlow(DeviceConfig::tiny()),
        ] {
            let (outcome, graph) = run(engine, PatternMode::LShape);
            assert_eq!(outcome.routes.len(), 64);
            // Multi-G-cell nets have geometry.
            let routed = outcome.routes.iter().filter(|r| !r.is_empty()).count();
            assert!(routed > 32, "only {routed} nets have geometry");
            // All demand is committed.
            assert!(graph.report().total_wire_demand > 0.0);
            assert!(outcome.batch_count >= 1);
        }
    }

    #[test]
    fn gpu_engine_reports_modeled_time() {
        let (outcome, _) = run(
            PatternEngine::GpuFlow(DeviceConfig::rtx3090_like()),
            PatternMode::LShape,
        );
        let modeled = outcome.modeled_gpu_seconds.expect("gpu engine models time");
        assert!(modeled > 0.0);
        assert_eq!(outcome.reported_seconds, modeled);
    }

    #[test]
    fn cpu_engine_reports_wall_time() {
        let (outcome, _) = run(PatternEngine::SequentialCpu, PatternMode::LShape);
        assert!(outcome.modeled_gpu_seconds.is_none());
        assert_eq!(outcome.reported_seconds, outcome.host_seconds);
    }

    #[test]
    fn both_engines_commit_identical_total_demand_per_batch_order() {
        // The engines share the DP, so routing the same design with the
        // same ordering yields identical geometry (the GPU engine commits
        // per batch, but batches are conflict-free, so results agree).
        let (a, ga) = run(PatternEngine::SequentialCpu, PatternMode::LShape);
        let (b, gb) = run(
            PatternEngine::GpuFlow(DeviceConfig::tiny()),
            PatternMode::LShape,
        );
        let wl = |o: &PatternOutcome| o.routes.iter().map(Route::wirelength).sum::<u64>();
        // Batch-commit vs per-net commit sees slightly different congestion;
        // totals must be close but need not be identical. Demand totals
        // follow wirelength.
        let (wa, wb) = (wl(&a) as f64, wl(&b) as f64);
        assert!((wa - wb).abs() / wa < 0.05, "wl diverged: {wa} vs {wb}");
        assert_eq!(ga.report().total_wire_demand, wa);
        assert_eq!(gb.report().total_wire_demand, wb);
    }

    #[test]
    fn parallel_cpu_engine_matches_gpu_engine_routes() {
        // Both engines route batch-by-batch with batch-level commits, so
        // the resulting geometry must be identical.
        let (a, _) = run(
            PatternEngine::GpuFlow(DeviceConfig::tiny()),
            PatternMode::LShape,
        );
        let (b, _) = run(
            PatternEngine::ParallelCpu { workers: 4 },
            PatternMode::LShape,
        );
        assert_eq!(a.routes, b.routes);
        assert!(b.modeled_gpu_seconds.is_none());
    }

    #[test]
    fn gpu_engine_is_deterministic_across_worker_counts() {
        // Same design, 1 vs 4 host workers: the routed geometry must be
        // byte-identical and the modelled device seconds bit-identical —
        // host parallelism only changes wall-clock.
        let run_with = |workers: usize| {
            run(
                PatternEngine::GpuFlow(DeviceConfig::rtx3090_like().with_host_workers(workers)),
                PatternMode::HybridAll,
            )
        };
        let (serial, _) = run_with(1);
        let (parallel, _) = run_with(4);
        assert_eq!(serial.routes, parallel.routes);
        assert_eq!(serial.trees, parallel.trees);
        let a = serial.modeled_gpu_seconds.expect("modelled");
        let b = parallel.modeled_gpu_seconds.expect("modelled");
        assert_eq!(a.to_bits(), b.to_bits(), "modelled time diverged: {a} vs {b}");
    }

    #[test]
    fn too_few_layers_is_rejected() {
        let design = Generator::tiny(1).generate();
        let mut graph = GridGraph::new(16, 16, 2, CostParams::default()).expect("valid");
        let stage = PatternStage {
            mode: PatternMode::LShape,
            engine: PatternEngine::SequentialCpu,
            sorting: SortingScheme::default(),
            steiner_passes: 4,
            congestion_aware_planning: false,
            cost_probing: true,
            validate: true,
        };
        assert!(matches!(
            stage.run(&design, &mut graph),
            Err(RouteError::TooFewLayers { layers: 2 })
        ));
    }

    #[test]
    fn probed_and_direct_stages_route_identically() {
        // The prober and the direct quantised walks are the same cost
        // function, so a whole stage run must be byte-identical with the
        // cache on or off, for every engine.
        for engine in [
            PatternEngine::SequentialCpu,
            PatternEngine::GpuFlow(DeviceConfig::tiny()),
            PatternEngine::ParallelCpu { workers: 2 },
        ] {
            let (probed, gp) = run_probing(engine, PatternMode::HybridAll, true);
            let (direct, gd) = run_probing(engine, PatternMode::HybridAll, false);
            assert_eq!(probed.routes, direct.routes, "{engine:?}: routes diverge");
            assert_eq!(
                gp.report().total_wire_demand,
                gd.report().total_wire_demand
            );
        }
    }

    #[test]
    fn hybrid_mode_runs_end_to_end() {
        let (outcome, graph) = run(
            PatternEngine::GpuFlow(DeviceConfig::tiny()),
            PatternMode::Hybrid(crate::SelectionThresholds::default()),
        );
        assert_eq!(outcome.routes.len(), 64);
        assert!(graph.report().total_wire_demand > 0.0);
    }
}
