//! Implementations of every reproduced table and figure.
//!
//! Each `fn` returns the formatted report it prints; the `reproduce` binary
//! is a CLI over these. Experiment ids follow the paper (see `DESIGN.md`
//! §3). All runs use the scaled synthetic suite; the *quick* flavour uses
//! the four smallest benchmarks so a full sweep stays in CI time.

use fastgr_core::{Router, RouterConfig, RoutingOutcome, SelectionThresholds, SortingScheme};
use fastgr_design::{BenchmarkSpec, Design};
use fastgr_dr::{DetailedRouter, DrConfig};

use crate::tables::{format_table, geomean, ratio, secs};

/// The benchmark subset for one evaluation sweep.
pub fn subset(quick: bool) -> Vec<BenchmarkSpec> {
    let all = fastgr_design::suite();
    if quick {
        all.into_iter()
            .filter(|s| matches!(s.name, "s18t5" | "s18t5m" | "s18t10" | "s18t10m"))
            .collect()
    } else {
        all
    }
}

/// Routes one suite benchmark under `config`.
pub fn run(spec: &BenchmarkSpec, config: RouterConfig) -> (Design, RoutingOutcome) {
    let design = spec.generate();
    let outcome = Router::new(config)
        .run(&design)
        .unwrap_or_else(|e| panic!("routing {} failed: {e}", spec.name));
    (design, outcome)
}

/// All three router variants on one benchmark (shared by Tables VII–X).
#[derive(Debug, Clone)]
pub struct VariantOutcomes {
    /// The benchmark descriptor.
    pub spec: BenchmarkSpec,
    /// The generated design.
    pub design: Design,
    /// The CUGR-style baseline outcome.
    pub cugr: RoutingOutcome,
    /// FastGR_L outcome.
    pub fastgr_l: RoutingOutcome,
    /// FastGR_H outcome.
    pub fastgr_h: RoutingOutcome,
}

/// Runs CUGR / FastGR_L / FastGR_H on the whole subset.
pub fn run_overall(quick: bool) -> Vec<VariantOutcomes> {
    subset(quick)
        .into_iter()
        .map(|spec| {
            let design = spec.generate();
            let route = |config: RouterConfig| {
                Router::new(config)
                    .run(&design)
                    .unwrap_or_else(|e| panic!("routing {} failed: {e}", spec.name))
            };
            let cugr = route(RouterConfig::cugr());
            let fastgr_l = route(RouterConfig::fastgr_l());
            let fastgr_h = route(RouterConfig::fastgr_h());
            VariantOutcomes {
                spec,
                design,
                cugr,
                fastgr_l,
                fastgr_h,
            }
        })
        .collect()
}

/// **Fig. 3** — runtime breakdown (PATTERN vs MAZE share) of the CUGR-style
/// baseline. The paper shows 19test9 PATTERN-dominated, 19test9m
/// MAZE-dominated and 19test7 balanced.
pub fn fig3(quick: bool) -> String {
    let names: &[&str] = if quick {
        &["s18t5", "s18t10", "s18t10m"]
    } else {
        &["s19t7", "s19t9", "s19t9m"]
    };
    let mut rows = Vec::new();
    for name in names {
        let spec = BenchmarkSpec::find(name).expect("suite benchmark");
        let (_, o) = run(&spec, RouterConfig::cugr());
        let pattern = o.timings.pattern_seconds;
        let maze = o.timings.maze_seconds;
        let total = pattern + maze;
        rows.push(vec![
            name.to_string(),
            secs(pattern),
            secs(maze),
            format!("{:.1}%", 100.0 * pattern / total.max(1e-12)),
            format!("{:.1}%", 100.0 * maze / total.max(1e-12)),
        ]);
    }
    format!(
        "Fig. 3 — CUGR-baseline runtime breakdown (PATTERN vs MAZE)\n{}",
        format_table(&["design", "PATTERN", "MAZE", "PATTERN%", "MAZE%"], &rows)
    )
}

/// **Table III** — benchmark statistics of the (scaled) suite.
pub fn table3() -> String {
    let rows: Vec<Vec<String>> = fastgr_design::suite()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.paper_analogue.to_string(),
                s.paper_nets.to_string(),
                s.nets.to_string(),
                format!("{0}x{0}", s.grid),
                (s.layers - 1).to_string(), // metal layers, excluding pin layer
            ]
        })
        .collect();
    format!(
        "Table III — benchmark suite (scaled ICCAD2019 analogues)\n{}",
        format_table(
            &[
                "design",
                "analogue",
                "paper nets",
                "nets",
                "G-cell grid",
                "metal layers"
            ],
            &rows
        )
    )
}

/// **Tables IV & V** — the six sorting schemes, substituted in the RRR
/// iterations only (the pattern stage keeps ascending HPWL), on the two
/// Table V designs.
pub fn table5(quick: bool) -> String {
    let names: &[&str] = if quick {
        &["s18t5", "s18t5m"]
    } else {
        &["s18t10", "s18t10m"]
    };
    let mut rows = Vec::new();
    for name in names {
        let spec = BenchmarkSpec::find(name).expect("suite benchmark");
        let design = spec.generate();
        for scheme in SortingScheme::ALL {
            // Scheme swapped in the RRR stage only: route the pattern stage
            // with the default, then re-sort the rip-up set.
            let config = RouterConfig::fastgr_l().with_rrr_sorting(scheme);
            let o = Router::new(config).run(&design).expect("routable");
            rows.push(vec![
                name.to_string(),
                scheme.to_string(),
                secs(o.timings.total_seconds()),
                secs(o.timings.pattern_seconds),
                secs(o.timings.maze_seconds),
                format!("{:.0}", o.metrics.score()),
            ]);
        }
    }
    format!(
        "Table V — sorting schemes (swapped in the rip-up and reroute stage only)\n{}",
        format_table(
            &["design", "scheme", "TOTAL", "PATTERN", "MAZE", "score"],
            &rows
        )
    )
}

/// **Fig. 12** — selection-threshold sweep: fixed `t1`, varying `t2` on the
/// `s18t5m` design; PATTERN runtime and score against the CUGR baselines.
pub fn fig12() -> String {
    let spec = BenchmarkSpec::find("s18t5m").expect("suite benchmark");
    let design = spec.generate();
    let baseline = Router::new(RouterConfig::cugr())
        .run(&design)
        .expect("routable");

    let mut rows = Vec::new();
    for t2 in (10..=100).step_by(10) {
        let config = RouterConfig::fastgr_h()
            .with_pattern_mode(fastgr_core::PatternMode::Hybrid(SelectionThresholds::new(4, t2)));
        let o = Router::new(config).run(&design).expect("routable");
        rows.push(vec![
            t2.to_string(),
            secs(o.timings.pattern_seconds),
            format!("{:.0}", o.metrics.score()),
        ]);
    }
    format!(
        "Fig. 12 — t2 sweep on s18t5m (t1 = 4)\n{}\nbaseline CUGR: PATTERN {} score {:.0}\n",
        format_table(&["t2", "PATTERN", "score"], &rows),
        secs(baseline.timings.pattern_seconds),
        baseline.metrics.score(),
    )
}

/// **Table VI** — the selection-technique ablation: FastGR_H with vs
/// without selection.
pub fn table6(quick: bool) -> String {
    let mut rows = Vec::new();
    let mut pattern_speedups = Vec::new();
    let mut total_speedups = Vec::new();
    let mut shorts_improvements = Vec::new();
    let mut rip_increase = Vec::new();
    for spec in subset(quick) {
        let design = spec.generate();
        let with = Router::new(RouterConfig::fastgr_h())
            .run(&design)
            .expect("routable");
        let without = Router::new(RouterConfig::fastgr_h_no_selection())
            .run(&design)
            .expect("routable");
        let rip_with = *with.trace.nets_ripped().first().unwrap_or(&0) as f64;
        let rip_without = *without.trace.nets_ripped().first().unwrap_or(&0) as f64;
        pattern_speedups
            .push(without.timings.pattern_seconds / with.timings.pattern_seconds.max(1e-12));
        total_speedups
            .push(without.timings.total_seconds() / with.timings.total_seconds().max(1e-12));
        if without.metrics.shorts > 0.0 {
            shorts_improvements.push(1.0 - with.metrics.shorts / without.metrics.shorts);
        }
        if rip_without > 0.0 {
            rip_increase.push(rip_with / rip_without - 1.0);
        }
        rows.push(vec![
            spec.name.to_string(),
            secs(without.timings.pattern_seconds),
            secs(with.timings.pattern_seconds),
            secs(without.timings.total_seconds()),
            secs(with.timings.total_seconds()),
            format!("{:.1}", without.metrics.shorts),
            format!("{:.1}", with.metrics.shorts),
        ]);
    }
    format!(
        "Table VI — selection ablation (without vs with selection)\n{}\n\
         pattern speedup from selection (geomean): {}\n\
         total speedup from selection (geomean):   {}\n\
         shorts improvement from selection (mean): {:.1}%\n\
         nets-to-rip-up change from selection (mean): {:+.1}%\n",
        format_table(
            &[
                "design",
                "PAT w/o sel",
                "PAT w/ sel",
                "TOT w/o sel",
                "TOT w/ sel",
                "shorts w/o",
                "shorts w/",
            ],
            &rows
        ),
        ratio(geomean(&pattern_speedups)),
        ratio(geomean(&total_speedups)),
        100.0 * mean(&shorts_improvements),
        100.0 * mean(&rip_increase),
    )
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// **Table VII** — overall results: total runtime and score of the three
/// routers per benchmark, with geomean speedups.
pub fn table7_from(results: &[VariantOutcomes]) -> String {
    let mut rows = Vec::new();
    let mut l_speedups = Vec::new();
    let mut h_speedups = Vec::new();
    for r in results {
        let tc = r.cugr.timings.total_seconds();
        let tl = r.fastgr_l.timings.total_seconds();
        let th = r.fastgr_h.timings.total_seconds();
        l_speedups.push(tc / tl.max(1e-12));
        h_speedups.push(tc / th.max(1e-12));
        rows.push(vec![
            r.spec.name.to_string(),
            secs(tc),
            format!("{:.0}", r.cugr.metrics.score()),
            secs(tl),
            format!("{:.0}", r.fastgr_l.metrics.score()),
            secs(th),
            format!("{:.0}", r.fastgr_h.metrics.score()),
        ]);
    }
    format!(
        "Table VII — overall results (total runtime and score)\n{}\n\
         FastGR_L speedup over CUGR (geomean): {} (paper: 2.489x)\n\
         FastGR_H speedup over CUGR (geomean): {} (paper: 1.970x)\n",
        format_table(
            &["design", "CUGR", "score", "FastGR_L", "score", "FastGR_H", "score"],
            &rows
        ),
        ratio(geomean(&l_speedups)),
        ratio(geomean(&h_speedups)),
    )
}

/// **Table VIII** — stage breakdown: PATTERN and MAZE runtimes plus the
/// number of nets passed to rip-up and reroute.
pub fn table8_from(results: &[VariantOutcomes]) -> String {
    let mut rows = Vec::new();
    let mut l_kernel = Vec::new();
    let mut h_kernel = Vec::new();
    let mut maze_speedup = Vec::new();
    let mut l_rip_change = Vec::new();
    let mut h_rip_change = Vec::new();
    for r in results {
        let rip = |o: &RoutingOutcome| *o.trace.nets_ripped().first().unwrap_or(&0);
        l_kernel
            .push(r.cugr.timings.pattern_seconds / r.fastgr_l.timings.pattern_seconds.max(1e-12));
        h_kernel
            .push(r.cugr.timings.pattern_seconds / r.fastgr_h.timings.pattern_seconds.max(1e-12));
        if r.cugr.timings.maze_seconds > 1e-9 && r.fastgr_l.timings.maze_seconds > 1e-9 {
            maze_speedup.push(r.cugr.timings.maze_seconds / r.fastgr_l.timings.maze_seconds);
        }
        let base_rip = rip(&r.cugr) as f64;
        // Tiny rip counts (a handful of nets) turn into meaningless
        // percentages; only designs with a real rip-up workload count.
        if base_rip >= 10.0 {
            l_rip_change.push(rip(&r.fastgr_l) as f64 / base_rip - 1.0);
            h_rip_change.push(rip(&r.fastgr_h) as f64 / base_rip - 1.0);
        }
        rows.push(vec![
            r.spec.name.to_string(),
            secs(r.cugr.timings.pattern_seconds),
            secs(r.fastgr_l.timings.pattern_seconds),
            secs(r.fastgr_h.timings.pattern_seconds),
            rip(&r.cugr).to_string(),
            rip(&r.fastgr_l).to_string(),
            rip(&r.fastgr_h).to_string(),
            secs(r.cugr.timings.maze_seconds),
            secs(r.fastgr_l.timings.maze_seconds),
            secs(r.fastgr_h.timings.maze_seconds),
        ]);
    }
    format!(
        "Table VIII — stage breakdown (PATTERN / nets-to-rip / MAZE)\n{}\n\
         L-shape kernel speedup vs sequential (geomean):  {} (paper: 9.324x)\n\
         hybrid kernel speedup vs sequential (geomean):   {} (paper: 2.070x)\n\
         task-graph MAZE speedup vs batch-based (geomean): {} (paper: 2.501x)\n\
         nets-to-rip change, FastGR_L vs CUGR (mean): {:+.1}% (paper: -2.4%)\n\
         nets-to-rip change, FastGR_H vs CUGR (mean): {:+.1}% (paper: -23.3%)\n",
        format_table(
            &[
                "design",
                "PAT cugr",
                "PAT grl",
                "PAT grh",
                "rip cugr",
                "rip grl",
                "rip grh",
                "MAZE cugr",
                "MAZE grl",
                "MAZE grh",
            ],
            &rows
        ),
        ratio(geomean(&l_kernel)),
        ratio(geomean(&h_kernel)),
        ratio(geomean(&maze_speedup)),
        100.0 * mean(&l_rip_change),
        100.0 * mean(&h_rip_change),
    )
}

/// **Table IX** — global-routing solution quality: wirelength, vias,
/// shorts, score for FastGR_L vs FastGR_H.
pub fn table9_from(results: &[VariantOutcomes]) -> String {
    let mut rows = Vec::new();
    let mut shorts_improvements = Vec::new();
    let mut pattern_improvements = Vec::new();
    for r in results {
        let ml = &r.fastgr_l.metrics;
        let mh = &r.fastgr_h.metrics;
        // Sub-one-track overflows are numerical noise; exclude them from
        // the per-design percentage mean (the sum-based aggregate below
        // covers every design).
        if ml.shorts >= 1.0 {
            shorts_improvements.push(1.0 - mh.shorts / ml.shorts);
        }
        if r.fastgr_l.trace.pattern_shorts() >= 1.0 {
            pattern_improvements
                .push(1.0 - r.fastgr_h.trace.pattern_shorts() / r.fastgr_l.trace.pattern_shorts());
        }
        rows.push(vec![
            r.spec.name.to_string(),
            ml.wirelength.to_string(),
            mh.wirelength.to_string(),
            ml.vias.to_string(),
            mh.vias.to_string(),
            format!("{:.1}", r.fastgr_l.trace.pattern_shorts()),
            format!("{:.1}", r.fastgr_h.trace.pattern_shorts()),
            format!("{:.1}", ml.shorts),
            format!("{:.1}", mh.shorts),
            format!("{:.0}", ml.score()),
            format!("{:.0}", mh.score()),
        ]);
    }
    let sum = |f: &dyn Fn(&VariantOutcomes) -> f64| -> f64 { results.iter().map(f).sum() };
    let pat_l = sum(&|r| r.fastgr_l.trace.pattern_shorts());
    let pat_h = sum(&|r| r.fastgr_h.trace.pattern_shorts());
    let fin_l = sum(&|r| r.fastgr_l.metrics.shorts);
    let fin_h = sum(&|r| r.fastgr_h.metrics.shorts);
    format!(
        "Table IX — GR solution quality (FastGR_L vs FastGR_H)\n{}\n\
         pattern-stage shorts improvement of FastGR_H: {:.1}% per-design mean, {:.1}% of total\n\
         final shorts improvement of FastGR_H:         {:.1}% per-design mean, {:.1}% of total (paper: 27.855%)\n",
        format_table(
            &[
                "design", "wl L", "wl H", "vias L", "vias H", "pat.sh L", "pat.sh H",
                "shorts L", "shorts H", "score L", "score H",
            ],
            &rows
        ),
        100.0 * mean(&pattern_improvements),
        100.0 * (1.0 - pat_h / pat_l.max(1e-9)),
        100.0 * mean(&shorts_improvements),
        100.0 * (1.0 - fin_h / fin_l.max(1e-9)),
    )
}

/// **Table X** — detailed-routing quality after the Dr.CU-substitute,
/// guided by each router's solution.
pub fn table10_from(results: &[VariantOutcomes]) -> String {
    let mut rows = Vec::new();
    for r in results {
        // Track count matches the GR capacity so guides and tracks agree.
        let dr = DetailedRouter::new(DrConfig {
            tracks_per_gcell: r.design.capacity().round() as u8,
            ..DrConfig::default()
        });
        let dc = dr.route(&r.design, &r.cugr.routes);
        let dl = dr.route(&r.design, &r.fastgr_l.routes);
        let dh = dr.route(&r.design, &r.fastgr_h.routes);
        rows.push(vec![
            r.spec.name.to_string(),
            dc.wirelength.to_string(),
            dl.wirelength.to_string(),
            dh.wirelength.to_string(),
            dc.shorts.to_string(),
            dl.shorts.to_string(),
            dh.shorts.to_string(),
            dc.spacing_violations.to_string(),
            dl.spacing_violations.to_string(),
            dh.spacing_violations.to_string(),
        ]);
    }
    format!(
        "Table X — detailed-routing quality (Dr.CU substitute)\n{}",
        format_table(
            &[
                "design",
                "wl cugr",
                "wl grl",
                "wl grh",
                "shorts cugr",
                "shorts grl",
                "shorts grh",
                "spacing cugr",
                "spacing grl",
                "spacing grh",
            ],
            &rows
        )
    )
}

/// The headline-number summary (Section IV / abstract).
pub fn summary_from(results: &[VariantOutcomes]) -> String {
    let g = |f: &dyn Fn(&VariantOutcomes) -> f64| -> f64 {
        geomean(&results.iter().map(f).collect::<Vec<_>>())
    };
    let overall_l =
        g(&|r| r.cugr.timings.total_seconds() / r.fastgr_l.timings.total_seconds().max(1e-12));
    let overall_h =
        g(&|r| r.cugr.timings.total_seconds() / r.fastgr_h.timings.total_seconds().max(1e-12));
    let kernel_l =
        g(&|r| r.cugr.timings.pattern_seconds / r.fastgr_l.timings.pattern_seconds.max(1e-12));
    let maze_ratios: Vec<f64> = results
        .iter()
        .filter(|r| r.cugr.timings.maze_seconds > 1e-9 && r.fastgr_l.timings.maze_seconds > 1e-9)
        .map(|r| r.cugr.timings.maze_seconds / r.fastgr_l.timings.maze_seconds)
        .collect();
    let maze = geomean(&maze_ratios);
    let shorts: Vec<f64> = results
        .iter()
        .filter(|r| r.fastgr_l.metrics.shorts >= 1.0)
        .map(|r| 1.0 - r.fastgr_h.metrics.shorts / r.fastgr_l.metrics.shorts)
        .collect();
    let pattern_shorts: Vec<f64> = results
        .iter()
        .filter(|r| r.fastgr_l.trace.pattern_shorts() >= 1.0)
        .map(|r| 1.0 - r.fastgr_h.trace.pattern_shorts() / r.fastgr_l.trace.pattern_shorts())
        .collect();
    format!(
        "Headline numbers (measured vs paper)\n\
         -------------------------------------\n\
         FastGR_L overall speedup:        {} (paper 2.489x)\n\
         FastGR_H overall speedup:        {} (paper 1.970x)\n\
         L-shape kernel PATTERN speedup:  {} (paper 9.324x)\n\
         task-graph MAZE speedup:         {} (paper 2.070x-2.501x)\n\
         FastGR_H shorts reduction:       {:.1}% final / {:.1}% at the pattern stage (paper 27.855%)\n",
        ratio(overall_l),
        ratio(overall_h),
        ratio(kernel_l),
        ratio(maze),
        100.0 * mean(&shorts),
        100.0 * mean(&pattern_shorts),
    )
}

/// **Ablations** beyond the paper's tables — the design choices called out
/// in `DESIGN.md` §3: pattern candidate sets (L vs pure-Z vs hybrid),
/// Steiner edge shifting on/off, and A* vs plain Dijkstra in the maze
/// stage. One medium benchmark keeps the sweep fast.
pub fn ablations() -> String {
    use fastgr_core::PatternMode;
    use fastgr_maze::MazeConfig;

    let spec = BenchmarkSpec::find("s18t5m").expect("suite benchmark");
    let design = spec.generate();
    let mut rows = Vec::new();
    let mut run_cfg = |label: &str, config: RouterConfig| {
        let o = Router::new(config).run(&design).expect("routable");
        rows.push(vec![
            label.to_string(),
            secs(o.timings.total_seconds()),
            secs(o.timings.pattern_seconds),
            secs(o.timings.maze_seconds),
            o.metrics.wirelength.to_string(),
            o.metrics.vias.to_string(),
            format!("{:.1}", o.metrics.shorts),
            format!("{:.0}", o.metrics.score()),
        ]);
    };

    // Pattern candidate sets.
    run_cfg("l-shape", RouterConfig::fastgr_l());
    run_cfg(
        "z-shape only",
        RouterConfig::fastgr_l().with_pattern_mode(PatternMode::ZShape),
    );
    run_cfg("hybrid+selection", RouterConfig::fastgr_h());
    run_cfg("hybrid all", RouterConfig::fastgr_h_no_selection());

    // Edge shifting / Steinerisation off (raw MST trees).
    run_cfg(
        "no edge shifting",
        RouterConfig::fastgr_l().with_steiner_passes(0),
    );

    // Plain Dijkstra in the rip-up-and-reroute maze.
    run_cfg(
        "maze dijkstra",
        RouterConfig::fastgr_l().with_maze(MazeConfig {
            astar: false,
            ..MazeConfig::default()
        }),
    );

    // RUDY-guided congestion-aware edge shifting in planning.
    run_cfg(
        "rudy planning",
        RouterConfig::fastgr_l().with_congestion_aware_planning(true),
    );

    // Negotiated congestion (history cost), an extension beyond the paper.
    run_cfg(
        "history cost",
        RouterConfig::fastgr_l().with_history_increment(4.0),
    );
    run_cfg(
        "history + 8 iters",
        RouterConfig::fastgr_l()
            .with_history_increment(4.0)
            .with_rrr_iterations(8),
    );

    // The classic 2-D + layer-assignment flow (fastgr-assign) as the
    // pattern stage, followed by the same RRR iterations — measures what
    // FastGR's direct-3-D pattern routing buys.
    {
        use fastgr_assign::TwoDFlow;
        use fastgr_core::{RrrStage, RrrStrategy};
        use fastgr_grid::CostParams;
        let t0 = fastgr_telemetry::Stopwatch::start();
        let mut graph = design.build_graph(CostParams::default()).expect("valid");
        let mut routes = TwoDFlow::new()
            .run(&design, &mut graph)
            .expect("assignable");
        let pattern_secs = t0.elapsed_seconds();
        let rrr = RrrStage {
            iterations: 3,
            strategy: RrrStrategy::TaskGraph,
            sorting: SortingScheme::HpwlAscending,
            maze: fastgr_maze::MazeConfig::default(),
            workers: 8,
            history_increment: 0.0,
            validate: false,
        }
        .run(&design, &mut graph, &mut routes)
        .expect("reroutable");
        let report = graph.report();
        let wl: u64 = routes.iter().map(|r| r.wirelength()).sum();
        let vias: u64 = routes.iter().map(|r| r.via_count()).sum();
        let metrics = fastgr_core::QualityMetrics {
            wirelength: wl,
            vias,
            shorts: report.shorts(),
        };
        rows.push(vec![
            "2d + layer assign".to_string(),
            secs(pattern_secs + rrr.modeled_parallel_seconds),
            secs(pattern_secs),
            secs(rrr.modeled_parallel_seconds),
            wl.to_string(),
            vias.to_string(),
            format!("{:.1}", metrics.shorts),
            format!("{:.0}", metrics.score()),
        ]);
    }

    format!(
        "Ablations on s18t5m (design-choice studies beyond the paper)\n{}",
        format_table(
            &["variant", "TOTAL", "PATTERN", "MAZE", "wl", "vias", "shorts", "score"],
            &rows
        )
    )
}

/// Convenience wrappers that run the sweep themselves.
pub fn table7(quick: bool) -> String {
    table7_from(&run_overall(quick))
}
/// See [`table8_from`].
pub fn table8(quick: bool) -> String {
    table8_from(&run_overall(quick))
}
/// See [`table9_from`].
pub fn table9(quick: bool) -> String {
    table9_from(&run_overall(quick))
}
/// See [`table10_from`].
pub fn table10(quick: bool) -> String {
    table10_from(&run_overall(quick))
}
/// See [`summary_from`].
pub fn summary(quick: bool) -> String {
    summary_from(&run_overall(quick))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_lists_every_benchmark() {
        let t = table3();
        for spec in fastgr_design::suite() {
            assert!(t.contains(spec.name), "missing {}", spec.name);
        }
    }

    #[test]
    fn subset_quick_is_smaller() {
        assert_eq!(subset(true).len(), 4);
        assert_eq!(subset(false).len(), 12);
    }
}
