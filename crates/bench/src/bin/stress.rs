//! Randomised stress harness: routes seeded random designs through every
//! preset and checks the router's invariants hold on each.
//!
//! ```text
//! stress [iterations]        (default 10)
//! ```
//!
//! Checked per design and preset:
//!
//! * every net's route is connected and reaches all its pins;
//! * recommitting the routes onto a fresh grid reproduces the reported
//!   congestion exactly (demand bookkeeping is exact);
//! * the score equals the Eq. 15 formula on the raw metrics;
//! * guides cover every pin;
//! * the run is deterministic (a second run yields identical routes).

use std::process::ExitCode;

use fastgr_core::{Router, RouterConfig};
use fastgr_design::{Design, Generator, GeneratorParams, SplitMix64};
use fastgr_grid::CostParams;

fn random_design(rng: &mut SplitMix64, index: u64) -> Design {
    let side = 12 + rng.next_below(28) as u16;
    let layers = 4 + rng.next_below(5) as u8;
    let density = 0.3 + rng.next_f64() * 0.9;
    let nets = ((side as f64 * side as f64) * density) as usize;
    Generator::new(GeneratorParams {
        name: format!("stress-{index}"),
        width: side,
        height: side,
        layers,
        num_nets: nets.max(4),
        capacity: 2.0 + rng.next_f64() * 4.0,
        hotspots: 1 + rng.next_below(4) as usize,
        hotspot_affinity: rng.next_f64() * 0.7,
        blockages: rng.next_below(4) as usize,
        seed: rng.next_u64(),
    })
    .generate()
}

fn check(design: &Design, label: &str, config: RouterConfig) -> Result<(), String> {
    let outcome = Router::new(config)
        .run(design)
        .map_err(|e| format!("{label}: routing failed: {e}"))?;

    // Connectivity and pin coverage.
    for (net, route) in design.nets().iter().zip(&outcome.routes) {
        if !route.is_connected() {
            return Err(format!("{label}: net {} disconnected", net.name()));
        }
        let pins = net.distinct_positions();
        if pins.len() > 1 {
            let touched = route.touched_points();
            for pin in pins {
                if !touched.contains(&pin.on_layer(0)) {
                    return Err(format!("{label}: net {} misses pin {pin}", net.name()));
                }
            }
        }
    }

    // Exact demand bookkeeping.
    let mut graph = design
        .build_graph(CostParams::default())
        .map_err(|e| format!("{label}: graph: {e}"))?;
    for route in &outcome.routes {
        graph
            .commit(route)
            .map_err(|e| format!("{label}: recommit: {e}"))?;
    }
    let fresh = graph.report();
    if fresh.total_wire_demand != outcome.report.total_wire_demand
        || fresh.overflow != outcome.report.overflow
    {
        return Err(format!(
            "{label}: demand mismatch: {} vs {}",
            fresh.total_wire_demand, outcome.report.total_wire_demand
        ));
    }

    // Score formula.
    let expect = 0.5 * outcome.metrics.wirelength as f64
        + 4.0 * outcome.metrics.vias as f64
        + 500.0 * outcome.metrics.shorts;
    if (outcome.metrics.score() - expect).abs() > 1e-9 {
        return Err(format!("{label}: score formula violated"));
    }

    // Guides.
    if !outcome.guides.covers_pins(design) {
        return Err(format!("{label}: guides do not cover all pins"));
    }

    // Determinism.
    let again = Router::new(config)
        .run(design)
        .map_err(|e| format!("{label}: rerun failed: {e}"))?;
    if again.routes != outcome.routes {
        return Err(format!("{label}: nondeterministic routes"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let iterations: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let mut rng = SplitMix64::new(0xFA57_617B);
    let mut failures = 0u32;
    for i in 0..iterations {
        let design = random_design(&mut rng, i);
        print!(
            "[{}/{iterations}] {} ({} nets, {} layers) ... ",
            i + 1,
            design.name(),
            design.nets().len(),
            design.layers()
        );
        let presets = [
            ("cugr", RouterConfig::cugr()),
            ("fastgr-l", RouterConfig::fastgr_l()),
            ("fastgr-h", RouterConfig::fastgr_h()),
        ];
        let mut ok = true;
        for (label, config) in presets {
            if let Err(e) = check(&design, label, config) {
                println!("FAIL: {e}");
                failures += 1;
                ok = false;
                break;
            }
        }
        if ok {
            println!("ok");
        }
    }
    if failures == 0 {
        println!("stress: all {iterations} designs passed on every preset");
        ExitCode::SUCCESS
    } else {
        println!("stress: {failures} failures");
        ExitCode::FAILURE
    }
}
