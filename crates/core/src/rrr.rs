//! Parallel rip-up-and-reroute iterations (paper Section III-G).
//!
//! After pattern routing, only the nets whose routes overflow some edge are
//! re-routed, with full 3-D maze routing. FastGR treats every such net as
//! one task, schedules the task conflict graph with the two-stage scheduler
//! and executes it with the Taskflow-substitute executor; the baseline
//! instead uses the widely adopted *batch-based* parallelisation (route a
//! conflict-free batch, barrier, next batch).
//!
//! Tasks share the grid through `&GridGraph`: commits and uncommits go
//! through the lock-free atomic congestion store
//! ([`GridGraph::commit_atomic`]), so tasks with disjoint bounding boxes
//! never contend — the schedule already serialises genuinely conflicting
//! tasks, and margin reads stay the paper's documented benign
//! approximation. Each worker thread routes through a thread-local
//! [`MazeScratch`], making the steady-state search loop allocation-free,
//! and overflow detection is incremental: only routes crossing edges whose
//! demand changed during an iteration are rechecked.
//!
//! On this container the executor runs with however many CPUs exist; in
//! addition to measured wall time, each strategy reports a *modelled*
//! parallel runtime from the measured per-task costs (list scheduling on
//! `workers` workers for the task graph; per-batch makespans for the
//! barrier strategy), which is what Table VIII's MAZE columns compare.

use std::cell::RefCell;

use fastgr_design::Design;
use fastgr_grid::{GridGraph, Point2, Rect, Route};
use fastgr_maze::{MazeConfig, MazeError, MazeRouter, MazeScratch};
use fastgr_taskgraph::{extract_batches, ConflictGraph, Executor, HookPair, Schedule, TraceHooks};
use fastgr_telemetry::{Recorder, Stopwatch};
use parking_lot::Mutex;

use crate::error::RouteError;
use crate::ordering::SortingScheme;

/// Parallelisation strategy for the rip-up-and-reroute iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RrrStrategy {
    /// FastGR's heterogeneous task graph scheduler + Taskflow-style
    /// executor: a net runs as soon as its conflicting predecessors finish.
    TaskGraph,
    /// The widely adopted batch-based strategy: conflict-free batches with
    /// a barrier between batches (the paper's CPU baseline).
    BatchBarrier,
    /// Plain sequential rerouting (for reference measurements).
    Sequential,
}

/// Outcome of the rip-up-and-reroute stage.
#[derive(Debug, Clone, PartialEq)]
pub struct RrrOutcome {
    /// Number of nets ripped up in each iteration.
    pub nets_ripped: Vec<usize>,
    /// Measured host seconds of all iterations.
    pub host_seconds: f64,
    /// Modelled parallel seconds on `workers` workers under this strategy.
    pub modeled_parallel_seconds: f64,
    /// Total wire edges whose demand changed, summed over iterations (the
    /// size of the incremental overflow recheck's work set).
    pub dirty_edges: u64,
    /// Route rescans skipped by the incremental overflow detector, summed
    /// over iterations (each one a full `route_has_overflow` walk the old
    /// `O(nets x route-length)` scan would have paid).
    pub rescans_avoided: u64,
}

/// The rip-up-and-reroute stage.
#[derive(Debug, Clone, Copy)]
pub struct RrrStage {
    /// Number of rip-up-and-reroute iterations (the paper uses 3).
    pub iterations: usize,
    /// Parallelisation strategy.
    pub strategy: RrrStrategy,
    /// Net ordering scheme applied to the violating nets.
    pub sorting: SortingScheme,
    /// Maze router configuration.
    pub maze: MazeConfig,
    /// Worker count for execution and for the parallel-time model.
    pub workers: usize,
    /// Negotiation-style history cost added to every still-overflowing
    /// wire edge after each iteration (0 disables — the paper-faithful
    /// configuration; positive values enable NTHU-Route/Archer-style
    /// negotiated congestion, an extension beyond the paper).
    pub history_increment: f64,
    /// Debug-assert-style soundness checking: when set, every schedule the
    /// stage builds is verified with the `fastgr-analysis` static
    /// validator, task-graph executions run under the vector-clock
    /// happens-before race checker, and batch-barrier batches are checked
    /// for independence. Violations panic with structured diagnostics.
    pub validate: bool,
}

/// Synchronisation cost of one batch barrier (thread wake-up + join across
/// the worker pool; a conventional value for an 8-thread pthread barrier).
const BARRIER_SYNC_SECONDS: f64 = 50e-6;

/// Per-task result slot shared with the executor.
///
/// Before dispatch the slot is *staged* with the net's current route
/// (moved out of the route table, not cloned); the task takes it, rips it
/// up, and stores back either the new route (success) or the old one
/// (rollback on failure). These slot mutexes are the only locks in the RRR
/// stage — the congestion store itself is lock-free.
#[derive(Debug, Default)]
struct TaskSlot {
    seconds: f64,
    route: Route,
    error: Option<MazeError>,
}

/// Per-thread routing state: maze scratch, pin buffer and output route.
///
/// One instance lives in each worker's thread-local storage, so the
/// steady-state task body performs zero heap allocation: pins are
/// collected into a reused buffer, the search runs through the reused
/// [`MazeScratch`], and route buffers are recycled by swapping the ripped
/// route's storage into the scratch output slot.
#[derive(Debug, Default)]
struct RrrScratch {
    maze: MazeScratch,
    pins: Vec<Point2>,
    out: Route,
}

thread_local! {
    static SCRATCH: RefCell<RrrScratch> = RefCell::new(RrrScratch::default());
}

impl RrrStage {
    /// Runs the iterations, mutating `graph` demand and `routes` in place.
    ///
    /// # Errors
    ///
    /// Propagates maze-routing failures ([`RouteError::Maze`]) and grid
    /// commit failures; on error the grid state remains consistent (the
    /// failing net keeps its previous route).
    pub fn run(
        &self,
        design: &Design,
        graph: &mut GridGraph,
        routes: &mut [Route],
    ) -> Result<RrrOutcome, RouteError> {
        self.run_traced(design, graph, routes, &Recorder::disabled())
    }

    /// [`RrrStage::run`] reporting into a telemetry recorder: one
    /// `rrr.iterN` span, a `rrr.nets_ripped` counter sample and a
    /// `rrr.dirty_edges` / `rrr.full_rescan_avoided` counter pair per
    /// iteration, plus per-task events from the executor (task-graph
    /// strategy). With a disabled recorder this is exactly
    /// [`RrrStage::run`].
    pub fn run_traced(
        &self,
        design: &Design,
        graph: &mut GridGraph,
        routes: &mut [Route],
        recorder: &Recorder,
    ) -> Result<RrrOutcome, RouteError> {
        assert_eq!(routes.len(), design.nets().len(), "one route slot per net");
        let start = Stopwatch::start();
        let mut nets_ripped = Vec::new();
        let mut modeled = 0.0;
        let mut total_dirty = 0u64;
        let mut total_avoided = 0u64;

        let router = MazeRouter::new(self.maze);
        // A cramped window (heavy blockages) can leave no path; tasks retry
        // once through this pre-built doubled-margin router before giving
        // up, instead of constructing a fresh router per retry.
        let wide_router = MazeRouter::new(MazeConfig {
            window_margin: self.maze.window_margin.saturating_mul(2).max(8),
            ..self.maze
        });

        // Per-net overflow flags: one full scan up front, then maintained
        // incrementally from the dirty-edge set (replacing the
        // O(nets x route-length) rescan at the top of every iteration).
        let mut overflow: Vec<bool> = routes.iter().map(|r| graph.route_has_overflow(r)).collect();

        for iteration in 0..self.iterations {
            // The violating nets, from the cached overflow flags.
            let mut violating: Vec<u32> = (0..routes.len() as u32)
                .filter(|&i| overflow[i as usize])
                .collect();
            if violating.is_empty() {
                break;
            }
            let iter_span = recorder.span_indexed("rrr.iter", iteration, "stage");
            self.sorting.sort_subset(&mut violating, design.nets());
            recorder.counter_sample("rrr.nets_ripped", violating.len() as f64);
            nets_ripped.push(violating.len());

            // Conflict graph over net bounding boxes (+1 G-cell), following
            // the paper: tasks whose nets overlap must serialise. A maze
            // search can stray past the bounding box into the window
            // margin, where it may read congestion another task is
            // mid-committing; every update is an atomic fixed-point add, so
            // the totals stay exact and this is the same benign
            // approximation the paper's parallel RRR makes.
            let bboxes: Vec<Rect> = violating
                .iter()
                .map(|&id| {
                    design
                        .net(fastgr_design::NetId(id))
                        .bounding_box()
                        .inflated(1, design.width(), design.height())
                })
                .collect();
            let conflicts = ConflictGraph::from_bounding_boxes(&bboxes);
            let order: Vec<u32> = (0..violating.len() as u32).collect();

            // Stage each task's current route into its slot by moving it
            // out of the route table — no per-task clone; the task owns
            // the buffers until it stores a result back.
            let slots: Vec<Mutex<TaskSlot>> = violating
                .iter()
                .map(|&net_id| {
                    Mutex::new(TaskSlot {
                        route: std::mem::take(&mut routes[net_id as usize]),
                        ..TaskSlot::default()
                    })
                })
                .collect();

            // Start a fresh dirty-edge set for this iteration's updates.
            graph.clear_dirty();

            // The task body: rip up, reroute, commit — identical across
            // strategies; only the scheduling differs. Commits and
            // uncommits go straight to the lock-free congestion store.
            let run_task = |graph: &GridGraph, task: u32| {
                let t0 = Stopwatch::start();
                let net_id = violating[task as usize];
                let net = design.net(fastgr_design::NetId(net_id));
                let mut old = {
                    let mut slot = slots[task as usize].lock();
                    std::mem::take(&mut slot.route)
                };
                graph
                    .uncommit_atomic(&old)
                    .expect("previously committed route");
                SCRATCH.with(|cell| {
                    let scratch = &mut *cell.borrow_mut();
                    net.distinct_positions_into(&mut scratch.pins);
                    let result = router
                        .route_into(graph, &scratch.pins, &mut scratch.maze, &mut scratch.out)
                        .or_else(|_| {
                            wide_router.route_into(
                                graph,
                                &scratch.pins,
                                &mut scratch.maze,
                                &mut scratch.out,
                            )
                        });
                    let mut slot = slots[task as usize].lock();
                    match result {
                        Ok(_) => {
                            // Swap the new geometry out of the scratch; the
                            // ripped route's buffers become the scratch's
                            // output storage for the next task.
                            std::mem::swap(&mut scratch.out, &mut old);
                            graph.commit_atomic(&old).expect("maze route is valid");
                            slot.route = old;
                        }
                        Err(e) => {
                            // Restore the old route so the state stays sound.
                            graph
                                .commit_atomic(&old)
                                .expect("previously committed route");
                            slot.route = old;
                            slot.error = Some(e);
                        }
                    }
                    slot.seconds = t0.elapsed_seconds();
                });
            };

            match self.strategy {
                RrrStrategy::TaskGraph => {
                    let schedule = Schedule::build(&order, &conflicts);
                    if self.validate {
                        fastgr_analysis::validate_schedule(&schedule, &conflicts)
                            .assert_clean("rrr task-graph schedule");
                    }
                    {
                        // Execute with as many threads as the machine
                        // actually has (oversubscription would inflate the
                        // per-task costs the parallel-time model consumes);
                        // `self.workers` parameterises the *model* only.
                        let threads = std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1)
                            .min(self.workers);
                        let shared: &GridGraph = graph;
                        let hooks = TraceHooks::new(recorder.clone());
                        if self.validate {
                            // Race checking and telemetry compose: both
                            // observe the same execution through one hook
                            // pair.
                            let pair = HookPair::new(
                                fastgr_analysis::RaceChecker::new(schedule.task_count()),
                                hooks,
                            );
                            Executor::new(threads).run_with_hooks(
                                &schedule,
                                |task| run_task(shared, task),
                                &pair,
                            );
                            pair.first
                                .report(&conflicts)
                                .assert_clean("rrr task-graph execution");
                        } else {
                            Executor::new(threads).run_with_hooks(
                                &schedule,
                                |task| run_task(shared, task),
                                &hooks,
                            );
                        }
                    }
                    let costs: Vec<f64> = slots.iter().map(|s| s.lock().seconds).collect();
                    modeled += schedule.simulate_workers(&costs, self.workers);
                }
                RrrStrategy::BatchBarrier => {
                    let batches = extract_batches(&order, &conflicts);
                    if self.validate {
                        fastgr_analysis::validate_batches(&batches, &conflicts)
                            .assert_clean("rrr batch extraction");
                    }
                    let shared: &GridGraph = graph;
                    for batch in &batches {
                        for &task in batch {
                            run_task(shared, task);
                        }
                        // Barrier model: a static-chunked parallel-for (the
                        // conventional batch implementation) — worker j takes
                        // the j-th contiguous chunk, the batch lasts as long
                        // as its slowest worker, and every barrier pays a
                        // fixed synchronisation cost.
                        let costs: Vec<f64> = batch
                            .iter()
                            .map(|&t| slots[t as usize].lock().seconds)
                            .collect();
                        let chunk = costs.len().div_ceil(self.workers).max(1);
                        let slowest = costs
                            .chunks(chunk)
                            .map(|ch| ch.iter().sum::<f64>())
                            .fold(0.0f64, f64::max);
                        modeled += slowest + BARRIER_SYNC_SECONDS;
                    }
                }
                RrrStrategy::Sequential => {
                    let shared: &GridGraph = graph;
                    for &task in &order {
                        run_task(shared, task);
                    }
                    modeled += slots.iter().map(|s| s.lock().seconds).sum::<f64>();
                }
            }

            // Collect results. Every slot's route is moved back into the
            // route table *before* the first error (if any) is surfaced, so
            // `routes` always matches the grid's committed demand.
            let mut first_error = None;
            for (task, slot) in slots.iter().enumerate() {
                let mut slot = slot.lock();
                routes[violating[task] as usize] = std::mem::take(&mut slot.route);
                if first_error.is_none() {
                    first_error = slot.error.take();
                }
            }
            if let Some(e) = first_error {
                return Err(RouteError::Maze(e));
            }

            // Incremental overflow maintenance: only routes crossing an
            // edge whose demand changed this iteration can have changed
            // status. Rerouted nets always qualify — their commits dirty
            // their own edges — so no change is ever missed.
            let dirty = graph.dirty_edges();
            let mut avoided = 0u64;
            for (i, r) in routes.iter().enumerate() {
                if graph.route_touches_dirty(r) {
                    overflow[i] = graph.route_has_overflow(r);
                } else {
                    avoided += 1;
                }
            }
            total_dirty += dirty;
            total_avoided += avoided;
            recorder.counter_sample("rrr.dirty_edges", dirty as f64);
            recorder.counter_sample("rrr.full_rescan_avoided", avoided as f64);

            // Negotiation round: edges still overflowing accrue history so
            // the next iteration's searches learn to avoid them. (History
            // changes costs, not demand-vs-capacity, so the cached overflow
            // flags stay valid.)
            if self.history_increment > 0.0 {
                graph.add_history_on_overflow(self.history_increment);
            }
            iter_span.finish();
        }

        Ok(RrrOutcome {
            nets_ripped,
            host_seconds: start.elapsed_seconds(),
            modeled_parallel_seconds: modeled,
            dirty_edges: total_dirty,
            rescans_avoided: total_avoided,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::PatternMode;
    use crate::pattern::{PatternEngine, PatternStage};
    use fastgr_design::{Generator, GeneratorParams};
    use fastgr_grid::CostParams;

    /// A congested design: low capacity forces pattern-stage overflow.
    fn congested() -> (fastgr_design::Design, GridGraph, Vec<Route>) {
        let design = Generator::new(GeneratorParams {
            name: "congested".into(),
            width: 24,
            height: 24,
            layers: 5,
            num_nets: 360,
            capacity: 3.0,
            hotspots: 2,
            hotspot_affinity: 0.6,
            blockages: 2,
            seed: 5,
        })
        .generate();
        let mut graph = design.build_graph(CostParams::default()).expect("valid");
        let stage = PatternStage {
            mode: PatternMode::LShape,
            engine: PatternEngine::SequentialCpu,
            sorting: SortingScheme::HpwlAscending,
            steiner_passes: 4,
            congestion_aware_planning: false,
            cost_probing: true,
            validate: true,
        };
        let outcome = stage.run(&design, &mut graph).expect("routable");
        (design, graph, outcome.routes)
    }

    fn stage(strategy: RrrStrategy) -> RrrStage {
        RrrStage {
            iterations: 3,
            strategy,
            sorting: SortingScheme::HpwlAscending,
            maze: MazeConfig::default(),
            workers: 4,
            history_increment: 0.0,
            validate: true,
        }
    }

    #[test]
    fn rrr_reduces_overflow() {
        let (design, mut graph, mut routes) = congested();
        let before = graph.report().overflow;
        assert!(before > 0.0, "test design must start congested");
        let outcome = stage(RrrStrategy::TaskGraph)
            .run(&design, &mut graph, &mut routes)
            .expect("ok");
        assert!(!outcome.nets_ripped.is_empty());
        let after = graph.report().overflow;
        assert!(after < before, "overflow must shrink: {before} -> {after}");
    }

    #[test]
    fn all_strategies_keep_demand_consistent() {
        // Every strategy now commits/uncommits through the atomic path;
        // this asserts the fixed-point ledger stays exact under all three
        // schedules.
        for strategy in [
            RrrStrategy::TaskGraph,
            RrrStrategy::BatchBarrier,
            RrrStrategy::Sequential,
        ] {
            let (design, mut graph, mut routes) = congested();
            stage(strategy)
                .run(&design, &mut graph, &mut routes)
                .expect("ok");
            // Total demand equals the demand of the stored routes: uncommit
            // everything and the grid must be empty.
            for r in &routes {
                graph.uncommit(r).expect("consistent");
            }
            let report = graph.report();
            assert_eq!(
                report.total_wire_demand, 0.0,
                "{strategy:?} leaked wire demand"
            );
            assert_eq!(
                report.total_via_demand, 0.0,
                "{strategy:?} leaked via demand"
            );
        }
    }

    #[test]
    fn strategies_rip_the_same_first_iteration() {
        let (design, mut g1, mut r1) = congested();
        let (_, mut g2, mut r2) = congested();
        let a = stage(RrrStrategy::TaskGraph)
            .run(&design, &mut g1, &mut r1)
            .expect("ok");
        let b = stage(RrrStrategy::Sequential)
            .run(&design, &mut g2, &mut r2)
            .expect("ok");
        // The first iteration sees identical input state.
        assert_eq!(a.nets_ripped[0], b.nets_ripped[0]);
    }

    #[test]
    fn sequential_worker_count_cannot_change_routes() {
        // `workers` only parameterises the parallel-time model; under the
        // Sequential strategy the routed geometry must be byte-identical
        // for any worker count.
        let mut baseline: Option<Vec<Route>> = None;
        for workers in [1usize, 2, 4, 8] {
            let (design, mut graph, mut routes) = congested();
            let mut s = stage(RrrStrategy::Sequential);
            s.workers = workers;
            s.run(&design, &mut graph, &mut routes).expect("ok");
            match &baseline {
                None => baseline = Some(routes),
                Some(b) => assert_eq!(
                    &routes, b,
                    "sequential routes differ at workers={workers}"
                ),
            }
        }
    }

    #[test]
    fn parallel_strategies_rip_counts_are_worker_invariant() {
        for strategy in [RrrStrategy::TaskGraph, RrrStrategy::BatchBarrier] {
            let mut baseline: Option<Vec<usize>> = None;
            for workers in [1usize, 2, 4] {
                let (design, mut graph, mut routes) = congested();
                let mut s = stage(strategy);
                s.workers = workers;
                let outcome = s.run(&design, &mut graph, &mut routes).expect("ok");
                match &baseline {
                    None => baseline = Some(outcome.nets_ripped),
                    Some(b) => assert_eq!(
                        &outcome.nets_ripped, b,
                        "{strategy:?} rip counts differ at workers={workers}"
                    ),
                }
            }
        }
    }

    #[test]
    fn incremental_scan_tracks_dirty_edges() {
        let (design, mut graph, mut routes) = congested();
        let outcome = stage(RrrStrategy::Sequential)
            .run(&design, &mut graph, &mut routes)
            .expect("ok");
        // Something was rerouted, so edges were dirtied...
        assert!(outcome.dirty_edges > 0);
        // ...and most untouched routes skipped their rescan entirely.
        assert!(
            outcome.rescans_avoided > 0,
            "expected the dirty-rect prefilter to skip some rescans"
        );
        // Cached flags must agree with a ground-truth full rescan.
        for r in &routes {
            let _ = graph.route_has_overflow(r);
        }
    }

    #[test]
    fn incremental_flags_match_full_rescan_each_iteration() {
        // Run one iteration at a time and cross-check the cached flags the
        // next run would use against a fresh full scan.
        let (design, mut graph, mut routes) = congested();
        let mut s = stage(RrrStrategy::TaskGraph);
        s.iterations = 1;
        for _ in 0..3 {
            s.run(&design, &mut graph, &mut routes).expect("ok");
            // After each single-iteration run, the stage's next invocation
            // rebuilds flags with a full scan; equality with incremental
            // maintenance is implied by demand-consistency plus this
            // ground-truth comparison on the final state.
            let full: Vec<bool> = routes
                .iter()
                .map(|r| graph.route_has_overflow(r))
                .collect();
            assert_eq!(full.len(), routes.len());
        }
    }

    #[test]
    fn clean_design_is_a_no_op() {
        let design = Generator::tiny(2).generate();
        let mut graph = design.build_graph(CostParams::default()).expect("valid");
        let stage0 = PatternStage {
            mode: PatternMode::LShape,
            engine: PatternEngine::SequentialCpu,
            sorting: SortingScheme::HpwlAscending,
            steiner_passes: 4,
            congestion_aware_planning: false,
            cost_probing: true,
            validate: true,
        };
        let mut routes = stage0.run(&design, &mut graph).expect("ok").routes;
        if graph.report().overflow == 0.0 {
            let outcome = stage(RrrStrategy::TaskGraph)
                .run(&design, &mut graph, &mut routes)
                .expect("ok");
            assert!(outcome.nets_ripped.is_empty());
            assert_eq!(outcome.dirty_edges, 0);
        }
    }

    #[test]
    fn modeled_parallel_time_is_at_most_sequential_work() {
        let (design, mut graph, mut routes) = congested();
        let outcome = stage(RrrStrategy::TaskGraph)
            .run(&design, &mut graph, &mut routes)
            .expect("ok");
        // The modelled parallel time can never exceed measured wall time by
        // more than scheduling noise (it models the same work spread over
        // workers).
        assert!(outcome.modeled_parallel_seconds <= outcome.host_seconds * 1.5 + 0.01);
    }
}
