#!/bin/sh
# Worker-sweep benchmark of the rip-up-and-reroute stage.
#
#   scripts/bench_rrr.sh            # quick sweep (one hotspot design)
#   scripts/bench_rrr.sh --full     # the suite's congestion-dominated half
#
# Extra flags are passed through to the binary
# (see `bench_rrr --help`-style doc in crates/bench/src/bin/bench_rrr.rs):
# --out PATH, --workers N, --iterations N.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline -p fastgr-bench
exec target/release/bench_rrr "$@"
