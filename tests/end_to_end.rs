//! End-to-end integration tests: the full FastGR flow across every crate.

use fastgr::core::{Router, RouterConfig};
use fastgr::design::{Generator, GeneratorParams};
use fastgr::grid::CostParams;

fn congested_design(seed: u64) -> fastgr::design::Design {
    Generator::new(GeneratorParams {
        name: format!("e2e-{seed}"),
        width: 24,
        height: 24,
        layers: 6,
        num_nets: 320,
        capacity: 3.0,
        hotspots: 3,
        hotspot_affinity: 0.5,
        blockages: 2,
        seed,
    })
    .generate()
}

#[test]
fn every_preset_routes_every_net_connectedly() {
    let design = congested_design(1);
    for config in [
        RouterConfig::cugr(),
        RouterConfig::fastgr_l(),
        RouterConfig::fastgr_h(),
        RouterConfig::fastgr_h_no_selection(),
    ] {
        let outcome = Router::new(config).run(&design).expect("routable");
        assert_eq!(outcome.routes.len(), design.nets().len());
        for (net, route) in design.nets().iter().zip(&outcome.routes) {
            assert!(route.is_connected(), "net {} disconnected", net.name());
            let pins = net.distinct_positions();
            if pins.len() > 1 {
                let touched = route.touched_points();
                for pin in pins {
                    assert!(
                        touched.contains(&pin.on_layer(0)),
                        "net {} misses pin {pin}",
                        net.name()
                    );
                }
            }
        }
    }
}

#[test]
fn committed_demand_matches_stored_routes() {
    let design = congested_design(2);
    let outcome = Router::new(RouterConfig::fastgr_l())
        .run(&design)
        .expect("routable");
    // Recommit all routes onto a fresh graph: identical congestion report.
    let mut graph = design.build_graph(CostParams::default()).expect("valid");
    for route in &outcome.routes {
        graph.commit(route).expect("valid route");
    }
    let fresh = graph.report();
    assert_eq!(fresh.total_wire_demand, outcome.report.total_wire_demand);
    assert_eq!(fresh.total_via_demand, outcome.report.total_via_demand);
    assert_eq!(fresh.overflow, outcome.report.overflow);
    // And the metrics derive from the same numbers.
    assert_eq!(outcome.metrics.shorts, fresh.shorts());
}

#[test]
fn quality_metrics_are_internally_consistent() {
    let design = congested_design(3);
    let outcome = Router::new(RouterConfig::fastgr_h())
        .run(&design)
        .expect("routable");
    let wl: u64 = outcome.routes.iter().map(|r| r.wirelength()).sum();
    let vias: u64 = outcome.routes.iter().map(|r| r.via_count()).sum();
    assert_eq!(outcome.metrics.wirelength, wl);
    assert_eq!(outcome.metrics.vias, vias);
    let expect = 0.5 * wl as f64 + 4.0 * vias as f64 + 500.0 * outcome.metrics.shorts;
    assert!((outcome.metrics.score() - expect).abs() < 1e-9);
}

#[test]
fn whole_flow_is_deterministic() {
    let design = congested_design(4);
    let a = Router::new(RouterConfig::fastgr_h())
        .run(&design)
        .expect("routable");
    let b = Router::new(RouterConfig::fastgr_h())
        .run(&design)
        .expect("routable");
    assert_eq!(a.routes, b.routes);
    assert_eq!(a.trace.nets_ripped(), b.trace.nets_ripped());
    assert_eq!(
        a.trace.deterministic_signature(),
        b.trace.deterministic_signature()
    );
    assert_eq!(a.metrics.shorts, b.metrics.shorts);
}

#[test]
fn rrr_never_worsens_overflow() {
    let design = congested_design(5);
    let pattern_only = RouterConfig::cugr().with_rrr_iterations(0);
    let rough = Router::new(pattern_only).run(&design).expect("routable");
    let refined = Router::new(RouterConfig::cugr())
        .run(&design)
        .expect("routable");
    assert!(refined.metrics.shorts <= rough.metrics.shorts);
}

#[test]
fn guides_cover_pins_for_all_presets() {
    let design = congested_design(6);
    for config in [
        RouterConfig::cugr(),
        RouterConfig::fastgr_l(),
        RouterConfig::fastgr_h(),
    ] {
        let outcome = Router::new(config).run(&design).expect("routable");
        assert!(outcome.guides.covers_pins(&design));
        assert_eq!(outcome.guides.net_count(), design.nets().len());
    }
}

#[test]
fn suite_benchmark_routes_end_to_end() {
    // The smallest suite benchmark, full flow, FastGR_L.
    let spec = fastgr::design::BenchmarkSpec::find("s18t5").expect("known");
    let design = spec.generate();
    let outcome = Router::new(RouterConfig::fastgr_l())
        .run(&design)
        .expect("routable");
    assert_eq!(outcome.routes.len(), 3200);
    assert!(outcome.metrics.wirelength > 10_000);
    assert!(outcome.guides.covers_pins(&design));
}

#[test]
fn imported_ispd_design_routes_end_to_end() {
    // A miniature ISPD2008-format benchmark, imported and routed fully.
    let text = "grid 12 12 4\n\
        vertical capacity 0 8 0 8\n\
        horizontal capacity 8 0 8 0\n\
        minimum width 1 1 1 1\n\
        minimum spacing 1 1 1 1\n\
        via spacing 1 1 1 1\n\
        0 0 10 10\n\
        num net 3\n\
        a 0 2 1\n5 5 1\n105 85 1\n\
        b 1 3 1\n15 15 1\n95 15 1\n55 105 1\n\
        c 2 2 1\n25 95 1\n85 25 1\n\
        0\n";
    let design = fastgr::design::Design::from_ispd2008("mini", text).expect("valid ispd text");
    assert_eq!(design.layers(), 5);
    let outcome = Router::new(RouterConfig::fastgr_l())
        .run(&design)
        .expect("routable");
    assert_eq!(outcome.routes.len(), 3);
    for route in &outcome.routes {
        assert!(route.is_connected());
    }
    assert_eq!(outcome.metrics.shorts, 0.0);
}
