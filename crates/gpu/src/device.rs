//! The simulated device and its calibrated performance model.

use std::fmt;

/// Static configuration of the simulated device.
///
/// The defaults are calibrated once from public RTX 3090 specifications and
/// micro-benchmark folklore and are **never tuned per design** — relative
/// speedup shapes in the reproduction come from the algorithms, not from
/// these constants (see `DESIGN.md` §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors executing blocks concurrently.
    pub sm_count: usize,
    /// Threads that one block can run truly in parallel.
    pub threads_per_block: usize,
    /// Modelled time of one flow stage (one add + compare per thread plus
    /// the reduction), in seconds.
    pub stage_seconds: f64,
    /// Fixed host-side cost of one kernel launch, in seconds.
    pub launch_overhead_seconds: f64,
}

impl DeviceConfig {
    /// An RTX-3090-like device: 82 SMs, 256-thread blocks (the realistic
    /// occupancy for these register-heavy cost-gather kernels), 900 ns per
    /// flow stage (dozens of clocks at 1.4 GHz including global-memory
    /// latency), 8 µs launch overhead.
    pub const fn rtx3090_like() -> Self {
        Self {
            sm_count: 82,
            threads_per_block: 256,
            stage_seconds: 900e-9,
            launch_overhead_seconds: 8e-6,
        }
    }

    /// A deliberately tiny device for tests: 2 SMs, 4-thread blocks.
    pub const fn tiny() -> Self {
        Self {
            sm_count: 2,
            threads_per_block: 4,
            stage_seconds: 1e-6,
            launch_overhead_seconds: 10e-6,
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::rtx3090_like()
    }
}

/// Execution profile reported by one block: how many homogeneous threads its
/// computation-graph flow used and how many sequential stages it has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockProfile {
    /// Parallel threads of the widest flow stage.
    pub threads: usize,
    /// Sequential depth of the flow (number of dependent stages).
    pub flow_depth: usize,
}

impl BlockProfile {
    /// Creates a profile.
    pub const fn new(threads: usize, flow_depth: usize) -> Self {
        Self {
            threads,
            flow_depth,
        }
    }

    /// Merges another profile executed sequentially inside the same block
    /// (depths add, width takes the maximum).
    pub fn then(self, other: BlockProfile) -> BlockProfile {
        BlockProfile {
            threads: self.threads.max(other.threads),
            flow_depth: self.flow_depth + other.flow_depth,
        }
    }
}

/// Statistics of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name (for reporting).
    pub name: String,
    /// Number of blocks launched.
    pub blocks: usize,
    /// Modelled device time in seconds.
    pub modeled_seconds: f64,
}

/// Cumulative statistics of a device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceStats {
    /// Total number of kernel launches.
    pub launches: usize,
    /// Total number of blocks across launches.
    pub blocks: usize,
    /// Total modelled device time in seconds.
    pub modeled_seconds: f64,
}

impl fmt::Display for DeviceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} launches, {} blocks, {:.3} ms modelled",
            self.launches,
            self.blocks,
            self.modeled_seconds * 1e3
        )
    }
}

/// The simulated CUDA-like device.
///
/// Executes kernels block by block on the host while charging modelled
/// device time. See the crate docs for the timing model and the example.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    stats: DeviceStats,
}

impl Device {
    /// Creates a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            stats: DeviceStats::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Cumulative statistics since creation or the last reset.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Clears the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    /// Launches a kernel of `blocks` blocks. `run_block` is invoked once per
    /// block (in order, on the host) and reports the block's flow profile;
    /// the modelled kernel time is the throughput bound of the SM array,
    /// floored by the slowest single block:
    ///
    /// ```text
    /// launch_overhead + max(max_block_time, sum_block_time / sm_count)
    /// block_time = flow_depth * ceil(threads / threads_per_block) * stage_seconds
    /// ```
    ///
    /// A zero-block launch costs only the launch overhead.
    pub fn launch<F>(&mut self, name: &str, blocks: usize, mut run_block: F) -> KernelStats
    where
        F: FnMut(usize) -> BlockProfile,
    {
        let mut max_block_time = 0.0f64;
        let mut total_block_time = 0.0f64;
        for b in 0..blocks {
            let profile = run_block(b);
            let waves = profile
                .threads
                .div_ceil(self.config.threads_per_block)
                .max(1);
            let block_time = profile.flow_depth as f64 * waves as f64 * self.config.stage_seconds;
            total_block_time += block_time;
            if block_time > max_block_time {
                max_block_time = block_time;
            }
        }
        let modeled_seconds = self.config.launch_overhead_seconds
            + max_block_time.max(total_block_time / self.config.sm_count as f64);
        self.stats.launches += 1;
        self.stats.blocks += blocks;
        self.stats.modeled_seconds += modeled_seconds;
        KernelStats {
            name: name.to_owned(),
            blocks,
            modeled_seconds,
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::new(DeviceConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_block_launch_costs_only_overhead() {
        let mut d = Device::new(DeviceConfig::tiny());
        let s = d.launch("noop", 0, |_| BlockProfile::new(1, 1));
        assert_eq!(
            s.modeled_seconds,
            DeviceConfig::tiny().launch_overhead_seconds
        );
    }

    #[test]
    fn time_scales_with_block_rounds() {
        let cfg = DeviceConfig::tiny(); // 2 SMs
        let mut d = Device::new(cfg);
        let one = d
            .launch("k", 2, |_| BlockProfile::new(1, 3))
            .modeled_seconds;
        let two = d
            .launch("k", 4, |_| BlockProfile::new(1, 3))
            .modeled_seconds;
        let body = |launch: f64| launch - cfg.launch_overhead_seconds;
        assert!((body(two) - 2.0 * body(one)).abs() < 1e-12);
    }

    #[test]
    fn wide_blocks_pay_thread_waves() {
        let cfg = DeviceConfig::tiny(); // 4 threads per block
        let mut d = Device::new(cfg);
        let narrow = d
            .launch("k", 1, |_| BlockProfile::new(4, 2))
            .modeled_seconds;
        let wide = d
            .launch("k", 1, |_| BlockProfile::new(8, 2))
            .modeled_seconds;
        let body = |t: f64| t - cfg.launch_overhead_seconds;
        assert!((body(wide) - 2.0 * body(narrow)).abs() < 1e-12);
    }

    #[test]
    fn slowest_block_dominates() {
        let cfg = DeviceConfig::tiny();
        let mut d = Device::new(cfg);
        let s = d.launch("k", 2, |b| {
            BlockProfile::new(1, if b == 0 { 1 } else { 10 })
        });
        let body = s.modeled_seconds - cfg.launch_overhead_seconds;
        assert!((body - 10.0 * cfg.stage_seconds).abs() < 1e-12);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut d = Device::new(DeviceConfig::tiny());
        d.launch("a", 3, |_| BlockProfile::new(1, 1));
        d.launch("b", 5, |_| BlockProfile::new(1, 1));
        assert_eq!(d.stats().launches, 2);
        assert_eq!(d.stats().blocks, 8);
        assert!(d.stats().modeled_seconds > 0.0);
        d.reset_stats();
        assert_eq!(d.stats(), &DeviceStats::default());
    }

    #[test]
    fn throughput_bound_dominates_for_many_blocks() {
        // 2 SMs, many equal blocks: time ~ total work / 2.
        let cfg = DeviceConfig::tiny();
        let mut d = Device::new(cfg);
        let s = d.launch("k", 10, |_| BlockProfile::new(1, 4));
        let body = s.modeled_seconds - cfg.launch_overhead_seconds;
        let per_block = 4.0 * cfg.stage_seconds;
        assert!((body - 10.0 * per_block / 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_slow_block_floors_kernel_time() {
        // One enormous block among many small ones: the kernel cannot be
        // faster than that block even with idle SMs.
        let cfg = DeviceConfig::tiny();
        let mut d = Device::new(cfg);
        let s = d.launch("k", 3, |b| {
            BlockProfile::new(1, if b == 0 { 100 } else { 1 })
        });
        let body = s.modeled_seconds - cfg.launch_overhead_seconds;
        assert!(body >= 100.0 * cfg.stage_seconds - 1e-12);
    }

    #[test]
    fn block_profile_then_composes() {
        let p = BlockProfile::new(16, 2).then(BlockProfile::new(4, 3));
        assert_eq!(p.threads, 16);
        assert_eq!(p.flow_depth, 5);
    }

    #[test]
    fn blocks_run_in_order_on_host() {
        let mut d = Device::new(DeviceConfig::tiny());
        let mut seen = Vec::new();
        d.launch("k", 4, |b| {
            seen.push(b);
            BlockProfile::new(1, 1)
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
