//! The structured result of one recorded run.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Track (Chrome `tid`) that stage-level spans and counter samples land
/// on: the coordinating thread.
pub const TRACK_MAIN: u32 = 0;

/// Track offset of worker threads: worker `w` reports on track `w + 1`.
pub const TRACK_WORKER_BASE: u32 = 1;

/// Track that per-kernel device events land on (a dedicated "GPU" lane,
/// clear of the host worker tracks).
pub const TRACK_DEVICE: u32 = 90;

/// A completed named interval on some track.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (e.g. `"planning"`, `"rrr.iter0"`).
    pub name: String,
    /// Category (Chrome `cat`), e.g. `"stage"`.
    pub cat: &'static str,
    /// Start offset from the recorder's epoch, in seconds.
    pub start_seconds: f64,
    /// Duration in seconds.
    pub duration_seconds: f64,
    /// Track (Chrome `tid`) the span belongs to.
    pub track: u32,
}

/// A named deterministic counter: for a fixed configuration its value is
/// byte-identical across runs and across worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Counter {
    /// Counter name (e.g. `"pattern.kernel_launches"`).
    pub name: String,
    /// Final accumulated value.
    pub value: f64,
}

/// A timestamped sample of a counter (Chrome `"C"` event), e.g. the
/// nets-ripped count of each rip-up iteration as it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Counter name.
    pub name: String,
    /// Sample time, seconds from the recorder's epoch.
    pub t_seconds: f64,
    /// Sampled value.
    pub value: f64,
}

/// One kernel launch on the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEvent {
    /// Kernel name.
    pub name: String,
    /// Blocks launched.
    pub blocks: usize,
    /// Modelled device seconds (deterministic).
    pub modeled_seconds: f64,
    /// Measured host seconds of the launch.
    pub host_seconds: f64,
    /// Launch start, seconds from the recorder's epoch.
    pub start_seconds: f64,
}

/// A begin or end marker reported by a worker thread (block / task
/// execution), matched per track in report order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Event name (e.g. `"block12"`, `"task3"`).
    pub name: String,
    /// Category (Chrome `cat`).
    pub cat: &'static str,
    /// `true` for a begin marker, `false` for the matching end.
    pub begin: bool,
    /// Event time, seconds from the recorder's epoch.
    pub t_seconds: f64,
    /// Track (Chrome `tid`; `worker + 1`).
    pub track: u32,
}

/// Everything one recorded routing run produced, aggregated.
///
/// A `RunTrace` is attached to every `RoutingOutcome`; with a disabled
/// [`Recorder`](crate::Recorder) it still carries the deterministic run
/// summary (batches, pattern shorts, per-iteration rip-up counts) — only
/// the timeline detail (spans, kernel events, worker events) requires an
/// enabled recorder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTrace {
    spans: Vec<Span>,
    counters: BTreeMap<String, f64>,
    counter_samples: Vec<CounterSample>,
    kernels: Vec<KernelEvent>,
    events: Vec<TimelineEvent>,
    nets_ripped: Vec<usize>,
    pattern_shorts: f64,
    pattern_batches: usize,
}

impl RunTrace {
    /// Builds a trace from recorder parts (crate-internal).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        spans: Vec<Span>,
        counters: BTreeMap<String, f64>,
        counter_samples: Vec<CounterSample>,
        kernels: Vec<KernelEvent>,
        events: Vec<TimelineEvent>,
    ) -> Self {
        Self {
            spans,
            counters,
            counter_samples,
            kernels,
            events,
            nets_ripped: Vec::new(),
            pattern_shorts: 0.0,
            pattern_batches: 0,
        }
    }

    // --- Run-summary accessors (always populated by the router). ---

    /// Nets ripped up per rip-up-and-reroute iteration.
    pub fn nets_ripped(&self) -> &[usize] {
        &self.nets_ripped
    }

    /// Shorts (overflow) right after the pattern stage, before any rip-up
    /// and reroute.
    pub fn pattern_shorts(&self) -> f64 {
        self.pattern_shorts
    }

    /// Conflict-free batches formed in the pattern stage.
    pub fn pattern_batches(&self) -> usize {
        self.pattern_batches
    }

    /// Records the pattern-stage summary (also mirrored into counters so
    /// `counter("pattern.batches")` works uniformly).
    pub fn set_pattern_summary(&mut self, batches: usize, shorts_after: f64) {
        self.pattern_batches = batches;
        self.pattern_shorts = shorts_after;
        self.counters
            .insert("pattern.batches".to_owned(), batches as f64);
        self.counters
            .insert("pattern.shorts_after".to_owned(), shorts_after);
    }

    /// Records the per-iteration rip-up counts (also mirrored into
    /// counters, one `rrr.iterN.nets_ripped` entry per iteration).
    pub fn set_rrr_nets_ripped(&mut self, nets_ripped: Vec<usize>) {
        self.counters
            .insert("rrr.iterations".to_owned(), nets_ripped.len() as f64);
        for (i, &n) in nets_ripped.iter().enumerate() {
            self.counters
                .insert(format!("rrr.iter{i}.nets_ripped"), n as f64);
        }
        self.nets_ripped = nets_ripped;
    }

    /// Records the incremental overflow-scan summary (mirrored into the
    /// `rrr.dirty_edges` / `rrr.full_rescan_avoided` counter pair): how
    /// many wire edges changed demand across the RRR iterations and how
    /// many per-route overflow rescans the dirty-edge filter skipped.
    pub fn set_rrr_scan_summary(&mut self, dirty_edges: u64, rescans_avoided: u64) {
        self.counters
            .insert("rrr.dirty_edges".to_owned(), dirty_edges as f64);
        self.counters
            .insert("rrr.full_rescan_avoided".to_owned(), rescans_avoided as f64);
    }

    /// Sets (or overwrites) a named counter.
    pub fn set_counter(&mut self, name: &str, value: f64) {
        self.counters.insert(name.to_owned(), value);
    }

    // --- Telemetry accessors. ---

    /// The recorded stage spans (empty with a disabled recorder).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The final counter values, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = Counter> + '_ {
        self.counters.iter().map(|(name, &value)| Counter {
            name: name.clone(),
            value,
        })
    }

    /// Looks up one counter by name.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters.get(name).copied()
    }

    /// The timestamped counter samples.
    pub fn counter_samples(&self) -> &[CounterSample] {
        &self.counter_samples
    }

    /// The per-kernel launch events (empty with a disabled recorder).
    pub fn kernels(&self) -> &[KernelEvent] {
        &self.kernels
    }

    /// The raw worker-thread begin/end events.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Whether the trace carries timeline detail (i.e. was recorded with
    /// an enabled recorder).
    pub fn has_timeline(&self) -> bool {
        !self.spans.is_empty() || !self.kernels.is_empty() || !self.events.is_empty()
    }

    /// The deterministic portion of the trace, rendered one item per
    /// line: counters (sorted by name), kernel names with block counts,
    /// and the run summary. For a fixed configuration this string is
    /// byte-identical across runs and across worker counts — timestamps,
    /// host seconds and `sched.*` counters (scheduling artifacts such as
    /// direct worker hand-offs, which legitimately vary with thread
    /// interleaving) never appear in it.
    pub fn deterministic_signature(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "pattern.batches = {}", self.pattern_batches);
        let _ = writeln!(out, "pattern.shorts = {}", self.pattern_shorts);
        let _ = writeln!(out, "rrr.nets_ripped = {:?}", self.nets_ripped);
        for (name, value) in &self.counters {
            if name.starts_with("sched.") {
                continue;
            }
            let _ = writeln!(out, "counter {name} = {value}");
        }
        for k in &self.kernels {
            let _ = writeln!(
                out,
                "kernel {} blocks={} modeled_us={:.3}",
                k.name,
                k.blocks,
                k.modeled_seconds * 1e6
            );
        }
        out
    }

    /// A human-readable summary: stage spans, kernel totals and every
    /// counter. Suitable for printing after a routed run.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run trace summary");
        let _ = writeln!(out, "-----------------");
        if self.spans.is_empty() {
            let _ = writeln!(out, "(no spans: telemetry was disabled)");
        } else {
            let width = self.spans.iter().map(|s| s.name.len()).max().unwrap_or(4);
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "span  {:width$}  {:>10.3} ms  (at {:.3} ms)",
                    s.name,
                    s.duration_seconds * 1e3,
                    s.start_seconds * 1e3,
                );
            }
        }
        if !self.kernels.is_empty() {
            let launches = self.kernels.len();
            let blocks: usize = self.kernels.iter().map(|k| k.blocks).sum();
            let modeled: f64 = self.kernels.iter().map(|k| k.modeled_seconds).sum();
            let host: f64 = self.kernels.iter().map(|k| k.host_seconds).sum();
            let _ = writeln!(
                out,
                "kernels  {launches} launches, {blocks} blocks, {:.3} ms modelled, {:.3} ms host",
                modeled * 1e3,
                host * 1e3,
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter  {name} = {value}");
        }
        out
    }
}

impl fmt::Display for RunTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RunTrace {
        let mut trace = RunTrace::from_parts(
            vec![Span {
                name: "pattern".into(),
                cat: "stage",
                start_seconds: 0.001,
                duration_seconds: 0.5,
                track: TRACK_MAIN,
            }],
            BTreeMap::new(),
            vec![CounterSample {
                name: "rrr.nets_ripped".into(),
                t_seconds: 0.6,
                value: 12.0,
            }],
            vec![KernelEvent {
                name: "pattern".into(),
                blocks: 64,
                modeled_seconds: 1e-4,
                host_seconds: 2e-3,
                start_seconds: 0.01,
            }],
            vec![TimelineEvent {
                name: "block0".into(),
                cat: "block",
                begin: true,
                t_seconds: 0.011,
                track: 1,
            }],
        );
        trace.set_pattern_summary(3, 7.5);
        trace.set_rrr_nets_ripped(vec![12, 4]);
        trace.set_counter("pattern.kernel_launches", 3.0);
        trace
    }

    #[test]
    fn summary_accessors_mirror_counters() {
        let trace = sample_trace();
        assert_eq!(trace.pattern_batches(), 3);
        assert_eq!(trace.pattern_shorts(), 7.5);
        assert_eq!(trace.nets_ripped(), &[12, 4]);
        assert_eq!(trace.counter("pattern.batches"), Some(3.0));
        assert_eq!(trace.counter("rrr.iter0.nets_ripped"), Some(12.0));
        assert_eq!(trace.counter("rrr.iterations"), Some(2.0));
        assert!(trace.has_timeline());
    }

    #[test]
    fn scan_summary_mirrors_counter_pair() {
        let mut trace = sample_trace();
        trace.set_rrr_scan_summary(120, 340);
        assert_eq!(trace.counter("rrr.dirty_edges"), Some(120.0));
        assert_eq!(trace.counter("rrr.full_rescan_avoided"), Some(340.0));
        let sig = trace.deterministic_signature();
        assert!(sig.contains("counter rrr.dirty_edges = 120"), "{sig}");
        assert!(sig.contains("counter rrr.full_rescan_avoided = 340"), "{sig}");
    }

    #[test]
    fn signature_excludes_timestamps() {
        let a = sample_trace();
        let mut b = sample_trace();
        // Perturb everything non-deterministic: timestamps, durations,
        // host seconds.
        b.spans[0].start_seconds = 9.9;
        b.spans[0].duration_seconds = 1.23;
        b.kernels[0].host_seconds = 4.56;
        b.kernels[0].start_seconds = 7.89;
        b.counter_samples[0].t_seconds = 0.1;
        b.events[0].t_seconds = 3.2;
        assert_eq!(a.deterministic_signature(), b.deterministic_signature());
        assert!(a.deterministic_signature().contains("kernel pattern blocks=64"));
    }

    #[test]
    fn signature_sees_counter_changes() {
        let a = sample_trace();
        let mut b = sample_trace();
        b.set_counter("pattern.kernel_launches", 4.0);
        assert_ne!(a.deterministic_signature(), b.deterministic_signature());
    }

    #[test]
    fn signature_ignores_scheduling_artifact_counters() {
        // `sched.*` counters (e.g. executor hand-offs) vary with thread
        // interleaving; they are telemetry, not part of the contract.
        let a = sample_trace();
        let mut b = sample_trace();
        b.set_counter("sched.handoffs", 17.0);
        assert_eq!(a.deterministic_signature(), b.deterministic_signature());
        assert_eq!(b.counter("sched.handoffs"), Some(17.0));
    }

    #[test]
    fn summary_table_lists_spans_kernels_and_counters() {
        let text = sample_trace().summary_table();
        assert!(text.contains("span  pattern"));
        assert!(text.contains("kernels  1 launches, 64 blocks"));
        assert!(text.contains("counter  pattern.batches = 3"));
        // Display delegates to the table.
        assert_eq!(sample_trace().to_string(), text);
    }

    #[test]
    fn empty_trace_reports_disabled_telemetry() {
        let trace = RunTrace::default();
        assert!(!trace.has_timeline());
        assert!(trace.summary_table().contains("telemetry was disabled"));
        assert_eq!(trace.nets_ripped(), &[] as &[usize]);
    }
}
