//! Algorithm 1: greedy batch extraction.

use crate::conflict::ConflictGraph;

/// Partitions tasks into conflict-free batches (paper Algorithm 1).
///
/// `order` lists the task ids in the chosen net order (e.g. ascending
/// bounding-box half-perimeter, Section IV-C). The algorithm repeatedly
/// starts a batch with the first remaining task, then scans the remaining
/// tasks in order and pulls in every task that conflicts with nothing
/// already in the batch — a greedy maximal independent set per batch.
///
/// Every task appears in exactly one batch; the first batch is the *root
/// task batch* used by the two-stage scheduler.
///
/// # Panics
///
/// Panics if `order` contains an id out of range of `conflicts`, or lists
/// any task twice.
///
/// # Example
///
/// ```
/// use fastgr_grid::{Point2, Rect};
/// use fastgr_taskgraph::{extract_batches, ConflictGraph};
///
/// // A chain of three mutually overlapping boxes 0-1, 1-2.
/// let boxes = vec![
///     Rect::new(Point2::new(0, 0), Point2::new(4, 4)),
///     Rect::new(Point2::new(3, 3), Point2::new(7, 7)),
///     Rect::new(Point2::new(6, 6), Point2::new(9, 9)),
/// ];
/// let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
/// let batches = extract_batches(&[0, 1, 2], &conflicts);
/// assert_eq!(batches, vec![vec![0, 2], vec![1]]);
/// ```
pub fn extract_batches(order: &[u32], conflicts: &ConflictGraph) -> Vec<Vec<u32>> {
    let n = conflicts.task_count();
    let mut assigned = vec![false; n];
    let mut blocked = vec![u32::MAX; n]; // batch number that blocks the task
    let mut batches: Vec<Vec<u32>> = Vec::new();

    let mut remaining: Vec<u32> = order.to_vec();
    {
        let mut seen = vec![false; n];
        for &t in &remaining {
            assert!((t as usize) < n, "task id {t} out of range");
            assert!(!seen[t as usize], "task id {t} listed twice");
            seen[t as usize] = true;
        }
    }

    let mut batch_no = 0u32;
    while !remaining.is_empty() {
        let mut batch = Vec::new();
        let mut rest = Vec::with_capacity(remaining.len());
        for &t in &remaining {
            if assigned[t as usize] {
                continue;
            }
            if blocked[t as usize] == batch_no {
                rest.push(t);
                continue;
            }
            // No conflict with anything already in this batch: take it.
            assigned[t as usize] = true;
            for &nb in conflicts.neighbors(t) {
                if !assigned[nb as usize] {
                    blocked[nb as usize] = batch_no;
                }
            }
            batch.push(t);
        }
        debug_assert!(!batch.is_empty(), "every round must make progress");
        batches.push(batch);
        remaining = rest;
        batch_no += 1;
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_grid::{Point2, Rect};
    use proptest::prelude::*;

    fn rect(x0: u16, y0: u16, x1: u16, y1: u16) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    #[test]
    fn independent_tasks_form_one_batch() {
        let boxes = vec![rect(0, 0, 1, 1), rect(5, 5, 6, 6), rect(10, 10, 11, 11)];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let batches = extract_batches(&[0, 1, 2], &conflicts);
        assert_eq!(batches, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn clique_serialises_fully() {
        let boxes = vec![rect(0, 0, 9, 9), rect(1, 1, 8, 8), rect(2, 2, 7, 7)];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let batches = extract_batches(&[2, 0, 1], &conflicts);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0], vec![2]); // order is respected
    }

    #[test]
    fn order_determines_batch_leaders() {
        let boxes = vec![rect(0, 0, 4, 4), rect(3, 3, 7, 7)];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        assert_eq!(extract_batches(&[0, 1], &conflicts)[0], vec![0]);
        assert_eq!(extract_batches(&[1, 0], &conflicts)[0], vec![1]);
    }

    #[test]
    fn empty_order_gives_no_batches() {
        let conflicts = ConflictGraph::from_bounding_boxes(&[]);
        assert!(extract_batches(&[], &conflicts).is_empty());
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_ids_panic() {
        let boxes = vec![rect(0, 0, 1, 1)];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let _ = extract_batches(&[0, 0], &conflicts);
    }

    proptest! {
        #[test]
        fn batches_partition_and_are_conflict_free(
            raw in proptest::collection::vec((0u16..30, 0u16..30, 0u16..8, 0u16..8), 1..30)
        ) {
            let boxes: Vec<Rect> = raw
                .iter()
                .map(|&(x, y, w, h)| rect(x, y, x + w, y + h))
                .collect();
            let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
            let order: Vec<u32> = (0..boxes.len() as u32).collect();
            let batches = extract_batches(&order, &conflicts);

            // Partition: every task exactly once.
            let mut seen = vec![false; boxes.len()];
            for batch in &batches {
                for &t in batch {
                    prop_assert!(!seen[t as usize]);
                    seen[t as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));

            // No conflicts inside a batch.
            for batch in &batches {
                for (i, &a) in batch.iter().enumerate() {
                    for &b in &batch[i + 1..] {
                        prop_assert!(!conflicts.conflicts(a, b));
                    }
                }
            }

            // Maximality of each batch w.r.t. the scan: every task not in
            // batch k conflicts with something in some earlier-or-equal
            // batch... (weaker check: batch count is bounded by max degree + 1)
            let max_deg = (0..boxes.len() as u32)
                .map(|t| conflicts.neighbors(t).len())
                .max()
                .unwrap_or(0);
            prop_assert!(batches.len() <= max_deg + 1);
        }
    }
}
