//! A Dr.CU-substitute detailed router for evaluating routing guides.
//!
//! The paper's Table X feeds every global router's guides into Dr. CU (the
//! paper's reference \[4\])
//! and compares detailed-routing quality. Dr. CU itself is a large C++
//! system; this crate substitutes a deliberately simple but *real*
//! guide-constrained track assigner that preserves the property Table X
//! depends on: detailed-routing quality is a monotone function of how
//! congested the guides are (see `DESIGN.md` §4).
//!
//! The model: every G-cell expands into a `k x k` fine grid (`k = 3` by
//! default, i.e. three routing tracks per G-cell per layer). Nets are
//! processed in ascending-HPWL order; each global-routing wire picks the
//! least-occupied track inside its G-cell corridor; overlaps that cannot be
//! avoided become **shorts**, parallel runs on adjacent tracks of different
//! nets become **spacing violations**, and track changes between adjacent
//! segments of one net add jog wirelength and vias.
//!
//! # Example
//!
//! ```
//! use fastgr_design::Generator;
//! use fastgr_dr::DetailedRouter;
//! use fastgr_grid::{Point2, Route, Segment};
//!
//! let design = Generator::tiny(5).generate();
//! let mut routes = vec![Route::new(); design.nets().len()];
//! let mut wire = Route::new();
//! wire.push_segment(Segment::new(1, Point2::new(0, 2), Point2::new(8, 2)));
//! routes[0] = wire;
//! let out = DetailedRouter::default().route(&design, &routes);
//! assert_eq!(out.wirelength, 8 * 3); // fine grid is 3x the G-cell grid
//! assert_eq!(out.shorts, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use fastgr_design::Design;
use fastgr_grid::{Direction, Route};

/// Configuration of the detailed router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrConfig {
    /// Fine cells (tracks) per G-cell side; 3 matches typical track counts
    /// per G-cell at the scaled grid resolution.
    pub tracks_per_gcell: u8,
    /// Refinement iterations: after the initial assignment, nets involved
    /// in shorts are ripped up and re-assigned against the now-known
    /// occupancy (Dr. CU's iterative flow, reduced to track re-assignment).
    pub refine_iterations: u8,
}

impl Default for DrConfig {
    fn default() -> Self {
        Self {
            tracks_per_gcell: 3,
            refine_iterations: 1,
        }
    }
}

/// Detailed-routing quality metrics (the Table X columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrOutcome {
    /// Routed wirelength in fine-grid units.
    pub wirelength: u64,
    /// Number of vias (global vias plus track-change jog vias).
    pub vias: u64,
    /// Number of shorts (fine cells occupied by more than one net).
    pub shorts: u64,
    /// Number of spacing violations (adjacent-track parallel-run cell
    /// pairs between different nets).
    pub spacing_violations: u64,
}

impl fmt::Display for DrOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dr: wl {} / vias {} / shorts {} / spacing {}",
            self.wirelength, self.vias, self.shorts, self.spacing_violations
        )
    }
}

/// One fine-grid layer plane of net occupancy (`u32::MAX` = free).
#[derive(Debug, Clone)]
struct Plane {
    w: usize,
    cells: Vec<u32>,
}

const FREE: u32 = u32::MAX;

impl Plane {
    fn new(w: usize, h: usize) -> Self {
        Self {
            w,
            cells: vec![FREE; w * h],
        }
    }

    fn get(&self, x: usize, y: usize) -> u32 {
        self.cells[y * self.w + x]
    }

    fn set(&mut self, x: usize, y: usize, net: u32) {
        self.cells[y * self.w + x] = net;
    }
}

/// The guide-constrained fine-grid track assigner. See the crate docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetailedRouter {
    config: DrConfig,
}

impl DetailedRouter {
    /// Creates a detailed router with the given configuration.
    pub fn new(config: DrConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DrConfig {
        &self.config
    }

    /// Performs detailed routing of `routes` (one per net, indexed by net
    /// id) and returns the quality metrics.
    ///
    /// # Panics
    ///
    /// Panics if `routes.len()` differs from the design's net count.
    pub fn route(&self, design: &Design, routes: &[Route]) -> DrOutcome {
        assert_eq!(routes.len(), design.nets().len(), "one route per net");
        let k = self.config.tracks_per_gcell as usize;
        let fw = design.width() as usize * k;
        let fh = design.height() as usize * k;
        let layers = design.layers() as usize;
        let mut planes: Vec<Plane> = (0..layers).map(|_| Plane::new(fw, fh)).collect();

        // Net order: ascending HPWL, ties by id (mirrors the GR ordering).
        let mut order: Vec<u32> = (0..routes.len() as u32).collect();
        order.sort_by_key(|&i| (design.nets()[i as usize].hpwl(), i));

        // Initial assignment.
        let mut per_net = vec![NetAssignment::default(); routes.len()];
        for &net_id in &order {
            per_net[net_id as usize] =
                self.assign_net(&mut planes, net_id, &routes[net_id as usize]);
        }

        // Refinement: rip up shorted nets and re-assign against the full
        // occupancy picture (Dr. CU's iterative improvement, reduced to
        // track re-assignment).
        for _ in 0..self.config.refine_iterations {
            let shorted: Vec<u32> = order
                .iter()
                .copied()
                .filter(|&id| per_net[id as usize].shorts > 0)
                .collect();
            if shorted.is_empty() {
                break;
            }
            for &net_id in &shorted {
                Self::unassign_net(&mut planes, &per_net[net_id as usize]);
                per_net[net_id as usize] =
                    self.assign_net(&mut planes, net_id, &routes[net_id as usize]);
            }
        }

        // Aggregate.
        let mut out = DrOutcome::default();
        for (net_id, a) in per_net.iter().enumerate() {
            out.wirelength += a.wirelength;
            out.vias += a.vias + routes[net_id].via_count();
            out.shorts += a.shorts;
        }

        // Spacing violations: different nets on laterally adjacent tracks.
        for (l, plane) in planes.iter().enumerate() {
            let horizontal = Direction::of_layer(l as u8) == Direction::Horizontal;
            for y in 0..fh {
                for x in 0..fw {
                    let a = plane.get(x, y);
                    if a == FREE {
                        continue;
                    }
                    // Only check the positive cross direction (count each
                    // adjacent pair once).
                    let (nx, ny) = if horizontal { (x, y + 1) } else { (x + 1, y) };
                    if nx < fw && ny < fh {
                        let b = plane.get(nx, ny);
                        if b != FREE && b != a {
                            out.spacing_violations += 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// Assigns one net's wires to fine tracks, committing its occupancy and
    /// recording it for a potential later rip-up.
    fn assign_net(&self, planes: &mut [Plane], net_id: u32, route: &Route) -> NetAssignment {
        let k = self.config.tracks_per_gcell as usize;
        let mut a = NetAssignment::default();
        let mut prev_track: Option<usize> = None;
        for seg in route.segments() {
            let layer = seg.layer as usize;
            let horizontal = Direction::of_layer(seg.layer) == Direction::Horizontal;
            // Fine extent along the running direction (centre to centre).
            let (c0, c1, cross_gcell) = if horizontal {
                (
                    seg.from.x as usize * k + k / 2,
                    seg.to.x as usize * k + k / 2,
                    seg.from.y as usize,
                )
            } else {
                (
                    seg.from.y as usize * k + k / 2,
                    seg.to.y as usize * k + k / 2,
                    seg.from.x as usize,
                )
            };
            // Candidate tracks within the G-cell corridor, centre first.
            let base = cross_gcell * k;
            let mut candidates: Vec<usize> = vec![base + k / 2];
            for d in 1..=k / 2 {
                if k / 2 >= d {
                    candidates.push(base + k / 2 - d);
                }
                if k / 2 + d < k {
                    candidates.push(base + k / 2 + d);
                }
            }
            // Pick the track with the least foreign occupancy.
            let occupancy = |track: usize| -> u64 {
                (c0..=c1)
                    .filter(|&c| {
                        let (x, y) = if horizontal { (c, track) } else { (track, c) };
                        let owner = planes[layer].get(x, y);
                        owner != FREE && owner != net_id
                    })
                    .count() as u64
            };
            let track = candidates
                .iter()
                .copied()
                .min_by_key(|&t| occupancy(t))
                .expect("k >= 1");

            // Commit the wire: overlaps become shorts. Cells already owned
            // by a foreign net stay with that owner so a later rip-up of
            // this net cannot erase someone else's wire.
            let mut owned = Vec::with_capacity(c1 - c0 + 1);
            for c in c0..=c1 {
                let (x, y) = if horizontal { (c, track) } else { (track, c) };
                let owner = planes[layer].get(x, y);
                if owner != FREE && owner != net_id {
                    a.shorts += 1;
                } else {
                    planes[layer].set(x, y, net_id);
                    owned.push((layer, x, y));
                }
            }
            a.cells.extend(owned);
            a.wirelength += (c1 - c0) as u64;

            // Track-change jog relative to the previous segment of the
            // same net: adds jog wirelength and one via.
            if let Some(prev) = prev_track {
                let jog = prev.abs_diff(track) as u64;
                if jog > 0 {
                    a.wirelength += jog;
                    a.vias += 1;
                }
            }
            prev_track = Some(track);
        }
        a
    }

    /// Removes a net's committed occupancy.
    fn unassign_net(planes: &mut [Plane], a: &NetAssignment) {
        for &(layer, x, y) in &a.cells {
            planes[layer].set(x, y, FREE);
        }
    }
}

/// One net's fine-grid assignment record.
#[derive(Debug, Clone, Default)]
struct NetAssignment {
    cells: Vec<(usize, usize, usize)>,
    wirelength: u64,
    vias: u64,
    shorts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::{Generator, GeneratorParams};
    use fastgr_grid::{Point2, Segment, Via};

    fn tiny_design(capacity: f64, seed: u64) -> Design {
        Generator::new(GeneratorParams {
            name: "dr-test".into(),
            width: 16,
            height: 16,
            layers: 5,
            num_nets: 120,
            capacity,
            hotspots: 2,
            hotspot_affinity: 0.5,
            blockages: 1,
            seed,
        })
        .generate()
    }

    fn empty_routes(design: &Design) -> Vec<Route> {
        vec![Route::new(); design.nets().len()]
    }

    #[test]
    fn empty_routes_have_clean_metrics() {
        let design = tiny_design(8.0, 1);
        let out = DetailedRouter::default().route(&design, &empty_routes(&design));
        assert_eq!(out, DrOutcome::default());
    }

    #[test]
    fn disjoint_wires_cause_no_violations() {
        let design = tiny_design(8.0, 1);
        let mut routes = empty_routes(&design);
        let mut r0 = Route::new();
        r0.push_segment(Segment::new(1, Point2::new(0, 2), Point2::new(8, 2)));
        routes[0] = r0;
        let mut r1 = Route::new();
        r1.push_segment(Segment::new(1, Point2::new(0, 10), Point2::new(8, 10)));
        routes[1] = r1;
        let out = DetailedRouter::default().route(&design, &routes);
        assert_eq!(out.shorts, 0);
        assert_eq!(out.spacing_violations, 0);
        assert_eq!(out.wirelength, 2 * 8 * 3);
    }

    #[test]
    fn overloaded_corridor_produces_shorts() {
        let design = tiny_design(8.0, 1);
        let mut routes = empty_routes(&design);
        // Five nets through the same G-cell row on the same layer: only 3
        // tracks exist, so at least two nets must overlap.
        for slot in routes.iter_mut().take(5) {
            let mut r = Route::new();
            r.push_segment(Segment::new(1, Point2::new(0, 5), Point2::new(10, 5)));
            *slot = r;
        }
        let out = DetailedRouter::default().route(&design, &routes);
        assert!(out.shorts > 0, "expected shorts, got {out}");
        assert!(out.spacing_violations > 0);
    }

    #[test]
    fn three_nets_fill_tracks_without_shorts() {
        let design = tiny_design(8.0, 1);
        let mut routes = empty_routes(&design);
        for slot in routes.iter_mut().take(3) {
            let mut r = Route::new();
            r.push_segment(Segment::new(1, Point2::new(0, 5), Point2::new(10, 5)));
            *slot = r;
        }
        let out = DetailedRouter::default().route(&design, &routes);
        assert_eq!(out.shorts, 0, "3 tracks fit 3 nets");
        // Parallel adjacent tracks: spacing violations are expected.
        assert!(out.spacing_violations > 0);
    }

    #[test]
    fn vias_count_global_vias_plus_jogs() {
        let design = tiny_design(8.0, 1);
        let mut routes = empty_routes(&design);
        let mut r = Route::new();
        r.push_segment(Segment::new(1, Point2::new(0, 5), Point2::new(5, 5)));
        r.push_via(Via::new(Point2::new(5, 5), 1, 2));
        r.push_segment(Segment::new(2, Point2::new(5, 5), Point2::new(5, 9)));
        routes[0] = r;
        let out = DetailedRouter::default().route(&design, &routes);
        assert!(out.vias >= 1);
    }

    #[test]
    fn refinement_reduces_or_preserves_shorts() {
        let design = tiny_design(8.0, 2);
        let mut routes = empty_routes(&design);
        // Four nets squeezed through one corridor plus side corridors: the
        // first pass shorts, refinement can re-balance.
        for slot in routes.iter_mut().take(4) {
            let mut r = Route::new();
            r.push_segment(Segment::new(1, Point2::new(0, 5), Point2::new(10, 5)));
            *slot = r;
        }
        let zero = DetailedRouter::new(DrConfig {
            tracks_per_gcell: 3,
            refine_iterations: 0,
        })
        .route(&design, &routes);
        let refined = DetailedRouter::new(DrConfig {
            tracks_per_gcell: 3,
            refine_iterations: 2,
        })
        .route(&design, &routes);
        assert!(
            refined.shorts <= zero.shorts,
            "refined {refined} vs raw {zero}"
        );
    }

    #[test]
    fn rip_up_never_erases_foreign_wires() {
        // A net overlapping another must not remove the other's occupancy
        // when re-assigned: total shorts must stay consistent across
        // refinement iterations (no panic, no negative accounting).
        let design = tiny_design(8.0, 3);
        let mut routes = empty_routes(&design);
        for slot in routes.iter_mut().take(6) {
            let mut r = Route::new();
            r.push_segment(Segment::new(1, Point2::new(0, 7), Point2::new(12, 7)));
            *slot = r;
        }
        for iters in [0u8, 1, 3] {
            let out = DetailedRouter::new(DrConfig {
                tracks_per_gcell: 3,
                refine_iterations: iters,
            })
            .route(&design, &routes);
            // 6 nets into 3 tracks: at least 3 nets' worth of overlap.
            assert!(out.shorts > 0);
            assert!(out.wirelength >= 6 * 12 * 3);
        }
    }

    #[test]
    fn worse_guides_give_worse_detailed_quality() {
        use fastgr_core::{Router, RouterConfig};
        // Same design, two guide qualities: pattern-only routing leaves
        // more overflow than routing with rip-up-and-reroute, so its
        // detailed solution must have at least as many shorts. The DR
        // track count matches the GR capacity (3) so the comparison is
        // apples to apples.
        let design = tiny_design(3.0, 7);
        let mut pattern_only = RouterConfig::cugr();
        pattern_only.rrr_iterations = 0;
        let rough = Router::new(pattern_only).run(&design).expect("ok");
        let refined = Router::new(RouterConfig::cugr()).run(&design).expect("ok");
        assert!(refined.metrics.shorts <= rough.metrics.shorts);
        let dr = DetailedRouter::new(DrConfig {
            tracks_per_gcell: 3,
            ..DrConfig::default()
        });
        let dr_rough = dr.route(&design, &rough.routes);
        let dr_refined = dr.route(&design, &refined.routes);
        assert!(
            dr_refined.shorts <= dr_rough.shorts,
            "refined {dr_refined} vs rough {dr_rough}"
        );
    }
}
