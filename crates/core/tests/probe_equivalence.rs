//! Full-suite equivalence contract of the prefix-sum cost prober: the
//! pattern stage must emit byte-identical routes whether kernels probe
//! O(1) prefix differences or walk gcells directly, for every engine and
//! candidate-set mode — and, with probing on, byte-identical routes for
//! any host worker count. Both sides evaluate the same Q44.20 quantised
//! cost domain, so these are exact equality tests.

use fastgr_core::{PatternEngine, PatternMode, PatternStage, SelectionThresholds, SortingScheme};
use fastgr_design::{Design, Generator, GeneratorParams};
use fastgr_gpu::DeviceConfig;
use fastgr_grid::{CostParams, Route};

fn congested_design() -> Design {
    Generator::new(GeneratorParams {
        name: "probe-equivalence".into(),
        width: 24,
        height: 24,
        layers: 6,
        num_nets: 240,
        capacity: 4.0,
        hotspots: 2,
        hotspot_affinity: 0.5,
        blockages: 2,
        seed: 33,
    })
    .generate()
}

fn route_once(
    design: &Design,
    engine: PatternEngine,
    mode: PatternMode,
    cost_probing: bool,
) -> (Vec<Route>, f64) {
    let mut graph = design
        .build_graph(CostParams::default())
        .expect("suite designs build");
    let outcome = PatternStage {
        mode,
        engine,
        sorting: SortingScheme::HpwlAscending,
        steiner_passes: 4,
        congestion_aware_planning: false,
        cost_probing,
        validate: true,
    }
    .run(design, &mut graph)
    .expect("routable");
    (outcome.routes, graph.report().total_wire_demand)
}

/// Probed and direct cost evaluation agree bit-for-bit on every
/// engine × mode combination of the full suite.
#[test]
fn probed_routes_match_direct_routes_across_engines_and_modes() {
    let design = congested_design();
    let engines = [
        PatternEngine::SequentialCpu,
        PatternEngine::GpuFlow(DeviceConfig::rtx3090_like()),
        PatternEngine::ParallelCpu { workers: 2 },
    ];
    let modes = [
        PatternMode::LShape,
        PatternMode::ZShape,
        PatternMode::HybridAll,
        PatternMode::Hybrid(SelectionThresholds::default()),
    ];
    for engine in engines {
        for mode in modes {
            let (probed, probed_demand) = route_once(&design, engine, mode, true);
            let (direct, direct_demand) = route_once(&design, engine, mode, false);
            assert_eq!(
                probed, direct,
                "{engine:?} {mode:?}: probed and direct routes diverged"
            );
            assert_eq!(probed_demand, direct_demand);
        }
    }
}

/// With the prober on, routed outputs are byte-identical across host
/// worker counts (the parallel rebuild must not perturb results).
#[test]
fn probed_routes_identical_across_worker_counts() {
    let design = congested_design();
    let baseline = route_once(
        &design,
        PatternEngine::GpuFlow(DeviceConfig::rtx3090_like().with_host_workers(1)),
        PatternMode::HybridAll,
        true,
    );
    for workers in [2usize, 4] {
        let run = route_once(
            &design,
            PatternEngine::GpuFlow(DeviceConfig::rtx3090_like().with_host_workers(workers)),
            PatternMode::HybridAll,
            true,
        );
        assert_eq!(
            baseline.0, run.0,
            "worker count {workers} changed the routed output"
        );
        assert_eq!(baseline.1, run.1);
    }
    for workers in [1usize, 2, 4] {
        let run = route_once(
            &design,
            PatternEngine::ParallelCpu { workers },
            PatternMode::HybridAll,
            true,
        );
        assert_eq!(
            baseline.0, run.0,
            "ParallelCpu worker count {workers} changed the routed output"
        );
    }
}
