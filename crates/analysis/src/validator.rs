//! Static schedule soundness validator.
//!
//! The scheduler (paper Section III-B, Algorithm 1) claims its output is a
//! DAG in which no two conflicting tasks can ever run concurrently. This
//! module *proves* that claim for a concrete [`Schedule`] instead of
//! assuming it:
//!
//! 1. **acyclicity** — a topological order exists (witnessed by Kahn
//!    peeling; on failure the report carries a minimal witness cycle);
//! 2. **orientation** — every conflict edge is oriented into exactly one
//!    dependency edge, and every dependency edge follows the scheduler's
//!    global priority (root batch first, then sorted order), so a single
//!    reversed edge is always detected even when it happens not to close a
//!    cycle;
//! 3. **independence** — the root batch and every execution frontier
//!    ([`Schedule::levels`]) are independent sets of the conflict graph;
//! 4. **accounting** — work and critical-path span are recomputed from
//!    scratch and cross-checked against [`Schedule::work_and_span`] and
//!    [`Schedule::simulate_workers`].
//!
//! Mutation testing is first-class: [`ScheduleView`] is a plain-data copy
//! of a schedule that tests (and `cargo xtask check`) deliberately break —
//! reverse an edge, drop an edge, merge a conflicting task into the root
//! batch — to prove the validator rejects each corruption.

use fastgr_taskgraph::{ConflictGraph, Schedule};

use crate::diagnostics::{Diagnostic, ValidationReport};

/// A plain-data copy of a schedule's oriented task graph, open to deliberate
/// corruption for mutation tests.
///
/// [`Schedule`] is correct by construction and immutable; the validator
/// therefore checks this view, which can also represent *broken* schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleView {
    successors: Vec<Vec<u32>>,
    root_batch: Vec<u32>,
    priority: Vec<u32>,
}

impl ScheduleView {
    /// Copies the oriented task graph out of a schedule.
    pub fn from_schedule(schedule: &Schedule) -> Self {
        let n = schedule.task_count() as u32;
        Self {
            successors: (0..n).map(|t| schedule.successors(t).to_vec()).collect(),
            root_batch: schedule.root_batch().to_vec(),
            priority: (0..n).map(|t| schedule.priority(t)).collect(),
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.successors.len()
    }

    /// The tasks that must wait for `t`.
    pub fn successors(&self, t: u32) -> &[u32] {
        &self.successors[t as usize]
    }

    /// The root task batch.
    pub fn root_batch(&self) -> &[u32] {
        &self.root_batch
    }

    /// Whether the dependency edge `from -> to` exists.
    pub fn has_edge(&self, from: u32, to: u32) -> bool {
        self.successors[from as usize].contains(&to)
    }

    /// Mutation: reverses the dependency edge `from -> to` (mis-orienting
    /// the underlying conflict edge). Returns whether the edge existed.
    pub fn reverse_edge(&mut self, from: u32, to: u32) -> bool {
        if !self.drop_edge(from, to) {
            return false;
        }
        self.successors[to as usize].push(from);
        self.successors[to as usize].sort_unstable();
        true
    }

    /// Mutation: removes the dependency edge `from -> to`, leaving the
    /// underlying conflict edge unoriented — the two tasks then share an
    /// execution frontier, i.e. their batches merge. Returns whether the
    /// edge existed.
    pub fn drop_edge(&mut self, from: u32, to: u32) -> bool {
        let succ = &mut self.successors[from as usize];
        match succ.iter().position(|&s| s == to) {
            Some(i) => {
                succ.remove(i);
                true
            }
            None => false,
        }
    }

    /// Mutation: forces `t` into the root batch (merging it with a batch it
    /// may conflict with).
    pub fn push_root(&mut self, t: u32) {
        self.root_batch.push(t);
    }
}

/// Validates a schedule against the conflict graph it was built from.
///
/// Checks the view invariants (see [`validate_view`]) plus the schedule's
/// work/span accounting. Clean means the schedule is sound: executing it
/// with any executor that honours the dependency edges can never run two
/// conflicting tasks concurrently.
pub fn validate_schedule(schedule: &Schedule, conflicts: &ConflictGraph) -> ValidationReport {
    let mut report = validate_view(&ScheduleView::from_schedule(schedule), conflicts);

    // Accounting cross-check: recompute work and span from scratch over an
    // irregular deterministic cost vector and compare.
    let n = schedule.task_count();
    let costs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
    let (work, span) = schedule.work_and_span(&costs);
    let (expect_work, expect_span) = recompute_work_and_span(schedule, &costs);
    if (work - expect_work).abs() > 1e-9 {
        report.push(Diagnostic::error(
            "work-mismatch",
            format!("Schedule::work_and_span work {work} != recomputed {expect_work}"),
        ));
    }
    if (span - expect_span).abs() > 1e-9 {
        report.push(Diagnostic::error(
            "span-mismatch",
            format!("Schedule::work_and_span span {span} != recomputed {expect_span}"),
        ));
    }
    // One worker realises exactly the total work; infinitely many realise
    // the span (list scheduling on a DAG).
    if n > 0 {
        let t1 = schedule.simulate_workers(&costs, 1);
        if (t1 - expect_work).abs() > 1e-6 {
            report.push(Diagnostic::error(
                "simulate-mismatch",
                format!("simulate_workers(1) {t1} != total work {expect_work}"),
            ));
        }
        let t_inf = schedule.simulate_workers(&costs, n);
        if (t_inf - expect_span).abs() > 1e-6 {
            report.push(Diagnostic::error(
                "simulate-mismatch",
                format!("simulate_workers(n) {t_inf} != span {expect_span}"),
            ));
        }
    }
    report
}

/// Validates a (possibly corrupted) schedule view against the conflict
/// graph: acyclicity, conflict-edge orientation, priority consistency, and
/// independence of the root batch and of every execution frontier.
pub fn validate_view(view: &ScheduleView, conflicts: &ConflictGraph) -> ValidationReport {
    let n = view.task_count();
    let mut report = ValidationReport {
        tasks_checked: n,
        conflict_edges_checked: conflicts.edge_count(),
        ..Default::default()
    };
    if n != conflicts.task_count() {
        report.push(Diagnostic::error(
            "task-count-mismatch",
            format!(
                "schedule has {n} tasks but the conflict graph has {}",
                conflicts.task_count()
            ),
        ));
        return report;
    }

    // --- 1. Acyclicity (Kahn peeling; witness cycle on failure). ---
    let levels = kahn_levels(view, &mut report);

    // --- 2. Every conflict edge oriented into exactly one dependency. ---
    for a in 0..n as u32 {
        for &b in conflicts.neighbors(a) {
            if b <= a {
                continue; // one check per undirected conflict edge
            }
            let fwd = view.has_edge(a, b);
            let bwd = view.has_edge(b, a);
            match (fwd, bwd) {
                (false, false) => report.push(
                    Diagnostic::error(
                        "conflict-edge-unoriented",
                        format!(
                            "conflicting tasks {a} and {b} share no dependency edge; \
                             an executor may run them concurrently"
                        ),
                    )
                    .with_tasks(a, b)
                    .with_witness(vec![a, b]),
                ),
                (true, true) => report.push(
                    Diagnostic::error(
                        "conflict-edge-doubly-oriented",
                        format!("tasks {a} and {b} depend on each other (2-cycle)"),
                    )
                    .with_tasks(a, b)
                    .with_witness(vec![a, b, a]),
                ),
                _ => {}
            }
        }
    }

    // --- 3. Dependency edges follow the scheduler's global priority. ---
    // This catches a reversed edge even when the reversal happens not to
    // close a cycle (e.g. an isolated conflicting pair).
    for t in 0..n as u32 {
        for &s in view.successors(t) {
            if (s as usize) >= n {
                report.push(Diagnostic::error(
                    "edge-out-of-range",
                    format!("edge {t} -> {s} references a task out of range"),
                ));
                continue;
            }
            if view.priority[t as usize] >= view.priority[s as usize] {
                report.push(
                    Diagnostic::error(
                        "edge-against-priority",
                        format!(
                            "edge {t} -> {s} runs against the global priority \
                             ({} >= {}); the orientation rule was not applied",
                            view.priority[t as usize], view.priority[s as usize]
                        ),
                    )
                    .with_tasks(t, s)
                    .with_witness(vec![t, s]),
                );
            }
        }
    }

    // --- 4. Root batch: declared tasks exist, appear once, have no
    //        predecessors, and form an independent set. ---
    let mut in_degree = vec![0u32; n];
    for t in 0..n as u32 {
        for &s in view.successors(t) {
            if (s as usize) < n {
                in_degree[s as usize] += 1;
            }
        }
    }
    let mut in_root = vec![false; n];
    for &t in view.root_batch() {
        if (t as usize) >= n {
            report.push(Diagnostic::error(
                "root-out-of-range",
                format!("root batch lists task {t}, which does not exist"),
            ));
            continue;
        }
        if in_root[t as usize] {
            report.push(Diagnostic::error(
                "root-duplicate",
                format!("root batch lists task {t} twice"),
            ));
        }
        in_root[t as usize] = true;
        if in_degree[t as usize] != 0 {
            report.push(Diagnostic::error(
                "root-has-predecessors",
                format!(
                    "root-batch task {t} waits on {} predecessor(s)",
                    in_degree[t as usize]
                ),
            ));
        }
    }
    check_independent_set(
        view.root_batch(),
        &in_root,
        conflicts,
        "root-batch-conflict",
        "root batch",
        &mut report,
    );

    // --- 5. Every execution frontier is an independent set. ---
    let mut in_level = vec![false; n];
    for (k, level) in levels.iter().enumerate() {
        for &t in level {
            in_level[t as usize] = true;
        }
        check_independent_set(
            level,
            &in_level,
            conflicts,
            "frontier-conflict",
            &format!("execution frontier {k}"),
            &mut report,
        );
        for &t in level {
            in_level[t as usize] = false;
        }
    }

    report
}

/// Validates the raw output of `extract_batches` (Algorithm 1): the batches
/// must partition `0..conflicts.task_count()` (every task exactly once) and
/// each batch must be an independent set of the conflict graph.
pub fn validate_batches(batches: &[Vec<u32>], conflicts: &ConflictGraph) -> ValidationReport {
    let n = conflicts.task_count();
    let mut report = ValidationReport {
        tasks_checked: n,
        conflict_edges_checked: conflicts.edge_count(),
        ..Default::default()
    };
    let mut seen = vec![false; n];
    let mut in_batch = vec![false; n];
    for (k, batch) in batches.iter().enumerate() {
        for &t in batch {
            if (t as usize) >= n {
                report.push(Diagnostic::error(
                    "batch-out-of-range",
                    format!("batch {k} lists task {t}, which does not exist"),
                ));
                continue;
            }
            if seen[t as usize] {
                report.push(Diagnostic::error(
                    "batch-duplicate",
                    format!("task {t} appears in more than one batch (again in batch {k})"),
                ));
            }
            seen[t as usize] = true;
            in_batch[t as usize] = true;
        }
        check_independent_set(
            batch,
            &in_batch,
            conflicts,
            "batch-conflict",
            &format!("batch {k}"),
            &mut report,
        );
        for &t in batch {
            if (t as usize) < n {
                in_batch[t as usize] = false;
            }
        }
    }
    for (t, &covered) in seen.iter().enumerate() {
        if !covered {
            report.push(Diagnostic::error(
                "batch-missing-task",
                format!("task {t} is in no batch"),
            ));
        }
    }
    report
}

/// Reports every conflicting pair inside `members` (membership given by the
/// `included` bitmap) once, as `rule`.
fn check_independent_set(
    members: &[u32],
    included: &[bool],
    conflicts: &ConflictGraph,
    rule: &'static str,
    what: &str,
    report: &mut ValidationReport,
) {
    for &a in members {
        if (a as usize) >= included.len() {
            continue;
        }
        for &b in conflicts.neighbors(a) {
            if b > a && included[b as usize] {
                report.push(
                    Diagnostic::error(
                        rule,
                        format!("{what} contains the conflicting tasks {a} and {b}"),
                    )
                    .with_tasks(a, b)
                    .with_witness(vec![a, b]),
                );
            }
        }
    }
}

/// Kahn peeling over the view. Returns the execution frontiers; if peeling
/// stalls before covering every task, pushes a `dependency-cycle` error
/// carrying a minimal witness cycle.
fn kahn_levels(view: &ScheduleView, report: &mut ValidationReport) -> Vec<Vec<u32>> {
    let n = view.task_count();
    let mut in_deg = vec![0u32; n];
    for t in 0..n as u32 {
        for &s in view.successors(t) {
            if (s as usize) < n {
                in_deg[s as usize] += 1;
            }
        }
    }
    let mut frontier: Vec<u32> = (0..n as u32).filter(|&t| in_deg[t as usize] == 0).collect();
    let mut levels = Vec::new();
    let mut peeled = 0usize;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &t in &frontier {
            for &s in view.successors(t) {
                if (s as usize) >= n {
                    continue;
                }
                in_deg[s as usize] -= 1;
                if in_deg[s as usize] == 0 {
                    next.push(s);
                }
            }
        }
        peeled += frontier.len();
        next.sort_unstable();
        levels.push(std::mem::replace(&mut frontier, next));
    }
    if peeled < n {
        let alive: Vec<bool> = in_deg.iter().map(|&d| d > 0).collect();
        let witness = find_cycle(view, &alive);
        let pair = match witness.as_slice() {
            [a, .., b] => Some((*a, *b)),
            _ => None,
        };
        let mut d = Diagnostic::error(
            "dependency-cycle",
            format!(
                "no topological order exists: {} task(s) are stuck on a cycle",
                n - peeled
            ),
        )
        .with_witness(witness);
        if let Some((a, b)) = pair {
            d = d.with_tasks(a, b);
        }
        report.push(d);
    }
    levels
}

/// Finds one cycle among the `alive` tasks (every alive task lies on or
/// leads into a cycle, so a DFS from any of them must close one). Returns
/// the cycle as a path `v -> ... -> v`.
fn find_cycle(view: &ScheduleView, alive: &[bool]) -> Vec<u32> {
    let n = view.task_count();
    // 0 = white, 1 = on the current DFS path, 2 = finished.
    let mut color = vec![0u8; n];
    for start in 0..n as u32 {
        if !alive[start as usize] || color[start as usize] != 0 {
            continue;
        }
        // Iterative DFS keeping the current path for witness extraction.
        let mut path: Vec<u32> = vec![start];
        let mut iter_stack: Vec<usize> = vec![0];
        color[start as usize] = 1;
        while let Some(&v) = path.last() {
            let i = *iter_stack.last().unwrap_or(&0);
            let succs = view.successors(v);
            if i < succs.len() {
                *iter_stack.last_mut().expect("in sync with path") += 1;
                let s = succs[i];
                if (s as usize) >= n || !alive[s as usize] {
                    continue;
                }
                match color[s as usize] {
                    0 => {
                        color[s as usize] = 1;
                        path.push(s);
                        iter_stack.push(0);
                    }
                    1 => {
                        // Found: the cycle is the path suffix from s.
                        let from = path.iter().position(|&p| p == s).unwrap_or(0);
                        let mut cycle: Vec<u32> = path[from..].to_vec();
                        cycle.push(s);
                        return cycle;
                    }
                    _ => {}
                }
            } else {
                color[v as usize] = 2;
                path.pop();
                iter_stack.pop();
            }
        }
    }
    Vec::new()
}

/// Independent recomputation of total work and critical-path span (reverse
/// topological longest path over the *schedule's* claimed order).
fn recompute_work_and_span(schedule: &Schedule, costs: &[f64]) -> (f64, f64) {
    let work: f64 = costs.iter().sum();
    let order = schedule.topo_order();
    // Forward longest-path relaxation in topological order: finish[t] is
    // the earliest time t can complete on an ideal machine.
    let mut finish: Vec<f64> = costs.to_vec();
    for &t in &order {
        let end = finish[t as usize];
        for &s in schedule.successors(t) {
            let candidate = end + costs[s as usize];
            if candidate > finish[s as usize] {
                finish[s as usize] = candidate;
            }
        }
    }
    let span = finish.into_iter().fold(0.0, f64::max);
    (work, span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_grid::{Point2, Rect};

    fn rect(x0: u16, y0: u16, x1: u16, y1: u16) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    fn fixture() -> (Vec<Rect>, ConflictGraph, Schedule) {
        // 0 and 2 independent (root batch); 1 conflicts with both; 3 is a
        // free-standing task; 4 conflicts with 3 only.
        let boxes = vec![
            rect(0, 0, 4, 4),
            rect(3, 3, 8, 8),
            rect(7, 7, 9, 9),
            rect(20, 0, 22, 2),
            rect(21, 1, 24, 4),
        ];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let order: Vec<u32> = (0..boxes.len() as u32).collect();
        let schedule = Schedule::build(&order, &conflicts);
        (boxes, conflicts, schedule)
    }

    #[test]
    fn built_schedules_validate_clean() {
        let (_, conflicts, schedule) = fixture();
        let report = validate_schedule(&schedule, &conflicts);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.tasks_checked, 5);
        assert_eq!(report.conflict_edges_checked, 3);
    }

    #[test]
    fn empty_schedule_validates_clean() {
        let conflicts = ConflictGraph::from_bounding_boxes(&[]);
        let schedule = Schedule::build(&[], &conflicts);
        assert!(validate_schedule(&schedule, &conflicts).is_clean());
    }

    #[test]
    fn reversed_conflict_edge_is_rejected() {
        let (_, conflicts, schedule) = fixture();
        // Edge 3 -> 4 is an isolated pair: reversing it keeps the graph
        // acyclic, so only the priority rule can catch it.
        let mut view = ScheduleView::from_schedule(&schedule);
        assert!(view.reverse_edge(3, 4));
        let report = validate_view(&view, &conflicts);
        assert!(!report.is_clean());
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == "edge-against-priority" && d.tasks == Some((4, 3))),
            "{report}"
        );
    }

    #[test]
    fn reversal_closing_a_cycle_yields_a_witness_path() {
        // Chain 0 -> 1 -> 2 (clique): reversing 0 -> 1 leaves 1 -> 2 and
        // 0 -> 2 and adds 1 -> 0? No — reverse 0 -> 2 so 1 -> 2 -> 0 with
        // 0 -> 1 closes the 3-cycle 0 -> 1 -> 2 -> 0.
        let boxes = vec![rect(0, 0, 9, 9), rect(1, 1, 8, 8), rect(2, 2, 7, 7)];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let schedule = Schedule::build(&[0, 1, 2], &conflicts);
        let mut view = ScheduleView::from_schedule(&schedule);
        assert!(view.reverse_edge(0, 2));
        let report = validate_view(&view, &conflicts);
        let cycle = report
            .diagnostics
            .iter()
            .find(|d| d.rule == "dependency-cycle")
            .expect("cycle detected");
        assert!(cycle.witness.len() >= 4, "witness: {:?}", cycle.witness);
        assert_eq!(cycle.witness.first(), cycle.witness.last());
        // Each witness hop is a real edge of the (mutated) view.
        for pair in cycle.witness.windows(2) {
            assert!(view.has_edge(pair[0], pair[1]), "{:?}", cycle.witness);
        }
    }

    #[test]
    fn dropped_conflict_edge_is_rejected_as_unoriented_and_frontier_merge() {
        let (_, conflicts, schedule) = fixture();
        let mut view = ScheduleView::from_schedule(&schedule);
        assert!(view.drop_edge(0, 1));
        let report = validate_view(&view, &conflicts);
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "conflict-edge-unoriented" && d.tasks == Some((0, 1))));
    }

    #[test]
    fn conflicting_task_forced_into_root_batch_is_rejected() {
        let (_, conflicts, schedule) = fixture();
        let mut view = ScheduleView::from_schedule(&schedule);
        view.push_root(1); // conflicts with root tasks 0 and 2
        let report = validate_view(&view, &conflicts);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "root-batch-conflict"));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "root-has-predecessors"));
    }

    #[test]
    fn batches_from_extract_batches_validate_clean() {
        let (boxes, conflicts, _) = fixture();
        let order: Vec<u32> = (0..boxes.len() as u32).collect();
        let batches = fastgr_taskgraph::extract_batches(&order, &conflicts);
        assert!(validate_batches(&batches, &conflicts).is_clean());
    }

    #[test]
    fn merged_conflicting_batches_are_rejected() {
        let (boxes, conflicts, _) = fixture();
        let order: Vec<u32> = (0..boxes.len() as u32).collect();
        let mut batches = fastgr_taskgraph::extract_batches(&order, &conflicts);
        assert!(batches.len() >= 2, "fixture produces multiple batches");
        // Merge the second batch into the first: tasks that were split
        // *because* they conflict now share a batch.
        let merged = batches.remove(1);
        batches[0].extend(merged);
        let report = validate_batches(&batches, &conflicts);
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "batch-conflict"));
    }

    #[test]
    fn incomplete_batch_cover_is_rejected() {
        let (_, conflicts, _) = fixture();
        let batches = vec![vec![0, 2], vec![1, 1], vec![3]]; // 4 missing, 1 duplicated
        let report = validate_batches(&batches, &conflicts);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "batch-duplicate"));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "batch-missing-task"));
    }

    #[test]
    fn task_count_mismatch_short_circuits() {
        let (_, conflicts, _) = fixture();
        let view = ScheduleView {
            successors: vec![Vec::new(); 2],
            root_batch: vec![0, 1],
            priority: vec![0, 1],
        };
        let report = validate_view(&view, &conflicts);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, "task-count-mismatch");
    }
}
