//! Property-based integration tests of the scheduling pipeline against the
//! router's actual workloads.

use fastgr::design::{Generator, GeneratorParams};
use fastgr::grid::Rect;
use fastgr::taskgraph::{extract_batches, ConflictGraph, Executor, Schedule};
use proptest::prelude::*;

/// Conflict graph and order from a real design's net bounding boxes.
fn real_workload(seed: u64, nets: usize) -> (Vec<Rect>, ConflictGraph, Vec<u32>) {
    let design = Generator::new(GeneratorParams {
        num_nets: nets,
        seed,
        ..GeneratorParams::default()
    })
    .generate();
    let boxes: Vec<Rect> = design.nets().iter().map(|n| n.bounding_box()).collect();
    let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
    let order: Vec<u32> = (0..boxes.len() as u32).collect();
    (boxes, conflicts, order)
}

#[test]
fn batches_of_a_real_design_are_conflict_free() {
    let (_, conflicts, order) = real_workload(11, 400);
    let batches = extract_batches(&order, &conflicts);
    let total: usize = batches.iter().map(Vec::len).sum();
    assert_eq!(total, 400);
    for batch in &batches {
        for (i, &a) in batch.iter().enumerate() {
            for &b in &batch[i + 1..] {
                assert!(!conflicts.conflicts(a, b));
            }
        }
    }
}

#[test]
fn schedule_of_a_real_design_is_acyclic_and_complete() {
    let (_, conflicts, order) = real_workload(13, 400);
    let schedule = Schedule::build(&order, &conflicts);
    // Priorities strictly increase along dependencies.
    for t in 0..schedule.task_count() as u32 {
        for &s in schedule.successors(t) {
            assert!(schedule.priority(t) < schedule.priority(s));
        }
    }
    // Every conflict edge was oriented exactly once.
    let oriented: usize = (0..schedule.task_count() as u32)
        .map(|t| schedule.successors(t).len())
        .sum();
    assert_eq!(oriented, conflicts.edge_count());
}

#[test]
fn executor_respects_every_dependency_under_contention() {
    let (_, conflicts, order) = real_workload(17, 300);
    let schedule = Schedule::build(&order, &conflicts);
    // Record completion stamps; every successor must finish after all its
    // predecessors.
    let stamps: Vec<std::sync::atomic::AtomicU64> = (0..300)
        .map(|_| std::sync::atomic::AtomicU64::new(0))
        .collect();
    let counter = std::sync::atomic::AtomicU64::new(1);
    Executor::new(4).run(&schedule, |t| {
        let stamp = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        stamps[t as usize].store(stamp, std::sync::atomic::Ordering::SeqCst);
    });
    for t in 0..300u32 {
        let own = stamps[t as usize].load(std::sync::atomic::Ordering::SeqCst);
        assert_ne!(own, 0, "task {t} never ran");
        for &s in schedule.successors(t) {
            let succ = stamps[s as usize].load(std::sync::atomic::Ordering::SeqCst);
            assert!(own < succ, "task {t} must complete before successor {s}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn work_span_bounds_hold_for_real_workloads(seed in 0u64..500) {
        let (_, conflicts, order) = real_workload(seed, 150);
        let schedule = Schedule::build(&order, &conflicts);
        let costs: Vec<f64> =
            (0..schedule.task_count()).map(|i| 0.5 + (i % 7) as f64).collect();
        let (work, span) = schedule.work_and_span(&costs);
        prop_assert!(span <= work + 1e-9);
        for w in [1usize, 4, 64] {
            let t = schedule.simulate_workers(&costs, w);
            // Greedy list scheduling obeys Graham's bound.
            prop_assert!(t + 1e-6 >= span.max(work / w as f64));
            prop_assert!(t <= work / w as f64 + span + 1e-6);
        }
    }

    #[test]
    fn executor_and_schedule_agree_on_clique_order(seed in 0u64..100) {
        // All tasks mutually conflicting: the executor must follow the
        // schedule's total order exactly.
        let boxes = vec![Rect::new(
            fastgr::grid::Point2::new(0, 0),
            fastgr::grid::Point2::new(9, 9),
        ); 12];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let mut order: Vec<u32> = (0..12).collect();
        // An arbitrary seed-derived permutation as the "sorted order".
        let mut rng = fastgr::design::SplitMix64::new(seed);
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let schedule = Schedule::build(&order, &conflicts);
        let log = parking_lot_log();
        Executor::new(3).run(&schedule, |t| log.lock().unwrap().push(t));
        let ran = log.lock().unwrap().clone();
        prop_assert_eq!(ran, order);
    }
}

fn parking_lot_log() -> std::sync::Mutex<Vec<u32>> {
    std::sync::Mutex::new(Vec::new())
}
