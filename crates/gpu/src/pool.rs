//! Host-side worker pool that executes simulated-device blocks in
//! parallel.
//!
//! The paper's headline speed-ups come from running one block per net
//! concurrently on the GPU's SM array. The simulated device used to invoke
//! every block sequentially on one host thread, so the *modeled* time was
//! parallel but the *wall-clock* time never was. [`HostPool`] closes that
//! gap: block indices are handed out in contiguous chunks through an
//! atomic cursor to scoped worker threads, so conflict-free blocks (and
//! any other index-parallel host work, such as Steiner-tree planning)
//! execute with real CPU parallelism while remaining deterministic —
//! every index is processed exactly once and results land in
//! index-addressed slots, never depending on thread interleaving.
//!
//! Worker count resolution (see [`HostPool::resolve`]): an explicit
//! request wins, then the `FASTGR_WORKERS` environment variable, then the
//! machine's available parallelism. `FASTGR_WORKERS=1` forces fully
//! serial, in-order execution — useful for reproducing runs and for
//! debugging.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Begin/end observation tap on block dispatch, called from the worker
/// threads.
///
/// The pool reports which worker executed which block and when (in each
/// worker's program order), so an external checker — e.g. the
/// happens-before race checker in `fastgr-analysis` — can verify that
/// blocks of one launch really were mutually independent (conflicting
/// blocks must never overlap in time). All methods default to no-ops.
pub trait BlockEventTap: Sync {
    /// Block `block` is about to run on worker thread `worker`.
    fn on_block_start(&self, block: usize, worker: usize) {
        let _ = (block, worker);
    }

    /// Block `block` finished running on worker thread `worker`.
    fn on_block_end(&self, block: usize, worker: usize) {
        let _ = (block, worker);
    }
}

/// The default no-op tap (zero observation overhead).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTap;

impl BlockEventTap for NoTap {}

/// Write-once, index-disjoint result cells shared across worker threads.
///
/// Each parallel task owns exactly one index, so a write is an
/// uncontended per-cell lock (a plain `OnceLock` would demand `T: Sync`;
/// these cells only need `T: Send`, matching what `Fn(usize) -> T`
/// mapping actually requires). First write to a cell wins. Reading the
/// results back consumes the slots.
///
/// # Example
///
/// ```
/// use fastgr_gpu::pool::{HostPool, SyncSlots};
///
/// let slots = SyncSlots::new(4);
/// HostPool::new(2).for_each(4, |i| {
///     slots.set(i, i * 10);
/// });
/// let values = slots.into_vec();
/// assert_eq!(values, vec![Some(0), Some(10), Some(20), Some(30)]);
/// ```
#[derive(Debug)]
pub struct SyncSlots<T> {
    cells: Vec<Mutex<Option<T>>>,
}

impl<T> SyncSlots<T> {
    /// Creates `n` empty cells.
    pub fn new(n: usize) -> Self {
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, || Mutex::new(None));
        Self { cells }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Sets cell `i` (first write wins). Returns whether the write landed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&self, i: usize, value: T) -> bool {
        let mut cell = self.cells[i].lock().unwrap_or_else(|e| e.into_inner());
        if cell.is_some() {
            false
        } else {
            *cell = Some(value);
            true
        }
    }

    /// Consumes the slots, returning each cell's value in index order.
    pub fn into_vec(self) -> Vec<Option<T>> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect()
    }
}

/// A pool of host worker threads executing index-parallel work.
///
/// The pool is a lightweight descriptor (worker count); workers are
/// scoped threads spawned per run, so closures may freely borrow from the
/// caller's stack. Chunked dispatch keeps the per-index overhead small:
/// a shared atomic cursor hands out contiguous index ranges, which also
/// preserves cache locality for index-adjacent work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostPool {
    workers: usize,
}

impl HostPool {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Resolves an effective worker count: `requested` if positive, else
    /// the `FASTGR_WORKERS` environment variable if set to a positive
    /// integer, else the machine's available parallelism.
    pub fn resolve(requested: usize) -> usize {
        if requested > 0 {
            return requested;
        }
        if let Some(n) = std::env::var("FASTGR_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// A pool sized by [`HostPool::resolve`] from `requested`.
    pub fn resolved(requested: usize) -> Self {
        Self::new(Self::resolve(requested))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(i)` for every `i in 0..n`, distributing indices over the
    /// pool. With one worker (or at most one index) this degenerates to a
    /// serial in-order loop with no thread spawn at all.
    pub fn for_each<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_tapped(n, f, &NoTap);
    }

    /// [`HostPool::for_each`] with a begin/end [`BlockEventTap`] around
    /// every block — see the trait docs for the event contract. On the
    /// serial path all events come from worker 0 in index order.
    pub fn for_each_tapped<F, T>(&self, n: usize, f: F, tap: &T)
    where
        F: Fn(usize) + Sync,
        T: BlockEventTap,
    {
        if self.workers == 1 || n <= 1 {
            for i in 0..n {
                tap.on_block_start(i, 0);
                f(i);
                tap.on_block_end(i, 0);
            }
            return;
        }
        // Chunk size balances dispatch overhead against load balance:
        // roughly 8 chunks per worker, capped so huge runs still rotate.
        let chunk = (n / (self.workers * 8)).clamp(1, 1024);
        let cursor = AtomicUsize::new(0);
        let threads = self.workers.min(n);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let f = &f;
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        tap.on_block_start(i, worker);
                        f(i);
                        tap.on_block_end(i, worker);
                    }
                });
            }
        });
    }

    /// Maps `f` over `0..n` in parallel, returning results in index order.
    /// Deterministic: the output depends only on `f`, never on thread
    /// interleaving.
    pub fn map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.workers == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let slots = SyncSlots::new(n);
        self.for_each(n, |i| {
            slots.set(i, f(i));
        });
        slots
            .into_vec()
            .into_iter()
            .map(|v| v.expect("every index produced a value"))
            .collect()
    }
}

impl Default for HostPool {
    fn default() -> Self {
        Self::resolved(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_every_index_once() {
        for workers in [1, 2, 8] {
            let n = 1000;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            HostPool::new(workers).for_each(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn map_is_ordered_and_worker_count_independent() {
        let f = |i: usize| (i * i) as u64;
        let serial = HostPool::new(1).map(4096, f);
        let parallel = HostPool::new(7).map(4096, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial[9], 81);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let total = AtomicU64::new(0);
        HostPool::new(4).for_each(100_000, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn zero_and_one_index_runs_inline() {
        let pool = HostPool::new(8);
        pool.for_each(0, |_| panic!("no indices to run"));
        let one = pool.map(1, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn sync_slots_first_write_wins() {
        let slots = SyncSlots::new(2);
        assert!(slots.set(0, 1));
        assert!(!slots.set(0, 2));
        assert_eq!(slots.len(), 2);
        assert!(!slots.is_empty());
        assert_eq!(slots.into_vec(), vec![Some(1), None]);
    }

    #[test]
    fn tap_sees_balanced_start_end_events_for_every_block() {
        struct Counter {
            starts: Vec<AtomicUsize>,
            ends: Vec<AtomicUsize>,
        }
        impl BlockEventTap for Counter {
            fn on_block_start(&self, block: usize, _worker: usize) {
                self.starts[block].fetch_add(1, Ordering::Relaxed);
            }
            fn on_block_end(&self, block: usize, _worker: usize) {
                // An end must follow its start.
                assert_eq!(self.starts[block].load(Ordering::Relaxed), 1);
                self.ends[block].fetch_add(1, Ordering::Relaxed);
            }
        }
        for workers in [1, 4] {
            let n = 100;
            let tap = Counter {
                starts: (0..n).map(|_| AtomicUsize::new(0)).collect(),
                ends: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            };
            HostPool::new(workers).for_each_tapped(n, |_| {}, &tap);
            assert!(tap.starts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            assert!(tap.ends.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(HostPool::resolve(3), 3);
        assert!(HostPool::resolve(0) >= 1);
        assert_eq!(HostPool::new(0).workers(), 1);
    }
}
