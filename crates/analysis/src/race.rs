//! Dynamic happens-before race checker.
//!
//! The static validator proves the *schedule* is sound; this module checks
//! that an *execution* actually honoured it. It observes runs through the
//! instrumentation hooks the runtime crates expose —
//! [`fastgr_taskgraph::ExecutionHooks`] for the dependency-counting
//! executor and [`fastgr_gpu::pool::BlockEventTap`] for the simulated
//! device's block pool — and builds classic vector clocks:
//!
//! * each worker thread owns one clock component, incremented at every
//!   observed event (so two events of one worker are always ordered —
//!   program order);
//! * a reported handoff `pred -> succ` (the executor's dependency-counter
//!   decrement) joins `pred`'s finish clock into `succ`'s acquire set, so
//!   `succ`'s start happens-after `pred`'s finish — but **only** if the
//!   executor really performed that decrement. The happens-before relation
//!   is derived from what the run *did*, never from what the schedule
//!   *claims*.
//!
//! After the run, [`RaceChecker::report`] takes the conflict graph and
//! flags every conflicting task pair whose executions were not strictly
//! ordered by the observed happens-before relation: a real race window,
//! with the unordered pair as the witness. [`BlockChecker`] is the same
//! check for one block-pool launch, where the only ordering is per-worker
//! program order (a launch has no inter-block synchronisation, so
//! conflicting blocks in one launch are flagged unless they serialised
//! onto one worker by luck — use it to verify launches over independent
//! sets only).

use fastgr_gpu::pool::BlockEventTap;
use fastgr_taskgraph::{ConflictGraph, ExecutionHooks};
use parking_lot::Mutex;

use crate::diagnostics::{Diagnostic, ValidationReport};

/// A vector clock: one logical-time component per worker thread.
type Clock = Vec<u64>;

/// `a` happens-before-or-equals `b`, component-wise (missing components are
/// zero).
fn clock_le(a: &Clock, b: &Clock) -> bool {
    a.iter()
        .enumerate()
        .all(|(w, &t)| t <= b.get(w).copied().unwrap_or(0))
}

/// Joins `src` into `dst` (component-wise max).
fn clock_join(dst: &mut Clock, src: &Clock) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        if s > *d {
            *d = s;
        }
    }
}

/// Shared event-recording core for both checkers.
#[derive(Debug)]
struct ClockTable {
    /// Current clock of each worker thread (grown on first sight).
    workers: Vec<Clock>,
    /// Per item: join of the finish clocks released to it via handoffs.
    acquired: Vec<Clock>,
    /// Per item: clock snapshot at its start event.
    start: Vec<Option<Clock>>,
    /// Per item: clock snapshot at its finish event.
    finish: Vec<Option<Clock>>,
    /// Items that started twice / finished twice / finished unstarted.
    anomalies: Vec<Diagnostic>,
}

impl ClockTable {
    fn new(items: usize) -> Self {
        Self {
            workers: Vec::new(),
            acquired: vec![Clock::new(); items],
            start: vec![None; items],
            finish: vec![None; items],
            anomalies: Vec::new(),
        }
    }

    fn worker_clock(&mut self, worker: usize) -> &mut Clock {
        if self.workers.len() <= worker {
            self.workers.resize(worker + 1, Clock::new());
        }
        let clock = &mut self.workers[worker];
        if clock.len() <= worker {
            clock.resize(worker + 1, 0);
        }
        clock
    }

    fn record_start(&mut self, item: usize, worker: usize, what: &str) {
        if item >= self.start.len() {
            self.anomalies.push(Diagnostic::error(
                "event-out-of-range",
                format!("{what} {item} started but only {} exist", self.start.len()),
            ));
            return;
        }
        // Acquire everything released to this item, then tick.
        let acquired = std::mem::take(&mut self.acquired[item]);
        let clock = self.worker_clock(worker);
        clock_join(clock, &acquired);
        clock[worker] += 1;
        let snapshot = clock.clone();
        if self.start[item].is_some() {
            self.anomalies.push(Diagnostic::error(
                "duplicate-start",
                format!("{what} {item} started twice"),
            ));
        }
        self.start[item] = Some(snapshot);
    }

    fn record_finish(&mut self, item: usize, worker: usize, what: &str) {
        if item >= self.finish.len() {
            self.anomalies.push(Diagnostic::error(
                "event-out-of-range",
                format!("{what} {item} finished but only {} exist", self.finish.len()),
            ));
            return;
        }
        let clock = self.worker_clock(worker);
        clock[worker] += 1;
        let snapshot = clock.clone();
        if self.start[item].is_none() {
            self.anomalies.push(Diagnostic::error(
                "finish-without-start",
                format!("{what} {item} finished without a start event"),
            ));
        }
        if self.finish[item].is_some() {
            self.anomalies.push(Diagnostic::error(
                "duplicate-finish",
                format!("{what} {item} finished twice"),
            ));
        }
        self.finish[item] = Some(snapshot);
    }

    fn record_handoff(&mut self, pred: usize, succ: usize) {
        if succ >= self.acquired.len() {
            return;
        }
        // Release pred's finish clock to succ. A handoff reported before
        // pred's finish event carries no ordering — leave the acquire set
        // alone and let the race check fire.
        if let Some(finish) = self.finish.get(pred).and_then(|f| f.clone()) {
            clock_join(&mut self.acquired[succ], &finish);
        } else {
            self.anomalies.push(Diagnostic::error(
                "handoff-before-finish",
                format!("handoff {pred} -> {succ} reported before {pred} finished"),
            ));
        }
    }

    /// The race check: every conflicting pair must be strictly ordered by
    /// the observed happens-before relation.
    fn report(&self, conflicts: &ConflictGraph, rule: &'static str, what: &str) -> ValidationReport {
        let n = self.start.len();
        let mut report = ValidationReport {
            tasks_checked: n,
            conflict_edges_checked: conflicts.edge_count(),
            ..Default::default()
        };
        for d in &self.anomalies {
            report.push(d.clone());
        }
        if n != conflicts.task_count() {
            report.push(Diagnostic::error(
                "task-count-mismatch",
                format!(
                    "checker observed {n} {what}s but the conflict graph has {}",
                    conflicts.task_count()
                ),
            ));
            return report;
        }
        for (t, (s, f)) in self.start.iter().zip(self.finish.iter()).enumerate() {
            if s.is_none() || f.is_none() {
                report.push(Diagnostic::error(
                    "unobserved-task",
                    format!("{what} {t} never produced both a start and a finish event"),
                ));
            }
        }
        for a in 0..n as u32 {
            for &b in conflicts.neighbors(a) {
                if b <= a {
                    continue;
                }
                let (Some(sa), Some(fa), Some(sb), Some(fb)) = (
                    self.start[a as usize].as_ref(),
                    self.finish[a as usize].as_ref(),
                    self.start[b as usize].as_ref(),
                    self.finish[b as usize].as_ref(),
                ) else {
                    continue; // already reported as unobserved
                };
                let a_before_b = clock_le(fa, sb);
                let b_before_a = clock_le(fb, sa);
                if !a_before_b && !b_before_a {
                    report.push(
                        Diagnostic::error(
                            rule,
                            format!(
                                "conflicting {what}s {a} and {b} ran unordered: \
                                 no happens-before edge separates their executions"
                            ),
                        )
                        .with_tasks(a, b)
                        .with_witness(vec![a, b]),
                    );
                }
            }
        }
        report
    }
}

/// Vector-clock race checker for the dependency-counting executor.
///
/// Pass it to [`fastgr_taskgraph::Executor::run_with_hooks`], then call
/// [`RaceChecker::report`] with the conflict graph the schedule was built
/// from. The happens-before relation joins per-worker program order with
/// the handoffs the executor actually performed, so a schedule (or an
/// executor bug) that lets two conflicting tasks run without
/// synchronisation yields incomparable clocks and a `task-race` finding.
///
/// # Example
///
/// ```
/// use fastgr_analysis::RaceChecker;
/// use fastgr_grid::{Point2, Rect};
/// use fastgr_taskgraph::{ConflictGraph, Executor, Schedule};
///
/// let boxes = vec![
///     Rect::new(Point2::new(0, 0), Point2::new(4, 4)),
///     Rect::new(Point2::new(3, 3), Point2::new(8, 8)),
/// ];
/// let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
/// let schedule = Schedule::build(&[0, 1], &conflicts);
/// let checker = RaceChecker::new(schedule.task_count());
/// Executor::new(2).run_with_hooks(&schedule, |_task| {}, &checker);
/// checker.report(&conflicts).assert_clean("executor run");
/// ```
#[derive(Debug)]
pub struct RaceChecker {
    table: Mutex<ClockTable>,
}

impl RaceChecker {
    /// A checker expecting `task_count` tasks.
    pub fn new(task_count: usize) -> Self {
        Self {
            table: Mutex::new(ClockTable::new(task_count)),
        }
    }

    /// Checks the observed execution against `conflicts`; every conflicting
    /// pair must have been strictly ordered.
    pub fn report(&self, conflicts: &ConflictGraph) -> ValidationReport {
        self.table.lock().report(conflicts, "task-race", "task")
    }
}

impl ExecutionHooks for RaceChecker {
    fn on_task_start(&self, task: u32, worker: usize) {
        self.table.lock().record_start(task as usize, worker, "task");
    }

    fn on_task_finish(&self, task: u32, worker: usize) {
        self.table
            .lock()
            .record_finish(task as usize, worker, "task");
    }

    fn on_handoff(&self, pred: u32, succ: u32) {
        self.table.lock().record_handoff(pred as usize, succ as usize);
    }
}

/// Vector-clock ordering checker for one block-pool launch.
///
/// Pass it to [`fastgr_gpu::HostPool::for_each_tapped`] as the
/// [`BlockEventTap`], then call [`BlockChecker::report`] with a conflict
/// graph over the launch's block indices. A launch has no inter-block
/// synchronisation, so the only happens-before ordering is per-worker
/// program order: any conflicting pair that landed on different workers is
/// flagged as a `block-race`. Over an independent set (how the pattern
/// stage launches batches) the report is clean by definition of the check.
#[derive(Debug)]
pub struct BlockChecker {
    table: Mutex<ClockTable>,
}

impl BlockChecker {
    /// A checker expecting `block_count` blocks.
    pub fn new(block_count: usize) -> Self {
        Self {
            table: Mutex::new(ClockTable::new(block_count)),
        }
    }

    /// Checks the observed launch against `conflicts` over block indices.
    pub fn report(&self, conflicts: &ConflictGraph) -> ValidationReport {
        self.table.lock().report(conflicts, "block-race", "block")
    }
}

impl BlockEventTap for BlockChecker {
    fn on_block_start(&self, block: usize, worker: usize) {
        self.table.lock().record_start(block, worker, "block");
    }

    fn on_block_end(&self, block: usize, worker: usize) {
        self.table.lock().record_finish(block, worker, "block");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_grid::{Point2, Rect};
    use fastgr_taskgraph::{Executor, Schedule};

    fn rect(x0: u16, y0: u16, x1: u16, y1: u16) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    fn conflicting_pair() -> ConflictGraph {
        ConflictGraph::from_bounding_boxes(&[rect(0, 0, 5, 5), rect(4, 4, 9, 9)])
    }

    #[test]
    fn ordered_execution_via_handoff_is_clean() {
        let conflicts = conflicting_pair();
        let chk = RaceChecker::new(2);
        // Worker 0 runs task 0, hands off to task 1 on worker 1.
        chk.on_task_start(0, 0);
        chk.on_task_finish(0, 0);
        chk.on_handoff(0, 1);
        chk.on_task_start(1, 1);
        chk.on_task_finish(1, 1);
        let report = chk.report(&conflicts);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn same_worker_program_order_is_clean_without_handoff() {
        let conflicts = conflicting_pair();
        let chk = RaceChecker::new(2);
        chk.on_task_start(1, 3);
        chk.on_task_finish(1, 3);
        chk.on_task_start(0, 3);
        chk.on_task_finish(0, 3);
        assert!(chk.report(&conflicts).is_clean());
    }

    #[test]
    fn forced_unordered_conflicting_tasks_are_flagged() {
        // Mutation: two conflicting tasks run on different workers with no
        // handoff between them — a real race window the checker must catch.
        let conflicts = conflicting_pair();
        let chk = RaceChecker::new(2);
        chk.on_task_start(0, 0);
        chk.on_task_finish(0, 0);
        chk.on_task_start(1, 1);
        chk.on_task_finish(1, 1);
        let report = chk.report(&conflicts);
        assert!(!report.is_clean());
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == "task-race" && d.tasks == Some((0, 1))),
            "{report}"
        );
    }

    #[test]
    fn handoff_chain_through_middle_task_orders_endpoints() {
        // 0 and 2 conflict; ordering goes 0 -> 1 -> 2 through handoffs.
        let boxes = [rect(0, 0, 5, 5), rect(20, 0, 25, 5), rect(4, 4, 9, 9)];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let chk = RaceChecker::new(3);
        chk.on_task_start(0, 0);
        chk.on_task_finish(0, 0);
        chk.on_handoff(0, 1);
        chk.on_task_start(1, 1);
        chk.on_task_finish(1, 1);
        chk.on_handoff(1, 2);
        chk.on_task_start(2, 2);
        chk.on_task_finish(2, 2);
        assert!(chk.report(&conflicts).is_clean());
    }

    #[test]
    fn handoff_reported_before_finish_carries_no_ordering() {
        let conflicts = conflicting_pair();
        let chk = RaceChecker::new(2);
        chk.on_task_start(0, 0);
        chk.on_handoff(0, 1); // bogus: pred has not finished
        chk.on_task_finish(0, 0);
        chk.on_task_start(1, 1);
        chk.on_task_finish(1, 1);
        let report = chk.report(&conflicts);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "handoff-before-finish"));
        assert!(report.diagnostics.iter().any(|d| d.rule == "task-race"));
    }

    #[test]
    fn missing_events_are_reported() {
        let conflicts = conflicting_pair();
        let chk = RaceChecker::new(2);
        chk.on_task_start(0, 0);
        chk.on_task_finish(0, 0);
        // Task 1 never runs.
        let report = chk.report(&conflicts);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "unobserved-task"));
    }

    #[test]
    fn real_executor_runs_are_race_free() {
        // A clique plus satellites, executed for real on several worker
        // counts: the checker must find the run clean every time.
        let boxes = vec![
            rect(0, 0, 9, 9),
            rect(1, 1, 8, 8),
            rect(2, 2, 7, 7),
            rect(20, 0, 22, 2),
            rect(21, 1, 24, 4),
            rect(40, 40, 41, 41),
        ];
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        let order: Vec<u32> = (0..boxes.len() as u32).collect();
        let schedule = Schedule::build(&order, &conflicts);
        for workers in [1, 2, 4] {
            let chk = RaceChecker::new(schedule.task_count());
            Executor::new(workers).run_with_hooks(&schedule, |_t| {}, &chk);
            let report = chk.report(&conflicts);
            assert!(report.is_clean(), "workers={workers}: {report}");
        }
    }

    #[test]
    fn block_pool_launch_over_independent_blocks_is_clean() {
        use fastgr_gpu::HostPool;
        // Blocks far apart: no conflicts at all.
        let boxes: Vec<Rect> = (0..32)
            .map(|i| rect(10 * i, 0, 10 * i + 3, 3))
            .collect();
        let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
        for workers in [1, 4] {
            let chk = BlockChecker::new(boxes.len());
            HostPool::new(workers).for_each_tapped(boxes.len(), |_i| {}, &chk);
            let report = chk.report(&conflicts);
            assert!(report.is_clean(), "workers={workers}: {report}");
        }
    }

    #[test]
    fn block_pool_launch_over_conflicting_blocks_is_flagged() {
        // Mutation: launch two conflicting blocks in one launch. Forced
        // onto different workers (manual events — thread placement in a
        // real pool is not deterministic), the checker must flag them.
        let conflicts = conflicting_pair();
        let chk = BlockChecker::new(2);
        chk.on_block_start(0, 0);
        chk.on_block_end(0, 0);
        chk.on_block_start(1, 1);
        chk.on_block_end(1, 1);
        let report = chk.report(&conflicts);
        assert!(!report.is_clean());
        assert!(report.diagnostics.iter().any(|d| d.rule == "block-race"));
    }
}
