//! The full flow of the paper's evaluation: global routing with FastGR_H,
//! guide generation, then detailed routing with the Dr.CU-substitute —
//! a one-design slice of Table X.
//!
//! ```text
//! cargo run --release --example full_flow
//! ```

use fastgr::core::{Router, RouterConfig};
use fastgr::design::BenchmarkSpec;
use fastgr::dr::{DetailedRouter, DrConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BenchmarkSpec::find("s18t5m").expect("suite benchmark");
    let design = spec.generate();
    println!("{design}\n");

    for (label, config) in [
        ("CUGR (baseline)", RouterConfig::cugr()),
        ("FastGR_H", RouterConfig::fastgr_h()),
    ] {
        // Stage 1+2: global routing.
        let gr = Router::new(config).run(&design)?;
        println!("{label}: global routing {}", gr.metrics);
        println!("{label}: {}", gr.guides);

        // Stage 3: detailed routing guided by the GR solution, with the
        // fine-grid track count matched to the GR capacity.
        let dr = DetailedRouter::new(DrConfig {
            tracks_per_gcell: design.capacity().round() as u8,
            ..DrConfig::default()
        });
        let outcome = dr.route(&design, &gr.routes);
        println!("{label}: detailed routing {outcome}\n");
    }
    Ok(())
}
