//! The scaled ICCAD2019-like benchmark suite (paper Table III).
//!
//! The contest suite has six designs from ~72k to ~899k nets, each with a
//! 5-metal-layer variant suffixed `m`. We mirror the *structure* — relative
//! sizes, aspect ratio, net mix, 9-vs-5 layer pairs — at roughly 1/25 the
//! net count so a full evaluation sweep runs in CI time (substitution
//! documented in `DESIGN.md` §4).

use crate::generate::{Generator, GeneratorParams};
use crate::net::Design;

/// Descriptor of one benchmark in the suite.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name, e.g. `s18t5` or `s18t5m`.
    pub name: &'static str,
    /// Name of the ICCAD2019 design this mirrors.
    pub paper_analogue: &'static str,
    /// Net count of the paper's design (for the scale record).
    pub paper_nets: u32,
    /// Net count of this scaled benchmark.
    pub nets: u32,
    /// Grid side length (square grids, like the published G-cell grids).
    pub grid: u16,
    /// Number of metal layers (incl. pin layer 0): 10 for the 9-metal
    /// designs, 6 for the `m` (5-metal) variants.
    pub layers: u8,
    /// Generator seed (shared by each base/`m` pair so the netlist is
    /// identical and only the layer count differs, as in the contest).
    pub seed: u64,
    /// Uniform track capacity per wire edge, scaled with the benchmark's
    /// net density so the 9-layer variants are nearly routable (few
    /// shorts, like the contest designs) while the 5-layer `m` variants
    /// stay congestion-dominated.
    pub capacity: f64,
}

impl BenchmarkSpec {
    /// Instantiates the benchmark design.
    pub fn generate(&self) -> Design {
        Generator::new(GeneratorParams {
            name: self.name.to_owned(),
            width: self.grid,
            height: self.grid,
            layers: self.layers,
            num_nets: self.nets as usize,
            capacity: self.capacity,
            hotspots: 4 + (self.grid / 40) as usize,
            hotspot_affinity: 0.35,
            blockages: 2 + (self.grid / 32) as usize,
            seed: self.seed,
        })
        .generate()
    }

    /// Whether this is a 5-metal-layer `m` variant.
    pub fn is_m_variant(&self) -> bool {
        self.name.ends_with('m')
    }
}

/// The 12-benchmark suite: six designs, each with a 9-layer base and a
/// 5-layer `m` variant (Table III of the paper, scaled).
///
/// # Example
///
/// ```
/// let suite = fastgr_design::suite();
/// assert_eq!(suite.len(), 12);
/// let m_variants = suite.iter().filter(|s| s.is_m_variant()).count();
/// assert_eq!(m_variants, 6);
/// ```
pub fn suite() -> Vec<BenchmarkSpec> {
    // (name, analogue, paper nets, scaled nets, grid side, seed, capacity)
    // Capacity scales with net density (nets per G-cell) so utilisation is
    // comparable across the suite.
    const BASE: &[(&str, &str, u32, u32, u16, u64, f64)] = &[
        ("s18t5", "18test5", 71_954, 3_200, 64, 0x18_05, 3.0),
        ("s18t8", "18test8", 179_863, 7_600, 86, 0x18_08, 4.0),
        ("s18t10", "18test10", 182_000, 8_000, 90, 0x18_10, 3.9),
        ("s19t7", "19test7", 358_720, 14_300, 110, 0x19_07, 4.5),
        ("s19t8", "19test8", 537_577, 18_700, 125, 0x19_0B, 4.6),
        ("s19t9", "19test9", 899_341, 22_400, 140, 0x19_09, 4.4),
    ];
    let mut specs = Vec::with_capacity(12);
    for &(name, analogue, paper_nets, nets, grid, seed, capacity) in BASE {
        specs.push(BenchmarkSpec {
            name,
            paper_analogue: analogue,
            paper_nets,
            nets,
            grid,
            layers: 10, // 9 metal layers + pin layer 0
            seed,
            capacity,
        });
        // The `m` variant: identical netlist, 5 metal layers.
        let m_name: &'static str = match name {
            "s18t5" => "s18t5m",
            "s18t8" => "s18t8m",
            "s18t10" => "s18t10m",
            "s19t7" => "s19t7m",
            "s19t8" => "s19t8m",
            "s19t9" => "s19t9m",
            _ => unreachable!(),
        };
        specs.push(BenchmarkSpec {
            name: m_name,
            paper_analogue: analogue,
            paper_nets,
            nets,
            grid,
            layers: 6, // 5 metal layers + pin layer 0
            seed,
            capacity,
        });
    }
    specs
}

/// Finds a benchmark by name.
///
/// # Example
///
/// ```
/// let spec = fastgr_design::BenchmarkSpec::find("s18t5m").expect("known benchmark");
/// assert_eq!(spec.layers, 6);
/// ```
impl BenchmarkSpec {
    /// Looks up a suite benchmark by its name; `None` for unknown names.
    pub fn find(name: &str) -> Option<BenchmarkSpec> {
        suite().into_iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_named_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 12);
        let names: Vec<_> = s.iter().map(|b| b.name).collect();
        assert!(names.contains(&"s19t9"));
        assert!(names.contains(&"s19t9m"));
    }

    #[test]
    fn m_variant_shares_netlist_with_base() {
        let base = BenchmarkSpec::find("s18t5").expect("known").generate();
        let m = BenchmarkSpec::find("s18t5m").expect("known").generate();
        assert_eq!(base.nets().len(), m.nets().len());
        assert_eq!(base.layers(), 10);
        assert_eq!(m.layers(), 6);
        // Identical pins, different layer count only.
        for (a, b) in base.nets().iter().zip(m.nets()) {
            assert_eq!(a.pins(), b.pins());
        }
    }

    #[test]
    fn sizes_are_monotone_like_the_contest() {
        let s = suite();
        let base: Vec<_> = s.iter().filter(|b| !b.is_m_variant()).collect();
        for w in base.windows(2) {
            assert!(w[0].nets <= w[1].nets);
            assert!(w[0].grid <= w[1].grid);
        }
    }

    #[test]
    fn find_rejects_unknown() {
        assert!(BenchmarkSpec::find("nope").is_none());
    }

    #[test]
    fn smallest_benchmark_generates_quickly() {
        let d = BenchmarkSpec::find("s18t5").expect("known").generate();
        assert_eq!(d.nets().len(), 3_200);
        assert_eq!(d.width(), 64);
    }
}
