//! Aggregated congestion / overflow statistics.

use std::fmt;

/// Summary of routing-resource usage over a whole [`GridGraph`].
///
/// Produced by [`GridGraph::report`]; the *shorts* metric used in the
/// paper's score (Eq. 15) is derived from the total overflow, because on the
/// G-cell grid every overflowing track unit forces a short (or a detour the
/// detailed router cannot take).
///
/// [`GridGraph`]: crate::GridGraph
/// [`GridGraph::report`]: crate::GridGraph::report
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CongestionReport {
    /// Sum of wire demand over all routable wire edges (track·G-cell units).
    pub total_wire_demand: f64,
    /// Sum of wire capacity over all routable wire edges.
    pub total_wire_capacity: f64,
    /// Sum of `demand - capacity` over overflowing wire edges.
    pub overflow: f64,
    /// Number of wire edges with `demand > capacity`.
    pub overflowing_edges: u64,
    /// Largest `demand / capacity` ratio over wire edges with capacity.
    pub max_utilization: f64,
    /// Sum of via demand over all via edges.
    pub total_via_demand: f64,
}

impl CongestionReport {
    /// The shorts metric `S` of the paper's score: total overflowing track
    /// units, each of which the detailed router must resolve as a short.
    pub fn shorts(&self) -> f64 {
        self.overflow
    }

    /// Overall wire utilisation (`demand / capacity`), 0 when empty.
    pub fn utilization(&self) -> f64 {
        if self.total_wire_capacity > 0.0 {
            self.total_wire_demand / self.total_wire_capacity
        } else {
            0.0
        }
    }
}

impl fmt::Display for CongestionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "demand {:.1}/{:.1} ({:.1}% util), overflow {:.1} on {} edges, peak util {:.2}",
            self.total_wire_demand,
            self.total_wire_capacity,
            100.0 * self.utilization(),
            self.overflow,
            self.overflowing_edges,
            self.max_utilization,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_handles_empty_grid() {
        let r = CongestionReport::default();
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.shorts(), 0.0);
    }

    #[test]
    fn display_mentions_overflow() {
        let r = CongestionReport {
            total_wire_demand: 10.0,
            total_wire_capacity: 20.0,
            overflow: 3.0,
            overflowing_edges: 2,
            max_utilization: 1.5,
            total_via_demand: 4.0,
        };
        let s = r.to_string();
        assert!(s.contains("overflow 3.0 on 2 edges"));
        assert!(s.contains("50.0% util"));
    }
}
