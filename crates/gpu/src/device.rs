//! The simulated device and its calibrated performance model.

use std::fmt;

use fastgr_telemetry::{Recorder, Stopwatch, TRACK_WORKER_BASE};

use crate::pool::{BlockEventTap, HostPool, SyncSlots};

/// Static configuration of the simulated device.
///
/// The defaults are calibrated once from public RTX 3090 specifications and
/// micro-benchmark folklore and are **never tuned per design** — relative
/// speedup shapes in the reproduction come from the algorithms, not from
/// these constants (see `DESIGN.md` §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors executing blocks concurrently.
    pub sm_count: usize,
    /// Threads that one block can run truly in parallel.
    pub threads_per_block: usize,
    /// Modelled time of one flow stage (one add + compare per thread plus
    /// the reduction), in seconds.
    pub stage_seconds: f64,
    /// Fixed host-side cost of one kernel launch, in seconds.
    pub launch_overhead_seconds: f64,
    /// Host worker threads that execute blocks in parallel. `0` means
    /// auto: the `FASTGR_WORKERS` environment variable if set, else the
    /// machine's available parallelism. This affects only *wall-clock*
    /// execution speed; the modelled device time is byte-identical for
    /// every worker count.
    pub host_workers: usize,
}

impl DeviceConfig {
    /// An RTX-3090-like device: 82 SMs, 256-thread blocks (the realistic
    /// occupancy for these register-heavy cost-gather kernels), 900 ns per
    /// flow stage (dozens of clocks at 1.4 GHz including global-memory
    /// latency), 8 µs launch overhead. Host workers are auto-sized.
    pub const fn rtx3090_like() -> Self {
        Self {
            sm_count: 82,
            threads_per_block: 256,
            stage_seconds: 900e-9,
            launch_overhead_seconds: 8e-6,
            host_workers: 0,
        }
    }

    /// A deliberately tiny device for tests: 2 SMs, 4-thread blocks, one
    /// host worker (serial, in-order block execution).
    pub const fn tiny() -> Self {
        Self {
            sm_count: 2,
            threads_per_block: 4,
            stage_seconds: 1e-6,
            launch_overhead_seconds: 10e-6,
            host_workers: 1,
        }
    }

    /// Returns the configuration with `host_workers` set (`0` = auto).
    pub const fn with_host_workers(mut self, workers: usize) -> Self {
        self.host_workers = workers;
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::rtx3090_like()
    }
}

/// Execution profile reported by one block: how many homogeneous threads its
/// computation-graph flow used and how many sequential stages it has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockProfile {
    /// Parallel threads of the widest flow stage.
    pub threads: usize,
    /// Sequential depth of the flow (number of dependent stages).
    pub flow_depth: usize,
}

impl BlockProfile {
    /// Creates a profile.
    pub const fn new(threads: usize, flow_depth: usize) -> Self {
        Self {
            threads,
            flow_depth,
        }
    }

    /// Merges another profile executed sequentially inside the same block
    /// (depths add, width takes the maximum).
    pub fn then(self, other: BlockProfile) -> BlockProfile {
        BlockProfile {
            threads: self.threads.max(other.threads),
            flow_depth: self.flow_depth + other.flow_depth,
        }
    }

    /// Total modeled work of the block: threads × sequential depth. The
    /// unit the complexity assertions compare across engine variants.
    pub const fn work(self) -> usize {
        self.threads * self.flow_depth
    }
}

/// Statistics of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel name (for reporting).
    pub name: String,
    /// Number of blocks launched.
    pub blocks: usize,
    /// Modelled device time in seconds.
    pub modeled_seconds: f64,
    /// Wall-clock host time spent executing the blocks, in seconds.
    /// Unlike `modeled_seconds` this depends on host load and worker
    /// count; it is reported for speedup measurements, never fed back
    /// into the performance model.
    pub host_seconds: f64,
}

/// Cumulative statistics of a device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceStats {
    /// Total number of kernel launches.
    pub launches: usize,
    /// Total number of blocks across launches.
    pub blocks: usize,
    /// Total modelled device time in seconds.
    pub modeled_seconds: f64,
    /// Total wall-clock host time spent executing blocks, in seconds.
    pub host_seconds: f64,
}

impl fmt::Display for DeviceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} launches, {} blocks, {:.3} ms modelled, {:.3} ms host",
            self.launches,
            self.blocks,
            self.modeled_seconds * 1e3,
            self.host_seconds * 1e3
        )
    }
}

/// The simulated CUDA-like device.
///
/// Executes kernels block by block on a host worker pool while charging
/// modelled device time. See the crate docs for the timing model and the
/// example.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    stats: DeviceStats,
    pool: HostPool,
    recorder: Recorder,
}

impl Device {
    /// Creates a device with the given configuration. The host worker
    /// count is resolved once here (see [`DeviceConfig::host_workers`]).
    /// Telemetry starts disabled; attach a recorder with
    /// [`Device::set_recorder`].
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            stats: DeviceStats::default(),
            pool: HostPool::resolved(config.host_workers),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder: every subsequent launch reports one
    /// kernel event, and (when the recorder is enabled) per-block
    /// begin/end events on the executing worker's track.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The host worker pool blocks execute on. Exposed so stages can run
    /// their own index-parallel host work (e.g. Steiner-tree planning) on
    /// the same threads that execute device blocks.
    pub fn pool(&self) -> HostPool {
        self.pool
    }

    /// Resolved number of host worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Cumulative statistics since creation or the last reset.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Clears the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    /// Launches a kernel of `blocks` blocks. `run_block` is invoked once
    /// per block on the host worker pool — blocks must therefore be
    /// mutually independent, exactly as real CUDA blocks of one kernel are
    /// — and reports the block's flow profile; the modelled kernel time is
    /// the throughput bound of the SM array, floored by the slowest single
    /// block:
    ///
    /// ```text
    /// launch_overhead + max(max_block_time, sum_block_time / sm_count)
    /// block_time = flow_depth * ceil(threads / threads_per_block) * stage_seconds
    /// ```
    ///
    /// Per-block times are reduced in block-index order, so
    /// `modeled_seconds` is byte-identical for every host worker count.
    /// With one worker, blocks run serially in index order on the calling
    /// thread. A zero-block launch costs only the launch overhead.
    pub fn launch<F>(&mut self, name: &str, blocks: usize, run_block: F) -> KernelStats
    where
        F: Fn(usize) -> BlockProfile + Sync,
    {
        let host_start = Stopwatch::start();
        let threads_per_block = self.config.threads_per_block;
        let stage_seconds = self.config.stage_seconds;
        let time_of = |b: usize| {
            let profile = run_block(b);
            let waves = profile.threads.div_ceil(threads_per_block).max(1);
            profile.flow_depth as f64 * waves as f64 * stage_seconds
        };
        // Index-ordered per-block times; `HostPool::map` is serial and
        // in-order for one worker, parallel (but still index-addressed)
        // otherwise. With an enabled recorder the tapped path additionally
        // reports per-block begin/end events from the executing workers;
        // either way the times land in index-addressed slots, so the
        // modelled result never depends on thread interleaving.
        let block_times = if self.recorder.is_enabled() {
            let tap = RecorderTap {
                recorder: &self.recorder,
                kernel: name,
            };
            let slots = SyncSlots::new(blocks);
            self.pool.for_each_tapped(
                blocks,
                |b| {
                    slots.set(b, time_of(b));
                },
                &tap,
            );
            slots
                .into_vec()
                .into_iter()
                .map(|v| v.expect("every index produced a value"))
                .collect()
        } else {
            self.pool.map(blocks, time_of)
        };
        // One reduction in index order, shared by the serial and parallel
        // paths: the floating-point result cannot depend on worker count.
        let mut max_block_time = 0.0f64;
        let mut total_block_time = 0.0f64;
        for &block_time in &block_times {
            total_block_time += block_time;
            if block_time > max_block_time {
                max_block_time = block_time;
            }
        }
        let modeled_seconds = self.config.launch_overhead_seconds
            + max_block_time.max(total_block_time / self.config.sm_count as f64);
        let host_seconds = host_start.elapsed_seconds();
        self.recorder.kernel(name, blocks, modeled_seconds, host_seconds);
        self.stats.launches += 1;
        self.stats.blocks += blocks;
        self.stats.modeled_seconds += modeled_seconds;
        self.stats.host_seconds += host_seconds;
        KernelStats {
            name: name.to_owned(),
            blocks,
            modeled_seconds,
            host_seconds,
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::new(DeviceConfig::default())
    }
}

/// Bridges the pool's [`BlockEventTap`] into the telemetry recorder:
/// block begin/end markers land on the executing worker's track.
struct RecorderTap<'a> {
    recorder: &'a Recorder,
    kernel: &'a str,
}

impl BlockEventTap for RecorderTap<'_> {
    fn on_block_start(&self, block: usize, worker: usize) {
        self.recorder.begin(
            &format!("{}.block{block}", self.kernel),
            "block",
            TRACK_WORKER_BASE + worker as u32,
        );
    }

    fn on_block_end(&self, block: usize, worker: usize) {
        self.recorder.end(
            &format!("{}.block{block}", self.kernel),
            "block",
            TRACK_WORKER_BASE + worker as u32,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn block_profile_work_is_threads_times_depth() {
        assert_eq!(BlockProfile::new(81, 4).work(), 324);
        // `then` takes the max width and sums depth, so work composes as
        // the merged profile's area, not the sum of the parts.
        let merged = BlockProfile::new(10, 2).then(BlockProfile::new(40, 3));
        assert_eq!(merged.work(), 40 * 5);
    }

    #[test]
    fn zero_block_launch_costs_only_overhead() {
        // Serial device.
        let mut d = Device::new(DeviceConfig::tiny());
        let s = d.launch("noop", 0, |_| BlockProfile::new(1, 1));
        assert_eq!(
            s.modeled_seconds,
            DeviceConfig::tiny().launch_overhead_seconds
        );
        // Parallel device: same contract regardless of worker count.
        let mut d = Device::new(DeviceConfig::tiny().with_host_workers(4));
        assert_eq!(d.workers(), 4);
        let s = d.launch("noop", 0, |_| BlockProfile::new(1, 1));
        assert_eq!(
            s.modeled_seconds,
            DeviceConfig::tiny().launch_overhead_seconds
        );
        assert!(s.host_seconds >= 0.0);
    }

    #[test]
    fn time_scales_with_block_rounds() {
        let cfg = DeviceConfig::tiny(); // 2 SMs
        let mut d = Device::new(cfg);
        let one = d
            .launch("k", 2, |_| BlockProfile::new(1, 3))
            .modeled_seconds;
        let two = d
            .launch("k", 4, |_| BlockProfile::new(1, 3))
            .modeled_seconds;
        let body = |launch: f64| launch - cfg.launch_overhead_seconds;
        assert!((body(two) - 2.0 * body(one)).abs() < 1e-12);
    }

    #[test]
    fn wide_blocks_pay_thread_waves() {
        let cfg = DeviceConfig::tiny(); // 4 threads per block
        let mut d = Device::new(cfg);
        let narrow = d
            .launch("k", 1, |_| BlockProfile::new(4, 2))
            .modeled_seconds;
        let wide = d
            .launch("k", 1, |_| BlockProfile::new(8, 2))
            .modeled_seconds;
        let body = |t: f64| t - cfg.launch_overhead_seconds;
        assert!((body(wide) - 2.0 * body(narrow)).abs() < 1e-12);
    }

    #[test]
    fn slowest_block_dominates() {
        let cfg = DeviceConfig::tiny();
        let mut d = Device::new(cfg);
        let s = d.launch("k", 2, |b| BlockProfile::new(1, if b == 0 { 1 } else { 10 }));
        let body = s.modeled_seconds - cfg.launch_overhead_seconds;
        assert!((body - 10.0 * cfg.stage_seconds).abs() < 1e-12);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut d = Device::new(DeviceConfig::tiny());
        d.launch("a", 3, |_| BlockProfile::new(1, 1));
        d.launch("b", 5, |_| BlockProfile::new(1, 1));
        assert_eq!(d.stats().launches, 2);
        assert_eq!(d.stats().blocks, 8);
        assert!(d.stats().modeled_seconds > 0.0);
        assert!(d.stats().host_seconds >= 0.0);
        d.reset_stats();
        assert_eq!(d.stats(), &DeviceStats::default());
    }

    #[test]
    fn throughput_bound_dominates_for_many_blocks() {
        // 2 SMs, many equal blocks: time ~ total work / 2.
        let cfg = DeviceConfig::tiny();
        let mut d = Device::new(cfg);
        let s = d.launch("k", 10, |_| BlockProfile::new(1, 4));
        let body = s.modeled_seconds - cfg.launch_overhead_seconds;
        let per_block = 4.0 * cfg.stage_seconds;
        assert!((body - 10.0 * per_block / 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_slow_block_floors_kernel_time() {
        // One enormous block among many small ones: the kernel cannot be
        // faster than that block even with idle SMs.
        let cfg = DeviceConfig::tiny();
        let mut d = Device::new(cfg);
        let s = d.launch("k", 3, |b| BlockProfile::new(1, if b == 0 { 100 } else { 1 }));
        let body = s.modeled_seconds - cfg.launch_overhead_seconds;
        assert!(body >= 100.0 * cfg.stage_seconds - 1e-12);
    }

    #[test]
    fn block_profile_then_composes() {
        let p = BlockProfile::new(16, 2).then(BlockProfile::new(4, 3));
        assert_eq!(p.threads, 16);
        assert_eq!(p.flow_depth, 5);
    }

    #[test]
    fn blocks_run_in_order_on_host_with_one_worker() {
        // tiny() pins host_workers to 1, so blocks execute serially in
        // index order on the calling thread.
        let mut d = Device::new(DeviceConfig::tiny());
        assert_eq!(d.workers(), 1);
        let seen = Mutex::new(Vec::new());
        d.launch("k", 4, |b| {
            seen.lock().unwrap().push(b);
            BlockProfile::new(1, 1)
        });
        assert_eq!(seen.into_inner().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_launch_runs_every_block_once() {
        let mut d = Device::new(DeviceConfig::tiny().with_host_workers(4));
        let seen = Mutex::new(vec![0u32; 64]);
        d.launch("k", 64, |b| {
            seen.lock().unwrap()[b] += 1;
            BlockProfile::new(1, 1)
        });
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn enabled_recorder_captures_kernels_and_block_events() {
        let recorder = Recorder::enabled();
        let mut d = Device::new(DeviceConfig::tiny().with_host_workers(2));
        d.set_recorder(recorder.clone());
        let stats = d.launch("pattern", 5, |_| BlockProfile::new(1, 2));
        let trace = recorder.take_trace();
        assert_eq!(trace.kernels().len(), 1);
        let k = &trace.kernels()[0];
        assert_eq!(k.name, "pattern");
        assert_eq!(k.blocks, 5);
        assert_eq!(k.modeled_seconds, stats.modeled_seconds);
        // One begin + one end per block, balanced per track.
        let begins = trace.events().iter().filter(|e| e.begin).count();
        let ends = trace.events().iter().filter(|e| !e.begin).count();
        assert_eq!(begins, 5);
        assert_eq!(ends, 5);
        assert!(trace.events().iter().all(|e| e.cat == "block"));
        assert!(trace
            .events()
            .iter()
            .any(|e| e.name == "pattern.block0"));
    }

    #[test]
    fn recorder_does_not_change_modeled_time() {
        let profile = |b: usize| BlockProfile::new(1 + (b * 7) % 13, 1 + (b * 5) % 9);
        let mut plain = Device::new(DeviceConfig::tiny().with_host_workers(2));
        let mut traced = Device::new(DeviceConfig::tiny().with_host_workers(2));
        traced.set_recorder(Recorder::enabled());
        let a = plain.launch("k", 97, profile).modeled_seconds;
        let b = traced.launch("k", 97, profile).modeled_seconds;
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn modeled_seconds_identical_across_worker_counts() {
        // Irregular block shapes so the reduction actually exercises both
        // the max and the accumulating sum.
        let profile = |b: usize| BlockProfile::new(1 + (b * 7) % 13, 1 + (b * 5) % 9);
        let mut serial = Device::new(DeviceConfig::tiny().with_host_workers(1));
        let mut parallel = Device::new(DeviceConfig::tiny().with_host_workers(8));
        let a = serial.launch("k", 257, profile).modeled_seconds;
        let b = parallel.launch("k", 257, profile).modeled_seconds;
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
