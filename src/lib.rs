//! FastGR — global routing on CPU–GPU with a heterogeneous task graph
//! scheduler, reproduced in Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`grid`] — the 3-D G-cell grid graph, capacities and the cost model,
//! * [`design`] — netlist model and the synthetic ICCAD2019-like suite,
//! * [`steiner`] — Steiner tree construction and DFS intranet ordering,
//! * [`gpu`] — the simulated CUDA-like device and min-plus flow kernels,
//! * [`taskgraph`] — batch extraction, the task graph scheduler, executor,
//! * [`maze`] — 3-D maze routing for rip-up-and-reroute,
//! * [`core`] — the FastGR router itself (pattern stage + RRR + scoring),
//! * [`dr`] — the Dr.CU-substitute detailed router used for evaluation,
//! * [`viz`] — SVG rendering of routes and congestion maps,
//! * [`assign`] — the classic 2-D + layer-assignment alternative flow,
//! * [`analysis`] — schedule soundness validator, happens-before race
//!   checker and the workspace lint pass (`cargo xtask check`),
//! * [`telemetry`] — the run-trace recorder: stage spans, counters and
//!   kernel events aggregated into a [`RunTrace`], exportable as a summary
//!   table or Chrome `trace_event` JSON (`fastgr route --trace out.json`).
//!
//! # Quickstart
//!
//! ```
//! use fastgr::core::{Router, RouterConfig};
//! use fastgr::design::Generator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny synthetic design (64 nets on a 16x16 grid with 5 layers).
//! let design = Generator::tiny(42).generate();
//! let outcome = Router::new(RouterConfig::fastgr_l()).run(&design)?;
//! assert!(outcome.metrics.score() >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use fastgr_analysis as analysis;
pub use fastgr_assign as assign;
pub use fastgr_core as core;
pub use fastgr_design as design;
pub use fastgr_dr as dr;
pub use fastgr_gpu as gpu;
pub use fastgr_grid as grid;
pub use fastgr_maze as maze;
pub use fastgr_steiner as steiner;
pub use fastgr_taskgraph as taskgraph;
pub use fastgr_telemetry as telemetry;
pub use fastgr_viz as viz;

// The telemetry vocabulary is part of the top-level API: `Recorder` feeds
// `Router::run_with_recorder`, and every `RoutingOutcome` carries a
// `RunTrace` of `Span`s and `Counter`s.
pub use fastgr_telemetry::{Counter, Recorder, RunTrace, Span};
