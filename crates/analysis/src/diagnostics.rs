//! Structured diagnostics shared by the validator, the race checker and
//! the lint pass.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (reported, never fails a check).
    Note,
    /// Suspicious but not a proven soundness violation.
    Warning,
    /// A proven violation of a checked invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: which rule fired, on what, and the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable rule identifier (kebab-case), e.g. `conflict-edge-unoriented`.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending task pair, when the rule is about a pair.
    pub tasks: Option<(u32, u32)>,
    /// A minimal witness: for ordering violations, a dependency path whose
    /// endpoints prove the violation (e.g. the path that would close a
    /// cycle); for batch violations, the two co-batched tasks.
    pub witness: Vec<u32>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(rule: &'static str, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            rule,
            message: message.into(),
            tasks: None,
            witness: Vec::new(),
        }
    }

    /// Attaches the offending task pair.
    pub fn with_tasks(mut self, a: u32, b: u32) -> Self {
        self.tasks = Some((a, b));
        self
    }

    /// Attaches a witness path.
    pub fn with_witness(mut self, witness: Vec<u32>) -> Self {
        self.witness = witness;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.rule, self.message)?;
        if let Some((a, b)) = self.tasks {
            write!(f, " (tasks {a}, {b})")?;
        }
        if !self.witness.is_empty() {
            write!(f, " witness: ")?;
            for (i, t) in self.witness.iter().enumerate() {
                if i > 0 {
                    write!(f, " -> ")?;
                }
                write!(f, "{t}")?;
            }
        }
        Ok(())
    }
}

/// The outcome of one validation pass: every diagnostic plus counters of
/// what was actually checked (so "clean" is distinguishable from "checked
/// nothing").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// All findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of tasks examined.
    pub tasks_checked: usize,
    /// Number of conflict edges examined.
    pub conflict_edges_checked: usize,
}

impl ValidationReport {
    /// Whether no error-severity diagnostic was found.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Panics with every diagnostic if the report is not clean — the
    /// debug-assert-style entry point used by the router's `validate` flag.
    ///
    /// # Panics
    ///
    /// If any error-severity diagnostic was recorded.
    pub fn assert_clean(&self, context: &str) {
        assert!(self.is_clean(), "{context}: {self}");
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Merges another report into this one (diagnostics append, counters
    /// add).
    pub fn merge(&mut self, other: ValidationReport) {
        self.diagnostics.extend(other.diagnostics);
        self.tasks_checked += other.tasks_checked;
        self.conflict_edges_checked += other.conflict_edges_checked;
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks, {} conflict edges checked, {} finding(s)",
            self.tasks_checked,
            self.conflict_edges_checked,
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_asserts_quietly() {
        let r = ValidationReport {
            tasks_checked: 3,
            ..Default::default()
        };
        assert!(r.is_clean());
        r.assert_clean("ctx");
    }

    #[test]
    #[should_panic(expected = "pattern: ")]
    fn dirty_report_panics_with_context() {
        let mut r = ValidationReport::default();
        r.push(Diagnostic::error("some-rule", "broken").with_tasks(1, 2));
        r.assert_clean("pattern");
    }

    #[test]
    fn display_includes_witness_path() {
        let d = Diagnostic::error("cycle", "a cycle exists")
            .with_tasks(0, 2)
            .with_witness(vec![0, 1, 2, 0]);
        let s = d.to_string();
        assert!(s.contains("error [cycle]"));
        assert!(s.contains("0 -> 1 -> 2 -> 0"));
        assert!(s.contains("(tasks 0, 2)"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ValidationReport {
            tasks_checked: 2,
            conflict_edges_checked: 1,
            ..Default::default()
        };
        let mut b = ValidationReport::default();
        b.push(Diagnostic::error("r", "m"));
        b.tasks_checked = 3;
        a.merge(b);
        assert_eq!(a.tasks_checked, 5);
        assert_eq!(a.error_count(), 1);
        assert!(!a.is_clean());
    }
}
