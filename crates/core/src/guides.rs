//! Routing-guide generation for the detailed router (paper Fig. 5, final
//! step: "generate routing guide & patches").

use std::fmt;

use fastgr_design::Design;
use fastgr_grid::{Point2, Rect, Route};

/// One guide box: a rectangle of G-cells on one layer inside which the
/// detailed router may place wires of the net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GuideBox {
    /// Metal layer of the box.
    pub layer: u8,
    /// Covered G-cell rectangle.
    pub rect: Rect,
}

/// The routing guides of a whole design: one box list per net.
///
/// Guides expand every routed wire by one G-cell on each side (the
/// conventional guide "patch"), and cover via stacks with a unit box per
/// layer, so the detailed router always has a connected corridor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteGuides {
    per_net: Vec<Vec<GuideBox>>,
}

impl RouteGuides {
    /// Builds guides from per-net routes.
    pub fn from_routes(design: &Design, routes: &[Route]) -> Self {
        let (w, h) = (design.width(), design.height());
        let per_net = routes
            .iter()
            .map(|route| {
                let mut boxes = Vec::new();
                for s in route.segments() {
                    let rect = Rect::new(s.from, s.to).inflated(1, w, h);
                    boxes.push(GuideBox {
                        layer: s.layer,
                        rect,
                    });
                }
                for v in route.vias() {
                    let unit = Rect::new(v.at, v.at).inflated(1, w, h);
                    for layer in v.lo..=v.hi {
                        boxes.push(GuideBox { layer, rect: unit });
                    }
                }
                boxes.sort_by_key(|b| (b.layer, b.rect.lo, b.rect.hi));
                boxes.dedup();
                boxes
            })
            .collect();
        Self { per_net }
    }

    /// The guide boxes of net `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: u32) -> &[GuideBox] {
        &self.per_net[id as usize]
    }

    /// Number of nets covered.
    pub fn net_count(&self) -> usize {
        self.per_net.len()
    }

    /// Total number of guide boxes.
    pub fn box_count(&self) -> usize {
        self.per_net.iter().map(Vec::len).sum()
    }

    /// Whether every pin of every net is covered by at least one of its
    /// guide boxes (on any layer) — the contract the detailed router needs.
    /// Pin-only nets (no geometry) are vacuously covered.
    pub fn covers_pins(&self, design: &Design) -> bool {
        design.nets().iter().all(|net| {
            let boxes = &self.per_net[net.id().index()];
            if boxes.is_empty() {
                return net.distinct_positions().len() <= 1;
            }
            net.pins()
                .iter()
                .all(|pin| boxes.iter().any(|b| b.rect.contains(pin.position)))
        })
    }
}

impl fmt::Display for RouteGuides {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "guides: {} nets, {} boxes",
            self.net_count(),
            self.box_count()
        )
    }
}

/// Convenience: the guide boxes covering a G-cell for one net.
impl RouteGuides {
    /// Boxes of net `id` on `layer` containing `at`.
    pub fn boxes_at(&self, id: u32, layer: u8, at: Point2) -> impl Iterator<Item = &GuideBox> {
        self.per_net[id as usize]
            .iter()
            .filter(move |b| b.layer == layer && b.rect.contains(at))
    }
}

impl RouteGuides {
    /// Serialises the guides in the ISPD / CUGR `.guide` text format — one
    /// block per net:
    ///
    /// ```text
    /// <net name>
    /// (
    /// <x0> <y0> <x1> <y1> M<layer>
    /// ...
    /// )
    /// ```
    ///
    /// Coordinates are inclusive G-cell indices. This is the file a
    /// detailed router (Dr. CU, TritonRoute) consumes.
    pub fn to_guide_text(&self, design: &Design) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for net in design.nets() {
            let _ = writeln!(out, "{}", net.name());
            let _ = writeln!(out, "(");
            for b in self.net(net.id().0) {
                let _ = writeln!(
                    out,
                    "{} {} {} {} M{}",
                    b.rect.lo.x, b.rect.lo.y, b.rect.hi.x, b.rect.hi.y, b.layer
                );
            }
            let _ = writeln!(out, ")");
        }
        out
    }

    /// Parses guides from the `.guide` text format produced by
    /// [`RouteGuides::to_guide_text`]. Net blocks must appear in net-id
    /// order matching `design`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending line when the
    /// text is malformed or inconsistent with `design`.
    pub fn from_guide_text(design: &Design, text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate().peekable();
        let mut per_net = Vec::with_capacity(design.nets().len());
        for net in design.nets() {
            let (no, name) = lines
                .next()
                .ok_or_else(|| format!("unexpected EOF, expected net {}", net.name()))?;
            if name.trim() != net.name() {
                return Err(format!(
                    "line {}: expected net {}, found {:?}",
                    no + 1,
                    net.name(),
                    name
                ));
            }
            match lines.next() {
                Some((_, l)) if l.trim() == "(" => {}
                other => {
                    return Err(format!(
                        "net {}: expected '(' after the name, found {:?}",
                        net.name(),
                        other.map(|(_, l)| l)
                    ))
                }
            }
            let mut boxes = Vec::new();
            loop {
                let (no, line) = lines
                    .next()
                    .ok_or_else(|| format!("unexpected EOF inside net {}", net.name()))?;
                let line = line.trim();
                if line == ")" {
                    break;
                }
                let mut it = line.split_whitespace();
                let mut coord = || -> Result<u16, String> {
                    it.next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {}: bad guide box {:?}", no + 1, line))
                };
                let (x0, y0, x1, y1) = (coord()?, coord()?, coord()?, coord()?);
                let layer_tok = it
                    .next()
                    .ok_or_else(|| format!("line {}: missing layer", no + 1))?;
                let layer: u8 = layer_tok
                    .strip_prefix('M')
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("line {}: bad layer {:?}", no + 1, layer_tok))?;
                if x1 >= design.width() || y1 >= design.height() || layer >= design.layers() {
                    return Err(format!("line {}: guide box outside the grid", no + 1));
                }
                boxes.push(GuideBox {
                    layer,
                    rect: Rect::new(Point2::new(x0, y0), Point2::new(x1, y1)),
                });
            }
            per_net.push(boxes);
        }
        Ok(Self { per_net })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::PatternMode;
    use crate::ordering::SortingScheme;
    use crate::pattern::{PatternEngine, PatternStage};
    use fastgr_design::Generator;
    use fastgr_grid::CostParams;

    fn routed() -> (fastgr_design::Design, Vec<Route>) {
        let design = Generator::tiny(9).generate();
        let mut graph = design.build_graph(CostParams::default()).expect("valid");
        let stage = PatternStage {
            mode: PatternMode::LShape,
            engine: PatternEngine::SequentialCpu,
            sorting: SortingScheme::HpwlAscending,
            steiner_passes: 4,
            congestion_aware_planning: false,
            cost_probing: true,
            validate: true,
        };
        let routes = stage.run(&design, &mut graph).expect("ok").routes;
        (design, routes)
    }

    #[test]
    fn guides_cover_every_pin() {
        let (design, routes) = routed();
        let guides = RouteGuides::from_routes(&design, &routes);
        assert!(guides.covers_pins(&design));
        assert_eq!(guides.net_count(), design.nets().len());
        assert!(guides.box_count() > 0);
    }

    #[test]
    fn via_stacks_produce_boxes_on_every_layer() {
        let (design, routes) = routed();
        let guides = RouteGuides::from_routes(&design, &routes);
        // Find a net with a via stack and check per-layer coverage.
        let (id, via) = routes
            .iter()
            .enumerate()
            .find_map(|(i, r)| r.vias().first().map(|v| (i as u32, *v)))
            .expect("some net has vias");
        for layer in via.lo..=via.hi {
            assert!(
                guides.boxes_at(id, layer, via.at).next().is_some(),
                "layer {layer} of via stack uncovered"
            );
        }
    }

    #[test]
    fn guide_text_round_trips() {
        let (design, routes) = routed();
        let guides = RouteGuides::from_routes(&design, &routes);
        let text = guides.to_guide_text(&design);
        let back = RouteGuides::from_guide_text(&design, &text).expect("own output parses");
        assert_eq!(guides, back);
    }

    #[test]
    fn guide_text_rejects_corruption() {
        let (design, routes) = routed();
        let guides = RouteGuides::from_routes(&design, &routes);
        let text = guides.to_guide_text(&design);
        // Wrong net name.
        let bad = text.replacen("net0", "wrong", 1);
        assert!(RouteGuides::from_guide_text(&design, &bad).is_err());
        // Out-of-grid box.
        let bad = text.replace(" M1", " M99");
        assert!(RouteGuides::from_guide_text(&design, &bad).is_err());
        // Truncation.
        let bad = &text[..text.len() / 2];
        assert!(RouteGuides::from_guide_text(&design, bad).is_err());
    }

    #[test]
    fn boxes_stay_on_grid() {
        let (design, routes) = routed();
        let guides = RouteGuides::from_routes(&design, &routes);
        for id in 0..guides.net_count() as u32 {
            for b in guides.net(id) {
                assert!(b.rect.hi.x < design.width());
                assert!(b.rect.hi.y < design.height());
            }
        }
    }
}
