//! The netlist model: pins, nets and whole designs.

use std::fmt;

use fastgr_grid::{CostParams, GridError, GridGraph, Point2, Rect};

/// Identifier of a net within one [`Design`], dense from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NetId(pub u32);

impl NetId {
    /// The dense index as `usize` (for vector indexing).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A pin: a point of a net mapped to a G-cell on a metal layer.
///
/// Pins live on the lowest layers in practice; the generator places all
/// pins on layer 0 (the unroutable pin layer), forcing routes to via up —
/// the same situation the ICCAD2019 benchmarks create.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pin {
    /// G-cell the pin maps to.
    pub position: Point2,
    /// Metal layer of the pin access point.
    pub layer: u8,
}

impl Pin {
    /// Creates a pin.
    pub const fn new(position: Point2, layer: u8) -> Self {
        Self { position, layer }
    }
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pin {} M{}", self.position, self.layer)
    }
}

/// A multi-pin net to be routed.
///
/// # Example
///
/// ```
/// use fastgr_design::{Net, NetId, Pin};
/// use fastgr_grid::Point2;
///
/// let net = Net::new(NetId(0), "clk", vec![
///     Pin::new(Point2::new(0, 0), 0),
///     Pin::new(Point2::new(7, 3), 0),
/// ]);
/// assert_eq!(net.hpwl(), 10);
/// assert_eq!(net.bounding_box().area(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    id: NetId,
    name: String,
    pins: Vec<Pin>,
}

impl Net {
    /// Creates a net. Duplicate pin positions are kept (they occur in real
    /// designs when several physical pins fall into one G-cell); the Steiner
    /// builder deduplicates.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is empty: a net needs at least one pin.
    pub fn new(id: NetId, name: impl Into<String>, pins: Vec<Pin>) -> Self {
        assert!(!pins.is_empty(), "a net needs at least one pin");
        Self {
            id,
            name: name.into(),
            pins,
        }
    }

    /// The net's identifier.
    pub fn id(&self) -> NetId {
        self.id
    }

    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net's pins.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Number of pins.
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }

    /// The 2-D bounding box over all pins.
    pub fn bounding_box(&self) -> Rect {
        Rect::bounding(self.pins.iter().map(|p| p.position)).expect("nets are non-empty")
    }

    /// Half-perimeter wirelength of the bounding box (G-cell edge units).
    pub fn hpwl(&self) -> u32 {
        self.bounding_box().half_perimeter()
    }

    /// Distinct pin G-cell positions, sorted.
    pub fn distinct_positions(&self) -> Vec<Point2> {
        let mut v = Vec::new();
        self.distinct_positions_into(&mut v);
        v
    }

    /// Writes the distinct, sorted pin positions into `out` (cleared
    /// first). Reusing one buffer across nets keeps hot loops free of
    /// per-net allocations once `out` reaches its high-water capacity.
    pub fn distinct_positions_into(&self, out: &mut Vec<Point2>) {
        out.clear();
        out.extend(self.pins.iter().map(|p| p.position));
        out.sort_unstable();
        out.dedup();
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net {} ({}): {} pins, hpwl {}",
            self.name,
            self.id,
            self.pins.len(),
            self.hpwl()
        )
    }
}

/// A macro blockage: a region of one layer with scaled-down capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blockage {
    /// Affected metal layer.
    pub layer: u8,
    /// Affected region (edge lower endpoints).
    pub region: Rect,
    /// Capacity scale factor in `[0, 1]` (0 = fully blocked).
    pub factor: f64,
}

/// A complete global-routing problem instance.
///
/// Couples the grid geometry (dimensions, layer count, uniform track
/// capacity, blockages) with the netlist. [`Design::build_graph`]
/// instantiates the matching [`GridGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    name: String,
    width: u16,
    height: u16,
    layers: u8,
    capacity: f64,
    /// Per-layer capacity override (index = layer). Empty means the uniform
    /// `capacity` applies to every routable layer; present (e.g. from an
    /// ISPD import, where layers carry different track counts) it takes
    /// precedence.
    layer_capacities: Vec<f64>,
    blockages: Vec<Blockage>,
    nets: Vec<Net>,
}

impl Design {
    /// Creates a design.
    ///
    /// # Panics
    ///
    /// Panics if a net's id does not match its position in `nets`, or if a
    /// pin lies outside the `width x height` grid — these are construction
    /// bugs, not runtime conditions.
    pub fn new(
        name: impl Into<String>,
        width: u16,
        height: u16,
        layers: u8,
        capacity: f64,
        blockages: Vec<Blockage>,
        nets: Vec<Net>,
    ) -> Self {
        for (i, net) in nets.iter().enumerate() {
            assert_eq!(net.id().index(), i, "net ids must be dense and ordered");
            for pin in net.pins() {
                assert!(
                    pin.position.x < width && pin.position.y < height && pin.layer < layers,
                    "pin {pin} outside {width}x{height}x{layers} grid"
                );
            }
        }
        Self {
            name: name.into(),
            width,
            height,
            layers,
            capacity,
            layer_capacities: Vec::new(),
            blockages,
            nets,
        }
    }

    /// Replaces the uniform capacity with explicit per-layer capacities
    /// (index = layer; entry 0, the pin layer, is ignored). Used by the
    /// ISPD importer, where each metal layer carries its own track count.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len()` differs from the layer count.
    pub fn with_layer_capacities(mut self, capacities: Vec<f64>) -> Self {
        assert_eq!(
            capacities.len(),
            self.layers as usize,
            "one capacity per layer"
        );
        self.layer_capacities = capacities;
        self
    }

    /// The per-layer capacity override (empty = uniform
    /// [`Design::capacity`]).
    pub fn layer_capacities(&self) -> &[f64] {
        &self.layer_capacities
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid width in G-cells.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in G-cells.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of metal layers.
    pub fn layers(&self) -> u8 {
        self.layers
    }

    /// Uniform per-edge track capacity of routable layers.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The blockages.
    pub fn blockages(&self) -> &[Blockage] {
        &self.blockages
    }

    /// The nets, ordered by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Looks up a net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Total number of pins across all nets.
    pub fn pin_count(&self) -> usize {
        self.nets.iter().map(Net::pin_count).sum()
    }

    /// Builds the [`GridGraph`] this design routes on: uniform capacity on
    /// routable layers, blockage regions scaled down.
    ///
    /// # Errors
    ///
    /// Propagates [`GridError`] for degenerate dimensions (cannot happen for
    /// generator-produced designs).
    pub fn build_graph(&self, params: CostParams) -> Result<GridGraph, GridError> {
        let mut g = GridGraph::new(self.width, self.height, self.layers, params)?;
        if self.layer_capacities.is_empty() {
            g.fill_capacity(self.capacity);
        } else {
            for (l, &cap) in self.layer_capacities.iter().enumerate().skip(1) {
                g.set_layer_capacity(l as u8, cap);
            }
        }
        for b in &self.blockages {
            g.scale_region_capacity(b.layer, b.region, b.factor);
        }
        Ok(g)
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design {}: {} nets, {}x{} G-cells, {} layers",
            self.name,
            self.nets.len(),
            self.width,
            self.height,
            self.layers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pin(id: u32, a: (u16, u16), b: (u16, u16)) -> Net {
        Net::new(
            NetId(id),
            format!("n{id}"),
            vec![Pin::new(a.into(), 0), Pin::new(b.into(), 0)],
        )
    }

    #[test]
    fn hpwl_matches_bounding_box() {
        let n = two_pin(0, (2, 3), (7, 1));
        assert_eq!(n.hpwl(), 7);
        assert_eq!(n.bounding_box().width(), 6);
        assert_eq!(n.bounding_box().height(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one pin")]
    fn empty_net_panics() {
        let _ = Net::new(NetId(0), "bad", vec![]);
    }

    #[test]
    fn distinct_positions_deduplicates() {
        let n = Net::new(
            NetId(0),
            "n0",
            vec![
                Pin::new(Point2::new(1, 1), 0),
                Pin::new(Point2::new(1, 1), 0),
                Pin::new(Point2::new(2, 2), 0),
            ],
        );
        assert_eq!(n.distinct_positions().len(), 2);
    }

    #[test]
    fn distinct_positions_into_reuses_buffer() {
        let a = Net::new(
            NetId(0),
            "a",
            vec![
                Pin::new(Point2::new(4, 4), 0),
                Pin::new(Point2::new(1, 1), 0),
                Pin::new(Point2::new(4, 4), 0),
            ],
        );
        let b = Net::new(NetId(1), "b", vec![Pin::new(Point2::new(9, 9), 0)]);
        let mut buf = Vec::new();
        a.distinct_positions_into(&mut buf);
        assert_eq!(buf, a.distinct_positions());
        // The stale contents from the previous net never leak through.
        b.distinct_positions_into(&mut buf);
        assert_eq!(buf, vec![Point2::new(9, 9)]);
    }

    #[test]
    fn design_builds_matching_graph() {
        let design = Design::new(
            "t",
            8,
            8,
            4,
            3.0,
            vec![Blockage {
                layer: 1,
                region: Rect::new(Point2::new(0, 0), Point2::new(3, 3)),
                factor: 0.0,
            }],
            vec![two_pin(0, (0, 0), (5, 5))],
        );
        let g = design.build_graph(CostParams::default()).expect("valid");
        assert_eq!(g.num_layers(), 4);
        assert_eq!(g.wire_capacity(1, Point2::new(5, 5)), Some(3.0));
        assert_eq!(g.wire_capacity(1, Point2::new(1, 1)), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn out_of_order_net_ids_panic() {
        let _ = Design::new("t", 8, 8, 4, 3.0, vec![], vec![two_pin(5, (0, 0), (1, 1))]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_pin_panics() {
        let _ = Design::new("t", 8, 8, 4, 3.0, vec![], vec![two_pin(0, (0, 0), (9, 1))]);
    }

    #[test]
    fn layer_capacities_override_uniform() {
        let d = Design::new("t", 8, 8, 4, 3.0, vec![], vec![two_pin(0, (0, 0), (5, 5))])
            .with_layer_capacities(vec![0.0, 1.0, 2.0, 5.0]);
        let g = d.build_graph(CostParams::default()).expect("valid");
        assert_eq!(g.wire_capacity(1, Point2::new(0, 0)), Some(1.0));
        assert_eq!(g.wire_capacity(3, Point2::new(0, 0)), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "one capacity per layer")]
    fn wrong_capacity_count_panics() {
        let _ = Design::new("t", 8, 8, 4, 3.0, vec![], vec![two_pin(0, (0, 0), (1, 1))])
            .with_layer_capacities(vec![1.0, 2.0]);
    }

    #[test]
    fn display_reports_shape() {
        let d = Design::new(
            "demo",
            8,
            9,
            4,
            3.0,
            vec![],
            vec![two_pin(0, (0, 0), (1, 1))],
        );
        assert_eq!(d.to_string(), "design demo: 1 nets, 8x9 G-cells, 4 layers");
    }
}
