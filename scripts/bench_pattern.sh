#!/usr/bin/env sh
# Serial-vs-parallel wall-clock snapshot of the pattern stage.
#
# Builds the release bench binary and routes the synthetic suite three
# times per benchmark (serial, parallel, and parallel with the prefix-sum
# cost prober off), verifying that geometry is identical across worker
# counts and across probed/direct cost evaluation, then writes
# BENCH_pattern.json at the repo root — including the prober's cache-build
# wall time next to the probe savings it buys.
#
# Usage: scripts/bench_pattern.sh [--full] [--workers N] [--out PATH]
#                                 [--trace PATH]
#
# With --trace PATH the parallel runs are recorded through the telemetry
# layer and written as a Chrome trace_event profile (open in Perfetto).
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline -p fastgr-bench
exec target/release/bench_pattern "$@"
