//! Micro-benchmarks of the planning substrate: Steiner tree construction
//! (with and without the optimisation passes) and whole-design planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fastgr_design::{Generator, GeneratorParams, Net, NetId, Pin, SplitMix64};
use fastgr_grid::Point2;
use fastgr_steiner::SteinerBuilder;

fn random_net(pins: usize, side: u16, seed: u64) -> Net {
    let mut rng = SplitMix64::new(seed);
    Net::new(
        NetId(0),
        "bench",
        (0..pins)
            .map(|_| {
                Pin::new(
                    Point2::new(
                        rng.next_below(side as u64) as u16,
                        rng.next_below(side as u64) as u16,
                    ),
                    0,
                )
            })
            .collect(),
    )
}

fn bench_tree_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_tree");
    for pins in [3usize, 8, 20, 48] {
        let net = random_net(pins, 128, pins as u64);
        group.bench_with_input(BenchmarkId::new("optimised", pins), &pins, |b, _| {
            let builder = SteinerBuilder::new();
            b.iter(|| black_box(builder.build(&net)));
        });
        group.bench_with_input(BenchmarkId::new("mst_only", pins), &pins, |b, _| {
            let builder = SteinerBuilder::new().with_passes(0);
            b.iter(|| black_box(builder.build(&net)));
        });
    }
    group.finish();
}

fn bench_design_planning(c: &mut Criterion) {
    // Whole-design tree construction: the planning cost of the pattern
    // routing stage (Fig. 5's "pattern routing planning").
    let design = Generator::new(GeneratorParams {
        num_nets: 3000,
        width: 64,
        height: 64,
        ..GeneratorParams::default()
    })
    .generate();
    c.bench_function("plan_3000_nets", |b| {
        let builder = SteinerBuilder::new();
        b.iter(|| {
            let trees: Vec<_> = design.nets().iter().map(|n| builder.build(n)).collect();
            black_box(trees)
        });
    });
}

criterion_group!(benches, bench_tree_construction, bench_design_planning);
criterion_main!(benches);
