#!/usr/bin/env bash
# Full local gate, mirroring CI: build, tests, clippy, and the
# fastgr-analysis correctness checks (`cargo xtask check` — workspace lint
# pass, static schedule validation, happens-before race check, mutation
# sweep). Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== test =="
cargo test -q

echo "== test (workspace) =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== xtask check =="
cargo xtask check

echo "== trace export smoke =="
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
target/release/fastgr generate tiny --out "$trace_tmp/tiny.txt"
target/release/fastgr route "$trace_tmp/tiny.txt" --trace "$trace_tmp/trace.json" >/dev/null
cargo xtask validate-trace "$trace_tmp/trace.json"

echo "== probe equivalence =="
cargo test -q -p fastgr-core --test probe_equivalence

echo "== pattern bench smoke =="
cargo build --release -p fastgr-bench
target/release/bench_pattern --workers 2 --out "$trace_tmp/BENCH_pattern.json" >/dev/null
FASTGR_BENCH_MS=20 cargo bench -q -p fastgr-bench --bench pattern_kernels >/dev/null

echo "== rrr bench smoke =="
target/release/bench_rrr --workers 2 --iterations 2 --out "$trace_tmp/BENCH_rrr.json" >/dev/null

echo "All checks passed."
