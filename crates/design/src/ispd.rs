//! ISPD2007/2008 global-routing contest `.gr` benchmark importer.
//!
//! The `.gr` format is the lingua franca of academic global routers
//! (FastRoute, NTHU-Route, MaizeRouter, …):
//!
//! ```text
//! grid <x> <y> <layers>
//! vertical capacity   <c1> ... <cL>
//! horizontal capacity <c1> ... <cL>
//! minimum width       <w1> ... <wL>
//! minimum spacing     <s1> ... <sL>
//! via spacing         <v1> ... <vL>
//! <llx> <lly> <tile_width> <tile_height>
//! num net <n>
//! <name> <id> <pins> <min_width>
//! <x> <y> <layer>
//! ...
//! <adjustments>
//! <x1> <y1> <l1> <x2> <y2> <l2> <new_capacity>
//! ```
//!
//! Mapping to this crate's model (documented approximations):
//!
//! * file layer `k` (1-based) becomes our layer `k` and our layer 0 stays
//!   the unroutable pin layer, so the grid gains one layer;
//! * per-layer capacities convert from wiring units to *tracks* by dividing
//!   by `minimum width + minimum spacing` of the layer;
//! * pin physical coordinates map to G-cells through the tile geometry and
//!   clamp to the grid; pin layers map to the pin layer 0 (the contest
//!   pins are all on layer 1);
//! * capacity adjustments become single-cell [`Blockage`]s with the factor
//!   `new / original` on the affected layer.

use fastgr_grid::{Point2, Rect};

use crate::error::ParseDesignError;
use crate::net::{Blockage, Design, Net, NetId, Pin};

/// Internal line cursor with 1-based positions for error messages.
struct Cursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines().enumerate(),
        }
    }

    /// Next non-empty line.
    fn next(&mut self, expected: &'static str) -> Result<(usize, &'a str), ParseDesignError> {
        for (no, line) in self.lines.by_ref() {
            let t = line.trim();
            if !t.is_empty() {
                return Ok((no + 1, t));
            }
        }
        Err(ParseDesignError::UnexpectedEof { expected })
    }

    /// Next non-empty line if any.
    fn try_next(&mut self) -> Option<(usize, &'a str)> {
        for (no, line) in self.lines.by_ref() {
            let t = line.trim();
            if !t.is_empty() {
                return Some((no + 1, t));
            }
        }
        None
    }
}

fn bad(line_no: usize, expected: &'static str, content: &str) -> ParseDesignError {
    ParseDesignError::BadLine {
        line_no,
        expected,
        content: content.to_owned(),
    }
}

/// Parses the numeric tail of a line after `skip` leading words.
fn numbers(line: &str, skip: usize) -> Vec<f64> {
    line.split_whitespace()
        .skip(skip)
        .filter_map(|t| t.parse().ok())
        .collect()
}

impl Design {
    /// Imports an ISPD2007/2008 contest `.gr` benchmark.
    ///
    /// `name` labels the resulting design. See the module docs for the
    /// mapping and its approximations.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDesignError`] naming the first offending line on
    /// malformed input.
    pub fn from_ispd2008(name: impl Into<String>, text: &str) -> Result<Design, ParseDesignError> {
        let mut cur = Cursor::new(text);

        // grid X Y L
        let (no, line) = cur.next("grid line")?;
        let mut it = line.split_whitespace();
        if it.next() != Some("grid") {
            return Err(bad(no, "grid <x> <y> <layers>", line));
        }
        let dims = numbers(line, 1);
        if dims.len() != 3 {
            return Err(bad(no, "grid <x> <y> <layers>", line));
        }
        let (gx, gy, file_layers) = (dims[0] as u16, dims[1] as u16, dims[2] as usize);
        if gx < 2 || gy < 2 || file_layers == 0 || file_layers > 254 {
            return Err(ParseDesignError::Invalid {
                line_no: no,
                reason: format!("unusable grid {gx}x{gy} with {file_layers} layers"),
            });
        }

        // Capacity / width / spacing headers.
        let mut expect_vec =
            |head: &'static str, words: usize| -> Result<Vec<f64>, ParseDesignError> {
                let (no, line) = cur.next(head)?;
                if !line.starts_with(head.split(' ').next().unwrap_or(head)) {
                    return Err(bad(no, head, line));
                }
                let v = numbers(line, words);
                if v.len() != file_layers {
                    return Err(bad(no, head, line));
                }
                Ok(v)
            };
        let vertical = expect_vec("vertical capacity", 2)?;
        let horizontal = expect_vec("horizontal capacity", 2)?;
        let min_width = expect_vec("minimum width", 2)?;
        let min_spacing = expect_vec("minimum spacing", 2)?;
        let _via_spacing = expect_vec("via spacing", 2)?;

        // Tile geometry.
        let (no, line) = cur.next("tile geometry line")?;
        let geo = numbers(line, 0);
        if geo.len() != 4 {
            return Err(bad(no, "<llx> <lly> <tile_w> <tile_h>", line));
        }
        let (llx, lly, tile_w, tile_h) = (geo[0], geo[1], geo[2], geo[3]);
        if tile_w <= 0.0 || tile_h <= 0.0 {
            return Err(ParseDesignError::Invalid {
                line_no: no,
                reason: "tile dimensions must be positive".to_owned(),
            });
        }

        // Per-layer track capacities; our layer k = file layer k, plus the
        // pin layer 0 with zero capacity.
        let mut layer_caps = vec![0.0f64; file_layers + 1];
        let mut original_caps = vec![0.0f64; file_layers + 1];
        for k in 0..file_layers {
            let pitch = (min_width[k] + min_spacing[k]).max(1.0);
            // Our alternating-direction model routes layer k+1 in one
            // direction; take whichever capacity the file grants there
            // (contest layers are single-direction: one of the two is 0).
            let units = vertical[k].max(horizontal[k]);
            layer_caps[k + 1] = units / pitch;
            original_caps[k + 1] = units / pitch;
        }
        let layers = (file_layers + 1) as u8;

        // num net N
        let (no, line) = cur.next("`num net` line")?;
        let mut it = line.split_whitespace();
        if (it.next(), it.next()) != (Some("num"), Some("net")) {
            return Err(bad(no, "num net <count>", line));
        }
        let net_count: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(no, "num net <count>", line))?;

        let to_cell = |px: f64, py: f64| -> Point2 {
            let cx = ((px - llx) / tile_w).floor().clamp(0.0, gx as f64 - 1.0);
            let cy = ((py - lly) / tile_h).floor().clamp(0.0, gy as f64 - 1.0);
            Point2::new(cx as u16, cy as u16)
        };

        let mut nets = Vec::with_capacity(net_count);
        for _ in 0..net_count {
            let (no, line) = cur.next("net header")?;
            let mut it = line.split_whitespace();
            let net_name = it
                .next()
                .ok_or_else(|| bad(no, "<name> <id> <pins>", line))?
                .to_owned();
            let _id = it.next();
            let pin_count: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad(no, "<name> <id> <pins> [min-width]", line))?;
            if pin_count == 0 {
                return Err(ParseDesignError::Invalid {
                    line_no: no,
                    reason: format!("net {net_name} declares zero pins"),
                });
            }
            let mut pins = Vec::with_capacity(pin_count);
            for _ in 0..pin_count {
                let (no, line) = cur.next("pin line")?;
                let v = numbers(line, 0);
                if v.len() < 2 {
                    return Err(bad(no, "<x> <y> [layer]", line));
                }
                // Contest pins sit on layer 1; our pins live on layer 0.
                pins.push(Pin::new(to_cell(v[0], v[1]), 0));
            }
            nets.push(Net::new(NetId(nets.len() as u32), net_name, pins));
        }

        // Capacity adjustments (optional tail).
        let mut blockages = Vec::new();
        if let Some((no, line)) = cur.try_next() {
            let count: usize = line
                .split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad(no, "<adjustment count>", line))?;
            for _ in 0..count {
                let (no, line) = cur.next("capacity adjustment")?;
                let v = numbers(line, 0);
                if v.len() != 7 {
                    return Err(bad(no, "<x1> <y1> <l1> <x2> <y2> <l2> <capacity>", line));
                }
                let (x1, y1, l1) = (v[0] as u16, v[1] as u16, v[2] as usize);
                let (x2, y2, _l2) = (v[3] as u16, v[4] as u16, v[5] as usize);
                if l1 == 0 || l1 > file_layers || x1.max(x2) >= gx || y1.max(y2) >= gy {
                    return Err(ParseDesignError::Invalid {
                        line_no: no,
                        reason: "capacity adjustment outside the grid".to_owned(),
                    });
                }
                let layer = l1 as u8; // our layer index (file layer k -> k)
                let pitch = (min_width[l1 - 1] + min_spacing[l1 - 1]).max(1.0);
                let new_tracks = v[6] / pitch;
                let original = original_caps[l1];
                let factor = if original > 0.0 {
                    (new_tracks / original).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                // The adjustment names the edge between two adjacent cells;
                // our blockage covers the edge's lower endpoint.
                blockages.push(Blockage {
                    layer,
                    region: Rect::new(
                        Point2::new(x1.min(x2), y1.min(y2)),
                        Point2::new(x1.min(x2), y1.min(y2)),
                    ),
                    factor,
                });
            }
        }

        let avg_cap = layer_caps.iter().skip(1).sum::<f64>() / file_layers as f64;
        Ok(Design::new(name, gx, gy, layers, avg_cap, blockages, nets)
            .with_layer_capacities(layer_caps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_grid::CostParams;

    /// A tiny hand-written ISPD2008-style benchmark.
    fn sample() -> &'static str {
        "grid 4 4 2\n\
         vertical capacity 0 20\n\
         horizontal capacity 20 0\n\
         minimum width 1 1\n\
         minimum spacing 1 1\n\
         via spacing 1 1\n\
         0 0 10 10\n\
         num net 2\n\
         netA 0 2 1\n\
         5 5 1\n\
         35 25 1\n\
         netB 1 3 1\n\
         5 35 1\n\
         15 35 1\n\
         35 35 1\n\
         1\n\
         1 1 1 2 1 1 10\n"
    }

    #[test]
    fn parses_the_sample() {
        let d = Design::from_ispd2008("sample", sample()).expect("valid ispd text");
        assert_eq!(d.width(), 4);
        assert_eq!(d.height(), 4);
        assert_eq!(d.layers(), 3); // 2 file layers + pin layer
        assert_eq!(d.nets().len(), 2);
        // Capacity: 20 units / (1 width + 1 spacing) = 10 tracks.
        assert_eq!(d.layer_capacities(), &[0.0, 10.0, 10.0]);
        // Pin (5, 5) -> cell (0, 0); (35, 25) -> cell (3, 2).
        assert_eq!(d.nets()[0].pins()[0].position, Point2::new(0, 0));
        assert_eq!(d.nets()[0].pins()[1].position, Point2::new(3, 2));
        // One adjustment: factor 10/20 wiring units = 5/10 tracks = 0.5.
        assert_eq!(d.blockages().len(), 1);
        assert!((d.blockages()[0].factor - 0.5).abs() < 1e-9);
    }

    #[test]
    fn imported_design_builds_a_graph() {
        let d = Design::from_ispd2008("sample", sample()).expect("valid");
        let g = d.build_graph(CostParams::default()).expect("valid dims");
        // M1 horizontal capacity 10 tracks, scaled by the adjustment at (1,1).
        assert_eq!(g.wire_capacity(1, Point2::new(0, 0)), Some(10.0));
        assert_eq!(g.wire_capacity(1, Point2::new(1, 1)), Some(5.0));
        // M2 vertical.
        assert_eq!(g.wire_capacity(2, Point2::new(0, 0)), Some(10.0));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            Design::from_ispd2008("x", "hello world\n"),
            Err(ParseDesignError::BadLine { .. })
        ));
    }

    #[test]
    fn rejects_wrong_capacity_arity() {
        let text = "grid 4 4 2\nvertical capacity 0\n";
        assert!(Design::from_ispd2008("x", text).is_err());
    }

    #[test]
    fn rejects_truncated_nets() {
        let text = "grid 4 4 2\n\
            vertical capacity 0 20\nhorizontal capacity 20 0\n\
            minimum width 1 1\nminimum spacing 1 1\nvia spacing 1 1\n\
            0 0 10 10\nnum net 1\nnetA 0 2 1\n5 5 1\n";
        assert!(matches!(
            Design::from_ispd2008("x", text),
            Err(ParseDesignError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn out_of_grid_pins_clamp() {
        let text = "grid 4 4 2\n\
            vertical capacity 0 20\nhorizontal capacity 20 0\n\
            minimum width 1 1\nminimum spacing 1 1\nvia spacing 1 1\n\
            0 0 10 10\nnum net 1\nnetA 0 2 1\n-5 -5 1\n999 999 1\n";
        let d = Design::from_ispd2008("x", text).expect("clamps");
        assert_eq!(d.nets()[0].pins()[0].position, Point2::new(0, 0));
        assert_eq!(d.nets()[0].pins()[1].position, Point2::new(3, 3));
    }

    #[test]
    fn imported_design_routes_end_to_end() {
        // The importer's output must be routable by the full router.
        let d = Design::from_ispd2008("sample", sample()).expect("valid");
        // (Routing itself is exercised in the facade integration tests; at
        // this crate level we check the graph + netlist invariants.)
        assert!(d.nets().iter().all(|n| n.pin_count() >= 2));
        assert_eq!(d.pin_count(), 5);
    }
}
