//! End-to-end router benchmarks: the three presets on a small congested
//! design, plus the pattern-stage host cost in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fastgr_core::{PatternEngine, PatternMode, PatternStage, Router, RouterConfig, SortingScheme};
use fastgr_design::{Design, Generator, GeneratorParams};
use fastgr_grid::CostParams;

fn small_congested() -> Design {
    Generator::new(GeneratorParams {
        name: "bench-e2e".into(),
        width: 24,
        height: 24,
        layers: 6,
        num_nets: 300,
        capacity: 3.0,
        hotspots: 3,
        hotspot_affinity: 0.5,
        blockages: 2,
        seed: 99,
    })
    .generate()
}

fn bench_presets(c: &mut Criterion) {
    let design = small_congested();
    let mut group = c.benchmark_group("router_presets");
    group.sample_size(10);
    for (label, config) in [
        ("cugr", RouterConfig::cugr()),
        ("fastgr_l", RouterConfig::fastgr_l()),
        ("fastgr_h", RouterConfig::fastgr_h()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(Router::new(config).run(&design).expect("routable")));
        });
    }
    group.finish();
}

fn bench_pattern_stage(c: &mut Criterion) {
    let design = small_congested();
    let mut group = c.benchmark_group("pattern_stage_host");
    group.sample_size(20);
    for (label, mode) in [
        ("l_shape", PatternMode::LShape),
        ("hybrid_all", PatternMode::HybridAll),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut graph = design.build_graph(CostParams::default()).expect("valid");
                let stage = PatternStage {
                    mode,
                    engine: PatternEngine::SequentialCpu,
                    sorting: SortingScheme::HpwlAscending,
                    steiner_passes: 4,
                    congestion_aware_planning: false,
                    cost_probing: true,
                    validate: false,
                };
                black_box(stage.run(&design, &mut graph).expect("routable"))
            });
        });
    }
    group.finish();
}

fn bench_two_d_flow(c: &mut Criterion) {
    let design = small_congested();
    c.bench_function("two_d_flow", |b| {
        b.iter(|| {
            let mut graph = design.build_graph(CostParams::default()).expect("valid");
            black_box(
                fastgr_assign::TwoDFlow::new()
                    .run(&design, &mut graph)
                    .expect("assignable"),
            )
        });
    });
}

fn bench_congestion_estimate(c: &mut Criterion) {
    let design = small_congested();
    c.bench_function("estimate_congestion", |b| {
        b.iter(|| black_box(fastgr_core::estimate_congestion(&design).expect("routable")));
    });
}

criterion_group!(
    benches,
    bench_presets,
    bench_pattern_stage,
    bench_two_d_flow,
    bench_congestion_estimate
);
criterion_main!(benches);
