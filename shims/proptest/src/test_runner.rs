//! Deterministic RNG, per-test configuration, and case errors.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Configuration of a `proptest!` block (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real proptest defaults to 256; 48 keeps the suite fast while
        // still exercising a meaningful spread of inputs. Override per
        // block with `#![proptest_config(ProptestConfig::with_cases(n))]`
        // or globally with the PROPTEST_CASES environment variable.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48);
        Self { cases }
    }
}

/// Failure of one sampled case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// A deterministic splitmix64 RNG, seeded from the test's path so every
/// run of a given test sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG deterministically seeded from `test_path`.
    pub fn for_test(test_path: &str) -> Self {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        // DefaultHasher::new() is specified to be stable across calls
        // within a process and is, in practice, stable across runs (no
        // random keys), which keeps case sequences reproducible.
        test_path.hash(&mut hasher);
        Self {
            state: hasher.finish() | 1,
        }
    }

    /// The current internal state (reported on failure for reproduction).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014) — tiny and well distributed.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}
