//! A minimal JSON parser for validating emitted traces.
//!
//! The workspace has no serde; CI smoke tests and the golden trace tests
//! still need to prove that what we emit *parses* and has the expected
//! shape. This is a small recursive-descent parser over the JSON grammar
//! (RFC 8259) — strict enough to reject malformed output, with just the
//! accessors the tests need. It is not a performance-oriented parser and
//! keeps the whole document in memory.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; member order is not preserved.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte sequence is valid; find its length).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let unit = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // `\u` + a low surrogate.
        if (0xD800..0xDC00).contains(&unit) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((unit as u32 - 0xD800) << 10) + (low as u32 - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&unit) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(unit as u32).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut unit: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            unit = unit << 4 | u16::from(d);
            self.pos += 1;
        }
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one leading zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("unparsable number"))?;
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("0").unwrap(), Value::Number(0.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, null], "d": {}}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(Value::as_str), Some("c"));
        assert_eq!(a[2], Value::Null);
        assert_eq!(v.get("d"), Some(&Value::Object(BTreeMap::new())));
    }

    #[test]
    fn resolves_escapes() {
        let v = parse(r#""a\n\t\"\\\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A\u{e9}"));
        // Surrogate pair → one astral scalar.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01",
            "1.",
            "nul",
            "[1] trailing",
            r#""\ud800""#,
            "\"raw\ncontrol\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
