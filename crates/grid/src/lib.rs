//! 3-D G-cell grid graph substrate for the FastGR global router.
//!
//! Global routing abstracts the chip into *G-cells* forming uniform
//! horizontal/vertical grids on every metal layer. This crate provides:
//!
//! * geometric primitives ([`Point2`], [`Point3`], [`Rect`]),
//! * the layer model with preferred routing directions ([`Direction`],
//!   [`LayerInfo`]),
//! * the routing-resource graph itself ([`GridGraph`]) with per-edge
//!   capacity/demand bookkeeping for wire edges and via edges,
//! * the CUGR-style logistic congestion cost model ([`CostParams`]),
//! * routed-net geometry ([`Route`], [`Segment`], [`Via`]) with
//!   commit/uncommit of routing demand, and
//! * congestion / overflow reporting ([`CongestionReport`]).
//!
//! # Example
//!
//! ```
//! use fastgr_grid::{CostParams, Direction, GridGraph, Point2, Route, Segment};
//!
//! # fn main() -> Result<(), fastgr_grid::GridError> {
//! // A 16x16 grid with 4 metal layers (layer 0 is the pin layer, capacity 0).
//! let mut graph = GridGraph::new(16, 16, 4, CostParams::default())?;
//! graph.fill_capacity(2.0);
//!
//! // Route a horizontal wire on layer 1 (horizontal preferred direction).
//! assert_eq!(graph.layer(1).direction, Direction::Horizontal);
//! let mut route = Route::new();
//! route.push_segment(Segment::new(1, Point2::new(1, 3), Point2::new(6, 3)));
//! graph.commit(&route)?;
//!
//! assert_eq!(route.wirelength(), 5);
//! assert_eq!(graph.report().total_wire_demand, 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod congestion;
mod cost;
mod error;
mod geom;
mod graph;
mod layer;
mod prober;
mod proptests;
mod route;

pub use congestion::CongestionReport;
pub use cost::CostParams;
pub use error::GridError;
pub use geom::{Point2, Point3, Rect};
pub use graph::GridGraph;
pub use layer::{Direction, LayerInfo};
pub use prober::CostProber;
pub use route::{Route, Segment, Via};
