//! Taskflow-substitute dependency-graph executor.
//!
//! The paper executes its ordered task graph with Taskflow [30], a C++
//! library that runs a task as soon as all its dependencies completed, using
//! a pool of CPU workers. This module reimplements that execution semantics
//! on top of a crossbeam channel work queue with atomic dependency counters.

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::channel;
use fastgr_telemetry::{Recorder, Stopwatch, TRACK_WORKER_BASE};

use crate::schedule::Schedule;

/// Observation hooks for one executor run, called from the worker threads.
///
/// Implementations receive the executor's *actual* runtime events — not the
/// static schedule — so an external checker (e.g. the happens-before race
/// checker in `fastgr-analysis`) can verify that the synchronisation the
/// executor really performed orders every pair of conflicting tasks. All
/// methods default to no-ops; implementations must be cheap and must not
/// call back into the executor.
pub trait ExecutionHooks: Sync {
    /// `task` is about to run on worker thread `worker`. Every event a
    /// worker reports after this one happened after it in that worker's
    /// program order.
    fn on_task_start(&self, task: u32, worker: usize) {
        let _ = (task, worker);
    }

    /// `task` finished running on worker thread `worker` (its `task_fn`
    /// returned). Reported before any successor of `task` is released.
    fn on_task_finish(&self, task: u32, worker: usize) {
        let _ = (task, worker);
    }

    /// The completion of `pred` decremented the dependency counter of
    /// `succ` — the executor's cross-thread synchronisation edge. `succ`
    /// starts only after every one of its predecessors reported this edge.
    fn on_handoff(&self, pred: u32, succ: u32) {
        let _ = (pred, succ);
    }
}

/// The default no-op hooks (zero observation overhead).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl ExecutionHooks for NoHooks {}

/// [`ExecutionHooks`] that report into a telemetry [`Recorder`]: each
/// task becomes a begin/end pair on the executing worker's track, and
/// every dependency handoff bumps the `sched.handoffs` counter.
///
/// With a disabled recorder every callback is a no-op branch, so the
/// hooks can be installed unconditionally.
#[derive(Debug, Clone)]
pub struct TraceHooks {
    recorder: Recorder,
}

impl TraceHooks {
    /// Hooks reporting into `recorder`.
    pub fn new(recorder: Recorder) -> Self {
        Self { recorder }
    }
}

impl ExecutionHooks for TraceHooks {
    fn on_task_start(&self, task: u32, worker: usize) {
        if self.recorder.is_enabled() {
            self.recorder.begin(
                &format!("task{task}"),
                "task",
                TRACK_WORKER_BASE + worker as u32,
            );
        }
    }

    fn on_task_finish(&self, task: u32, worker: usize) {
        if self.recorder.is_enabled() {
            self.recorder.end(
                &format!("task{task}"),
                "task",
                TRACK_WORKER_BASE + worker as u32,
            );
        }
    }

    fn on_handoff(&self, _pred: u32, _succ: u32) {
        self.recorder.accumulate("sched.handoffs", 1.0);
    }
}

/// Fans one run's events out to two independent [`ExecutionHooks`] (e.g.
/// a race checker *and* telemetry [`TraceHooks`]). `first` receives every
/// event before `second`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HookPair<A, B> {
    /// Receives each event first.
    pub first: A,
    /// Receives each event second.
    pub second: B,
}

impl<A, B> HookPair<A, B> {
    /// Combines two hooks.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }
}

impl<A: ExecutionHooks, B: ExecutionHooks> ExecutionHooks for HookPair<A, B> {
    fn on_task_start(&self, task: u32, worker: usize) {
        self.first.on_task_start(task, worker);
        self.second.on_task_start(task, worker);
    }

    fn on_task_finish(&self, task: u32, worker: usize) {
        self.first.on_task_finish(task, worker);
        self.second.on_task_finish(task, worker);
    }

    fn on_handoff(&self, pred: u32, succ: u32) {
        self.first.on_handoff(pred, succ);
        self.second.on_handoff(pred, succ);
    }
}

/// Statistics from one executor run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
    /// Number of worker threads used.
    pub workers: usize,
}

impl fmt::Display for ExecutorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks on {} workers in {:.3} ms",
            self.tasks,
            self.workers,
            self.wall_seconds * 1e3
        )
    }
}

/// A dependency-graph executor with a fixed worker pool.
///
/// Tasks become *ready* when their last predecessor completes; ready tasks
/// are distributed to workers through an MPMC channel, so independent tasks
/// run with maximum parallelism while every conflict edge of the
/// [`Schedule`] is honoured.
///
/// # Example
///
/// ```
/// use fastgr_grid::{Point2, Rect};
/// use fastgr_taskgraph::{ConflictGraph, Executor, Schedule};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let boxes = vec![Rect::new(Point2::new(0, 0), Point2::new(1, 1)); 1];
/// let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
/// let schedule = Schedule::build(&[0], &conflicts);
/// let counter = AtomicUsize::new(0);
/// let stats = Executor::new(4).run(&schedule, |_task| {
///     counter.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(counter.into_inner(), 1);
/// assert_eq!(stats.tasks, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Creates an executor with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(workers)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task of `schedule`, calling `task_fn(task_id)` with all
    /// dependencies already completed. Blocks until the whole graph has
    /// executed.
    ///
    /// `task_fn` runs concurrently from multiple threads; share state via
    /// interior mutability (the schedule guarantees conflicting tasks never
    /// overlap, so per-net state needs no locking — only globally shared
    /// accumulators do).
    ///
    /// # Panics
    ///
    /// If `task_fn` panics for some task, the run shuts down (remaining
    /// tasks are abandoned, in-flight tasks finish), all workers are
    /// joined, and the first panic is re-raised on the calling thread —
    /// a panicking task can never deadlock the pool.
    pub fn run<F>(&self, schedule: &Schedule, task_fn: F) -> ExecutorStats
    where
        F: Fn(u32) + Sync,
    {
        self.run_with_hooks(schedule, task_fn, &NoHooks)
    }

    /// [`Executor::run`] with observation [`ExecutionHooks`] — see the
    /// trait docs for the event contract. Used by the happens-before race
    /// checker in `fastgr-analysis`.
    ///
    /// # Panics
    ///
    /// Propagates panics from `task_fn` (and from the hooks) exactly like
    /// [`Executor::run`].
    pub fn run_with_hooks<F, H>(&self, schedule: &Schedule, task_fn: F, hooks: &H) -> ExecutorStats
    where
        F: Fn(u32) + Sync,
        H: ExecutionHooks,
    {
        let n = schedule.task_count();
        let start = Stopwatch::start();
        if n == 0 {
            return ExecutorStats {
                tasks: 0,
                wall_seconds: 0.0,
                workers: self.workers,
            };
        }

        const SHUTDOWN: u32 = u32::MAX;
        let pending: Vec<AtomicU32> = (0..n as u32)
            .map(|t| AtomicU32::new(schedule.in_degree(t)))
            .collect();
        let completed = AtomicUsize::new(0);
        // First panic payload of any worker; later panics are dropped.
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let (tx, rx) = channel::unbounded::<u32>();
        for t in 0..n as u32 {
            if schedule.in_degree(t) == 0 {
                tx.send(t).expect("queue open");
            }
        }

        std::thread::scope(|scope| {
            for worker in 0..self.workers {
                let rx = rx.clone();
                let tx = tx.clone();
                let pending = &pending;
                let completed = &completed;
                let panic_slot = &panic_slot;
                let task_fn = &task_fn;
                scope.spawn(move || {
                    while let Ok(t) = rx.recv() {
                        if t == SHUTDOWN {
                            break;
                        }
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            hooks.on_task_start(t, worker);
                            task_fn(t);
                            hooks.on_task_finish(t, worker);
                        }));
                        if let Err(payload) = outcome {
                            // Keep the first payload, wake every worker
                            // (including this one's siblings blocked in
                            // recv) and stop making progress: successors of
                            // the failed task must not run.
                            let mut slot = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            drop(slot);
                            for _ in 0..self.workers {
                                tx.send(SHUTDOWN).expect("queue open");
                            }
                            break;
                        }
                        for &s in schedule.successors(t) {
                            hooks.on_handoff(t, s);
                            if pending[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                tx.send(s).expect("queue open");
                            }
                        }
                        if completed.fetch_add(1, Ordering::AcqRel) + 1 == n {
                            for _ in 0..self.workers {
                                tx.send(SHUTDOWN).expect("queue open");
                            }
                        }
                    }
                });
            }
        });

        if let Some(payload) = panic_slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            std::panic::resume_unwind(payload);
        }

        ExecutorStats {
            tasks: n,
            wall_seconds: start.elapsed_seconds(),
            workers: self.workers,
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::ConflictGraph;
    use fastgr_grid::{Point2, Rect};
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;

    fn rect(x0: u16, y0: u16, x1: u16, y1: u16) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    fn schedule_of(boxes: &[Rect]) -> Schedule {
        let conflicts = ConflictGraph::from_bounding_boxes(boxes);
        let order: Vec<u32> = (0..boxes.len() as u32).collect();
        Schedule::build(&order, &conflicts)
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let boxes: Vec<Rect> = (0..50).map(|i| rect(i * 2, 0, i * 2 + 3, 3)).collect(); // overlapping chain
        let schedule = schedule_of(&boxes);
        let counts: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let stats = Executor::new(4).run(&schedule, |t| {
            counts[t as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.tasks, 50);
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn dependencies_are_honoured() {
        // Chain 0 <- 1 <- 2 (all overlap): record completion order.
        let boxes = vec![rect(0, 0, 9, 9), rect(1, 1, 8, 8), rect(2, 2, 7, 7)];
        let schedule = schedule_of(&boxes);
        let log = Mutex::new(Vec::new());
        Executor::new(4).run(&schedule, |t| {
            log.lock().push(t);
        });
        assert_eq!(log.into_inner(), vec![0, 1, 2]);
    }

    #[test]
    fn parallel_run_matches_sequential_result() {
        // Each task adds its id to a per-task slot; conflicting tasks share
        // a slot and must serialise — result is order-independent because
        // the schedule fixes the order.
        let boxes: Vec<Rect> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    rect(0, 0, 5, 5)
                } else {
                    rect(20, 20, 25, 25)
                }
            })
            .collect();
        let schedule = schedule_of(&boxes);
        let run = |workers: usize| {
            let acc = Mutex::new(vec![0u64; 2]);
            Executor::new(workers).run(&schedule, |t| {
                let slot = (t % 2) as usize;
                let mut g = acc.lock();
                g[slot] = g[slot] * 31 + t as u64;
            });
            acc.into_inner()
        };
        // Within one conflict class execution order is fixed by the
        // schedule, so the fold value must be identical.
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn empty_schedule_returns_immediately() {
        let schedule = schedule_of(&[]);
        let stats = Executor::new(4).run(&schedule, |_| panic!("no tasks to run"));
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn single_worker_is_a_valid_degenerate_pool() {
        let boxes = vec![rect(0, 0, 1, 1), rect(5, 5, 6, 6)];
        let schedule = schedule_of(&boxes);
        let count = AtomicUsize::new(0);
        Executor::new(0).run(&schedule, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 2);
    }

    #[test]
    fn executor_reports_workers() {
        assert_eq!(Executor::new(3).workers(), 3);
        assert!(Executor::with_available_parallelism().workers() >= 1);
    }

    /// Regression (PR 2): a panicking task used to leave the other workers
    /// blocked on the queue forever — `thread::scope` then deadlocked the
    /// run instead of surfacing the panic.
    #[test]
    fn panicking_task_propagates_without_deadlock() {
        let boxes: Vec<Rect> = (0..20).map(|i| rect(i * 2, 0, i * 2 + 3, 3)).collect();
        let schedule = schedule_of(&boxes);
        for workers in [1, 4] {
            let result = std::panic::catch_unwind(|| {
                Executor::new(workers).run(&schedule, |t| {
                    if t == 7 {
                        panic!("task 7 exploded");
                    }
                });
            });
            let payload = result.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "task 7 exploded", "workers={workers}");
        }
    }

    #[test]
    fn successors_of_a_panicked_task_never_run() {
        // Chain 0 -> 1 -> 2: task 0 panics, so 1 and 2 must not execute.
        let boxes = vec![rect(0, 0, 9, 9), rect(1, 1, 8, 8), rect(2, 2, 7, 7)];
        let schedule = schedule_of(&boxes);
        let ran = Mutex::new(Vec::new());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Executor::new(4).run(&schedule, |t| {
                if t == 0 {
                    panic!("root failed");
                }
                ran.lock().push(t);
            });
        }));
        assert!(result.is_err());
        assert!(ran.into_inner().is_empty(), "successors must be abandoned");
    }

    #[test]
    fn trace_hooks_report_tasks_and_handoffs() {
        // All three boxes mutually overlap: edges 0→1, 0→2, 1→2.
        let boxes = vec![rect(0, 0, 9, 9), rect(1, 1, 8, 8), rect(2, 2, 7, 7)];
        let schedule = schedule_of(&boxes);
        let recorder = Recorder::enabled();
        Executor::new(2).run_with_hooks(&schedule, |_| {}, &TraceHooks::new(recorder.clone()));
        let trace = recorder.take_trace();
        let begins: Vec<&str> = trace
            .events()
            .iter()
            .filter(|e| e.begin)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(begins.len(), 3);
        assert!(begins.contains(&"task0"));
        assert_eq!(trace.counter("sched.handoffs"), Some(3.0));
        // Disabled recorder: the same hooks record nothing.
        let off = Recorder::disabled();
        Executor::new(2).run_with_hooks(&schedule, |_| {}, &TraceHooks::new(off.clone()));
        assert!(off.take_trace().events().is_empty());
    }

    #[test]
    fn hook_pair_fans_out_to_both() {
        struct Count(AtomicUsize);
        impl ExecutionHooks for Count {
            fn on_task_start(&self, _t: u32, _w: usize) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let boxes = vec![rect(0, 0, 1, 1), rect(5, 5, 6, 6)];
        let schedule = schedule_of(&boxes);
        let pair = HookPair::new(Count(AtomicUsize::new(0)), Count(AtomicUsize::new(0)));
        Executor::new(2).run_with_hooks(&schedule, |_| {}, &pair);
        assert_eq!(pair.first.0.load(Ordering::Relaxed), 2);
        assert_eq!(pair.second.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn hooks_observe_starts_finishes_and_handoffs() {
        struct Recorder {
            starts: AtomicUsize,
            finishes: AtomicUsize,
            handoffs: Mutex<Vec<(u32, u32)>>,
        }
        impl ExecutionHooks for Recorder {
            fn on_task_start(&self, _task: u32, _worker: usize) {
                self.starts.fetch_add(1, Ordering::Relaxed);
            }
            fn on_task_finish(&self, _task: u32, _worker: usize) {
                self.finishes.fetch_add(1, Ordering::Relaxed);
            }
            fn on_handoff(&self, pred: u32, succ: u32) {
                self.handoffs.lock().push((pred, succ));
            }
        }
        let boxes = vec![rect(0, 0, 4, 4), rect(3, 3, 8, 8), rect(7, 7, 9, 9)];
        let schedule = schedule_of(&boxes);
        let recorder = Recorder {
            starts: AtomicUsize::new(0),
            finishes: AtomicUsize::new(0),
            handoffs: Mutex::new(Vec::new()),
        };
        Executor::new(2).run_with_hooks(&schedule, |_| {}, &recorder);
        assert_eq!(recorder.starts.load(Ordering::Relaxed), 3);
        assert_eq!(recorder.finishes.load(Ordering::Relaxed), 3);
        let mut handoffs = recorder.handoffs.into_inner();
        handoffs.sort_unstable();
        let mut expected: Vec<(u32, u32)> = schedule.edges().collect();
        expected.sort_unstable();
        assert_eq!(handoffs, expected, "one handoff per dependency edge");
    }
}
