//! Internet net-ordering schemes (paper Section II-E / Table IV).

use std::fmt;

use fastgr_design::Net;

/// The six net-sorting schemes evaluated in Table V of the paper.
///
/// Ties break on the net id, so every scheme yields a deterministic total
/// order. The paper concludes that **ascending bounding-box half-perimeter**
/// gives the best runtime and quality overall, which is the default used by
/// every FastGR preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum SortingScheme {
    /// Ascending number of pins.
    PinsAscending,
    /// Descending number of pins.
    PinsDescending,
    /// Ascending bounding-box half-perimeter (HPWL) — the paper's choice.
    #[default]
    HpwlAscending,
    /// Descending bounding-box half-perimeter.
    HpwlDescending,
    /// Ascending bounding-box area.
    AreaAscending,
    /// Descending bounding-box area.
    AreaDescending,
}

impl SortingScheme {
    /// All six schemes in Table IV order.
    pub const ALL: [SortingScheme; 6] = [
        SortingScheme::PinsAscending,
        SortingScheme::PinsDescending,
        SortingScheme::HpwlAscending,
        SortingScheme::HpwlDescending,
        SortingScheme::AreaAscending,
        SortingScheme::AreaDescending,
    ];

    /// The sort key of `net` under this scheme (ascending order; descending
    /// schemes negate internally).
    fn key(&self, net: &Net) -> i64 {
        let v = match self {
            SortingScheme::PinsAscending | SortingScheme::PinsDescending => net.pin_count() as i64,
            SortingScheme::HpwlAscending | SortingScheme::HpwlDescending => net.hpwl() as i64,
            SortingScheme::AreaAscending | SortingScheme::AreaDescending => {
                net.bounding_box().area() as i64
            }
        };
        match self {
            SortingScheme::PinsDescending
            | SortingScheme::HpwlDescending
            | SortingScheme::AreaDescending => -v,
            _ => v,
        }
    }

    /// Returns the ids (dense indices) of `nets` sorted under this scheme.
    ///
    /// # Example
    ///
    /// ```
    /// use fastgr_core::SortingScheme;
    /// use fastgr_design::{Net, NetId, Pin};
    /// use fastgr_grid::Point2;
    ///
    /// let nets = vec![
    ///     Net::new(NetId(0), "big", vec![
    ///         Pin::new(Point2::new(0, 0), 0), Pin::new(Point2::new(9, 9), 0)]),
    ///     Net::new(NetId(1), "small", vec![
    ///         Pin::new(Point2::new(0, 0), 0), Pin::new(Point2::new(1, 1), 0)]),
    /// ];
    /// assert_eq!(SortingScheme::HpwlAscending.sorted_ids(&nets), vec![1, 0]);
    /// assert_eq!(SortingScheme::HpwlDescending.sorted_ids(&nets), vec![0, 1]);
    /// ```
    pub fn sorted_ids(&self, nets: &[Net]) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..nets.len() as u32).collect();
        ids.sort_by_key(|&i| (self.key(&nets[i as usize]), i));
        ids
    }

    /// Sorts an arbitrary subset of net ids (used by the RRR stage, which
    /// only re-sorts the violating nets).
    pub fn sort_subset(&self, ids: &mut [u32], nets: &[Net]) {
        ids.sort_by_key(|&i| (self.key(&nets[i as usize]), i));
    }
}

impl fmt::Display for SortingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SortingScheme::PinsAscending => "pins-asc",
            SortingScheme::PinsDescending => "pins-desc",
            SortingScheme::HpwlAscending => "hpwl-asc",
            SortingScheme::HpwlDescending => "hpwl-desc",
            SortingScheme::AreaAscending => "area-asc",
            SortingScheme::AreaDescending => "area-desc",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::{NetId, Pin};
    use fastgr_grid::Point2;

    fn net(id: u32, pins: &[(u16, u16)]) -> Net {
        Net::new(
            NetId(id),
            format!("n{id}"),
            pins.iter()
                .map(|&(x, y)| Pin::new(Point2::new(x, y), 0))
                .collect(),
        )
    }

    fn sample() -> Vec<Net> {
        vec![
            net(0, &[(0, 0), (3, 3), (1, 1)]), // 3 pins, hpwl 6, area 16
            net(1, &[(0, 0), (9, 0)]),         // 2 pins, hpwl 9, area 10
            net(2, &[(0, 0), (2, 2), (1, 0), (0, 2)]), // 4 pins, hpwl 4, area 9
        ]
    }

    #[test]
    fn pins_orders_by_fanout() {
        let nets = sample();
        assert_eq!(
            SortingScheme::PinsAscending.sorted_ids(&nets),
            vec![1, 0, 2]
        );
        assert_eq!(
            SortingScheme::PinsDescending.sorted_ids(&nets),
            vec![2, 0, 1]
        );
    }

    #[test]
    fn hpwl_orders_by_half_perimeter() {
        let nets = sample();
        assert_eq!(
            SortingScheme::HpwlAscending.sorted_ids(&nets),
            vec![2, 0, 1]
        );
        assert_eq!(
            SortingScheme::HpwlDescending.sorted_ids(&nets),
            vec![1, 0, 2]
        );
    }

    #[test]
    fn area_orders_by_bbox_area() {
        let nets = sample();
        assert_eq!(
            SortingScheme::AreaAscending.sorted_ids(&nets),
            vec![2, 1, 0]
        );
        assert_eq!(
            SortingScheme::AreaDescending.sorted_ids(&nets),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn ties_break_on_id_for_determinism() {
        let nets = vec![net(0, &[(0, 0), (1, 1)]), net(1, &[(5, 5), (6, 6)])];
        for scheme in SortingScheme::ALL {
            let ids = scheme.sorted_ids(&nets);
            assert_eq!(ids, vec![0, 1], "scheme {scheme}");
        }
    }

    #[test]
    fn sort_subset_matches_full_sort_restriction() {
        let nets = sample();
        let mut subset = vec![1u32, 2];
        SortingScheme::HpwlAscending.sort_subset(&mut subset, &nets);
        assert_eq!(subset, vec![2, 1]);
    }

    #[test]
    fn default_is_the_papers_choice() {
        assert_eq!(SortingScheme::default(), SortingScheme::HpwlAscending);
    }
}
