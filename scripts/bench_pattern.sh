#!/usr/bin/env sh
# Serial-vs-parallel wall-clock snapshot of the pattern stage.
#
# Builds the release bench binary and routes the synthetic suite twice per
# benchmark (1 host worker vs all cores / FASTGR_WORKERS), verifying that
# geometry and modelled device time are identical across worker counts,
# then writes BENCH_pattern.json at the repo root.
#
# Usage: scripts/bench_pattern.sh [--full] [--workers N] [--out PATH]
#                                 [--trace PATH]
#
# With --trace PATH the parallel runs are recorded through the telemetry
# layer and written as a Chrome trace_event profile (open in Perfetto).
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline -p fastgr-bench
exec target/release/bench_pattern "$@"
