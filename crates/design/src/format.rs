//! Plain-text design interchange format.
//!
//! A minimal line-oriented format so designs can be dumped, diffed and
//! reloaded without external parsers:
//!
//! ```text
//! fastgr 1
//! design <name> <width> <height> <layers> <capacity>
//! blockage <layer> <x0> <y0> <x1> <y1> <factor>
//! net <name> <pin-count>
//! pin <x> <y> <layer>
//! ...
//! end
//! ```

use std::fmt::Write as _;

use fastgr_grid::{Point2, Rect};

use crate::error::ParseDesignError;
use crate::net::{Blockage, Design, Net, NetId, Pin};

impl Design {
    /// Serialises the design to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fastgr 1");
        let _ = writeln!(
            out,
            "design {} {} {} {} {}",
            self.name(),
            self.width(),
            self.height(),
            self.layers(),
            self.capacity()
        );
        if !self.layer_capacities().is_empty() {
            let caps: Vec<String> = self
                .layer_capacities()
                .iter()
                .map(|c| c.to_string())
                .collect();
            let _ = writeln!(out, "layercap {}", caps.join(" "));
        }
        for b in self.blockages() {
            let _ = writeln!(
                out,
                "blockage {} {} {} {} {} {}",
                b.layer, b.region.lo.x, b.region.lo.y, b.region.hi.x, b.region.hi.y, b.factor
            );
        }
        for net in self.nets() {
            let _ = writeln!(out, "net {} {}", net.name(), net.pin_count());
            for pin in net.pins() {
                let _ = writeln!(
                    out,
                    "pin {} {} {}",
                    pin.position.x, pin.position.y, pin.layer
                );
            }
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parses a design from the text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDesignError`] describing the first offending line on
    /// malformed input, including pins outside the declared grid.
    pub fn from_text(text: &str) -> Result<Design, ParseDesignError> {
        let mut lines = text.lines().enumerate();

        let (_, header) = lines
            .next()
            .ok_or(ParseDesignError::UnexpectedEof { expected: "header" })?;
        if header.trim() != "fastgr 1" {
            return Err(ParseDesignError::BadHeader {
                line: header.to_owned(),
            });
        }

        let (no, design_line) = lines.next().ok_or(ParseDesignError::UnexpectedEof {
            expected: "design line",
        })?;
        let mut it = design_line.split_whitespace();
        let bad =
            |line_no: usize, expected: &'static str, content: &str| ParseDesignError::BadLine {
                line_no: line_no + 1,
                expected,
                content: content.to_owned(),
            };
        if it.next() != Some("design") {
            return Err(bad(no, "design line", design_line));
        }
        let name = it
            .next()
            .ok_or_else(|| bad(no, "design name", design_line))?
            .to_owned();
        let mut num = |expected: &'static str| -> Result<f64, ParseDesignError> {
            it.next()
                .and_then(|t| t.parse::<f64>().ok())
                .ok_or_else(|| bad(no, expected, design_line))
        };
        let width = num("width")? as u16;
        let height = num("height")? as u16;
        let layers = num("layers")? as u8;
        let capacity = num("capacity")?;

        let mut blockages = Vec::new();
        let mut nets: Vec<Net> = Vec::new();
        let mut layer_capacities: Vec<f64> = Vec::new();
        let mut saw_end = false;

        while let Some((no, line)) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            match it.next() {
                Some("layercap") => {
                    let caps: Vec<f64> = it.map(|t| t.parse().unwrap_or(f64::NAN)).collect();
                    if caps.len() != layers as usize || caps.iter().any(|c| c.is_nan()) {
                        return Err(bad(no, "layercap <c0> .. <cL-1>", line));
                    }
                    layer_capacities = caps;
                }
                Some("blockage") => {
                    let vals: Vec<f64> = it.map(|t| t.parse().unwrap_or(f64::NAN)).collect();
                    if vals.len() != 6 || vals.iter().any(|v| v.is_nan()) {
                        return Err(bad(
                            no,
                            "blockage <layer> <x0> <y0> <x1> <y1> <factor>",
                            line,
                        ));
                    }
                    blockages.push(Blockage {
                        layer: vals[0] as u8,
                        region: Rect::new(
                            Point2::new(vals[1] as u16, vals[2] as u16),
                            Point2::new(vals[3] as u16, vals[4] as u16),
                        ),
                        factor: vals[5],
                    });
                }
                Some("net") => {
                    let net_name = it
                        .next()
                        .ok_or_else(|| bad(no, "net <name> <pin-count>", line))?
                        .to_owned();
                    let count: usize = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad(no, "net <name> <pin-count>", line))?;
                    if count == 0 {
                        return Err(ParseDesignError::Invalid {
                            line_no: no + 1,
                            reason: format!("net {net_name} declares zero pins"),
                        });
                    }
                    let mut pins = Vec::with_capacity(count);
                    for _ in 0..count {
                        let (pno, pline) = lines.next().ok_or(ParseDesignError::UnexpectedEof {
                            expected: "pin line",
                        })?;
                        let mut pit = pline.split_whitespace();
                        if pit.next() != Some("pin") {
                            return Err(bad(pno, "pin <x> <y> <layer>", pline));
                        }
                        let vals: Vec<u32> = pit.map(|t| t.parse().unwrap_or(u32::MAX)).collect();
                        if vals.len() != 3 || vals.contains(&u32::MAX) {
                            return Err(bad(pno, "pin <x> <y> <layer>", pline));
                        }
                        let (x, y, l) = (vals[0], vals[1], vals[2]);
                        if x >= width as u32 || y >= height as u32 || l >= layers as u32 {
                            return Err(ParseDesignError::Invalid {
                                line_no: pno + 1,
                                reason: format!(
                                    "pin ({x}, {y}, M{l}) outside the {width}x{height}x{layers} grid"
                                ),
                            });
                        }
                        pins.push(Pin::new(Point2::new(x as u16, y as u16), l as u8));
                    }
                    nets.push(Net::new(NetId(nets.len() as u32), net_name, pins));
                }
                Some("end") => {
                    saw_end = true;
                    break;
                }
                _ => return Err(bad(no, "layercap, blockage, net, or end", line)),
            }
        }

        if !saw_end {
            return Err(ParseDesignError::UnexpectedEof { expected: "`end`" });
        }
        let design = Design::new(name, width, height, layers, capacity, blockages, nets);
        Ok(if layer_capacities.is_empty() {
            design
        } else {
            design.with_layer_capacities(layer_capacities)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generator;

    #[test]
    fn round_trip_preserves_design() {
        let d = Generator::tiny(5).generate();
        let text = d.to_text();
        let back = Design::from_text(&text).expect("valid text");
        assert_eq!(d, back);
    }

    #[test]
    fn layer_capacities_round_trip() {
        let d = Generator::tiny(5).generate();
        let layers = d.layers() as usize;
        let d = d.with_layer_capacities((0..layers).map(|l| l as f64).collect());
        let back = Design::from_text(&d.to_text()).expect("valid text");
        assert_eq!(d, back);
    }

    #[test]
    fn rejects_bad_layercap_count() {
        let text = "fastgr 1\ndesign d 8 8 4 2\nlayercap 1 2\nend\n";
        assert!(matches!(
            Design::from_text(text),
            Err(ParseDesignError::BadLine { .. })
        ));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            Design::from_text("nope\n"),
            Err(ParseDesignError::BadHeader { .. })
        ));
    }

    #[test]
    fn rejects_truncated_pins() {
        let text = "fastgr 1\ndesign d 8 8 4 2\nnet a 2\npin 0 0 0\n";
        assert!(matches!(
            Design::from_text(text),
            Err(ParseDesignError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn rejects_missing_end() {
        let text = "fastgr 1\ndesign d 8 8 4 2\nnet a 1\npin 0 0 0\n";
        assert!(matches!(
            Design::from_text(text),
            Err(ParseDesignError::UnexpectedEof { expected: "`end`" })
        ));
    }

    #[test]
    fn rejects_out_of_grid_pin() {
        let text = "fastgr 1\ndesign d 8 8 4 2\nnet a 1\npin 9 0 0\nend\n";
        match Design::from_text(text) {
            Err(ParseDesignError::Invalid { line_no, reason }) => {
                assert_eq!(line_no, 4);
                assert!(reason.contains("outside"));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_pin_net() {
        let text = "fastgr 1\ndesign d 8 8 4 2\nnet a 0\nend\n";
        assert!(matches!(
            Design::from_text(text),
            Err(ParseDesignError::Invalid { .. })
        ));
    }

    #[test]
    fn rejects_garbage_record() {
        let text = "fastgr 1\ndesign d 8 8 4 2\nwat 1 2 3\nend\n";
        assert!(matches!(
            Design::from_text(text),
            Err(ParseDesignError::BadLine { .. })
        ));
    }

    #[test]
    fn empty_lines_are_tolerated() {
        let text = "fastgr 1\ndesign d 8 8 4 2\n\nnet a 1\npin 0 0 0\n\nend\n";
        assert!(Design::from_text(text).is_ok());
    }
}
