//! Solution-quality metrics and the paper's score function (Eq. 15).

use std::fmt;

/// Weights of the global-routing score `s = αW + βV + γS`.
///
/// The paper sets `α = 0.5`, `β = 4`, `γ = 500` "considering the order of
/// magnitude of different metrics" (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreWeights {
    /// Wirelength weight `α`.
    pub alpha: f64,
    /// Via-count weight `β`.
    pub beta: f64,
    /// Shorts weight `γ`.
    pub gamma: f64,
}

impl Default for ScoreWeights {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 4.0,
            gamma: 500.0,
        }
    }
}

/// Quality of one global-routing solution.
///
/// # Example
///
/// ```
/// use fastgr_core::{QualityMetrics, ScoreWeights};
///
/// let m = QualityMetrics { wirelength: 1000, vias: 200, shorts: 3.0 };
/// // s = 0.5*1000 + 4*200 + 500*3 = 2800
/// assert_eq!(m.score(), 2800.0);
/// assert_eq!(m.score_with(ScoreWeights { gamma: 0.0, ..Default::default() }), 1300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualityMetrics {
    /// Total wirelength `W` in G-cell edge units.
    pub wirelength: u64,
    /// Total number of vias `V`.
    pub vias: u64,
    /// Number of shorts `S` (overflowing track units).
    pub shorts: f64,
}

impl QualityMetrics {
    /// The score under the paper's default weights.
    pub fn score(&self) -> f64 {
        self.score_with(ScoreWeights::default())
    }

    /// The score under explicit weights.
    pub fn score_with(&self, w: ScoreWeights) -> f64 {
        w.alpha * self.wirelength as f64 + w.beta * self.vias as f64 + w.gamma * self.shorts
    }
}

impl fmt::Display for QualityMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wl {} / vias {} / shorts {:.1} / score {:.1}",
            self.wirelength,
            self.vias,
            self.shorts,
            self.score()
        )
    }
}

/// Per-layer usage breakdown of a routing solution.
///
/// # Example
///
/// ```
/// use fastgr_core::LayerUsage;
/// use fastgr_grid::{Point2, Route, Segment, Via};
///
/// let mut r = Route::new();
/// r.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(4, 0)));
/// r.push_via(Via::new(Point2::new(4, 0), 1, 3));
/// let usage = LayerUsage::from_routes(5, std::slice::from_ref(&r));
/// assert_eq!(usage.wirelength(1), 4);
/// assert_eq!(usage.vias_from(1), 1); // hop M1 -> M2
/// assert_eq!(usage.vias_from(2), 1); // hop M2 -> M3
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayerUsage {
    wirelength: Vec<u64>,
    vias: Vec<u64>,
}

impl LayerUsage {
    /// Computes the per-layer breakdown of `routes` on a grid with
    /// `layers` metal layers.
    ///
    /// # Panics
    ///
    /// Panics if a route references a layer `>= layers`.
    pub fn from_routes(layers: u8, routes: &[fastgr_grid::Route]) -> Self {
        let mut wirelength = vec![0u64; layers as usize];
        let mut vias = vec![0u64; layers as usize];
        for route in routes {
            for s in route.segments() {
                wirelength[s.layer as usize] += s.length() as u64;
            }
            for v in route.vias() {
                for hop in v.lo..v.hi {
                    vias[hop as usize] += 1;
                }
            }
        }
        Self { wirelength, vias }
    }

    /// Number of layers covered.
    pub fn layer_count(&self) -> u8 {
        self.wirelength.len() as u8
    }

    /// Wirelength routed on layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn wirelength(&self, l: u8) -> u64 {
        self.wirelength[l as usize]
    }

    /// Vias crossing the boundary from layer `l` to `l + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn vias_from(&self, l: u8) -> u64 {
        self.vias[l as usize]
    }

    /// Total wirelength across layers.
    pub fn total_wirelength(&self) -> u64 {
        self.wirelength.iter().sum()
    }

    /// Total vias across boundaries.
    pub fn total_vias(&self) -> u64 {
        self.vias.iter().sum()
    }
}

impl fmt::Display for LayerUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (l, wl) in self.wirelength.iter().enumerate() {
            if l > 0 {
                write!(f, ", ")?;
            }
            write!(f, "M{l}: {wl}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_match_paper() {
        let w = ScoreWeights::default();
        assert_eq!((w.alpha, w.beta, w.gamma), (0.5, 4.0, 500.0));
    }

    #[test]
    fn score_is_linear_in_each_metric() {
        let base = QualityMetrics {
            wirelength: 100,
            vias: 10,
            shorts: 1.0,
        };
        let more_wl = QualityMetrics {
            wirelength: 102,
            ..base
        };
        let more_vias = QualityMetrics { vias: 11, ..base };
        let more_shorts = QualityMetrics {
            shorts: 2.0,
            ..base
        };
        assert_eq!(more_wl.score() - base.score(), 1.0);
        assert_eq!(more_vias.score() - base.score(), 4.0);
        assert_eq!(more_shorts.score() - base.score(), 500.0);
    }

    #[test]
    fn layer_usage_totals_match_route_metrics() {
        use fastgr_grid::{Point2, Route, Segment, Via};
        let mut a = Route::new();
        a.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(3, 0)));
        a.push_via(Via::new(Point2::new(3, 0), 0, 2));
        let mut b = Route::new();
        b.push_segment(Segment::new(2, Point2::new(3, 0), Point2::new(3, 5)));
        let routes = vec![a.clone(), b.clone()];
        let usage = LayerUsage::from_routes(4, &routes);
        assert_eq!(usage.total_wirelength(), a.wirelength() + b.wirelength());
        assert_eq!(usage.total_vias(), a.via_count() + b.via_count());
        assert_eq!(usage.wirelength(1), 3);
        assert_eq!(usage.wirelength(2), 5);
        assert_eq!(usage.vias_from(0), 1);
        assert_eq!(usage.vias_from(1), 1);
        assert_eq!(usage.vias_from(3), 0);
        assert!(usage.to_string().contains("M1: 3"));
    }

    #[test]
    fn display_includes_score() {
        let m = QualityMetrics {
            wirelength: 10,
            vias: 1,
            shorts: 0.0,
        };
        assert!(m.to_string().contains("score 9.0"));
    }
}
