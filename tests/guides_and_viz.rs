//! Integration tests for guide-file output and SVG rendering against real
//! router outcomes.

use fastgr::core::{RouteGuides, Router, RouterConfig};
use fastgr::design::Generator;
use fastgr::viz::SvgRenderer;

fn routed() -> (fastgr::design::Design, fastgr::core::RoutingOutcome) {
    let design = Generator::tiny(31).generate();
    let outcome = Router::new(RouterConfig::fastgr_h())
        .run(&design)
        .expect("routable");
    (design, outcome)
}

#[test]
fn guide_file_round_trips_through_text() {
    let (design, outcome) = routed();
    let text = outcome.guides.to_guide_text(&design);
    // Every net name appears exactly once as a block header.
    for net in design.nets() {
        assert!(
            text.contains(net.name()),
            "missing block for {}",
            net.name()
        );
    }
    let parsed = RouteGuides::from_guide_text(&design, &text).expect("valid guide file");
    assert_eq!(parsed, outcome.guides);
    assert!(parsed.covers_pins(&design));
}

#[test]
fn guide_boxes_cover_every_route_segment() {
    let (design, outcome) = routed();
    for (net, route) in design.nets().iter().zip(&outcome.routes) {
        for seg in route.segments() {
            for (from, _) in seg.unit_edges() {
                assert!(
                    outcome
                        .guides
                        .boxes_at(net.id().0, seg.layer, from)
                        .next()
                        .is_some(),
                    "net {}: segment cell {from} on M{} uncovered",
                    net.name(),
                    seg.layer
                );
            }
        }
    }
}

#[test]
fn svg_renders_routed_outcome() {
    let (design, outcome) = routed();
    let svg = SvgRenderer::new().render_routes(&design, &outcome.routes);
    assert!(svg.starts_with("<svg"));
    assert!(svg.trim_end().ends_with("</svg>"));
    // Every routed wire segment becomes an SVG line.
    let segments: usize = outcome.routes.iter().map(|r| r.segments().len()).sum();
    assert_eq!(svg.matches("<line").count(), segments);
    // Angle brackets balance (cheap well-formedness proxy).
    assert_eq!(svg.matches('<').count(), svg.matches('>').count());
}

#[test]
fn congestion_estimate_matches_router_pattern_stage() {
    let design = Generator::tiny(31).generate();
    let estimate = fastgr::core::estimate_congestion(&design).expect("routable");
    // The estimate is a pattern-only pass: its demand must be close to the
    // committed demand of a pattern-only router run with the same config.
    let config = RouterConfig::cugr().with_rrr_iterations(0);
    let outcome = Router::new(config).run(&design).expect("routable");
    assert_eq!(
        estimate.report.total_wire_demand,
        outcome.report.total_wire_demand
    );
    assert_eq!(estimate.report.overflow, outcome.report.overflow);
}
