//! Serial-vs-parallel wall-clock of the pattern stage on the scaled
//! synthetic suite (the worker-pool speed-up snapshot recorded in
//! `BENCH_pattern.json`).
//!
//! ```text
//! bench_pattern [--full] [--out PATH] [--workers N] [--trace PATH]
//!
//! --full:      run the whole 12-benchmark suite (default: 4 smallest)
//! --out PATH:  where to write the JSON snapshot (default: BENCH_pattern.json)
//! --workers N: parallel worker count (default: FASTGR_WORKERS / all cores)
//! --trace PATH: record the parallel runs and write a Chrome trace_event
//!               profile (load in Perfetto / chrome://tracing)
//! ```
//!
//! Each benchmark routes three times with the GPU-flow engine: once with
//! one host worker (serial, prober on), once with `N` workers (prober
//! on), and once with `N` workers probing off (the direct per-edge cost
//! walk — what the prefix-sum cost cache saves). The routed geometry must
//! be identical across all three — the binary exits non-zero if not —
//! and the prober's cache-build wall time is measured separately so the
//! snapshot shows build cost next to probe savings.

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;

use fastgr_core::{PatternEngine, PatternMode, PatternOutcome, PatternStage, SortingScheme};
use fastgr_design::{suite, BenchmarkSpec};
use fastgr_gpu::{DeviceConfig, HostPool};
use fastgr_grid::CostProber;
use fastgr_telemetry::{Recorder, Stopwatch};

struct Row {
    name: &'static str,
    nets: u32,
    serial_seconds: f64,
    parallel_seconds: f64,
    direct_seconds: f64,
    cache_build_seconds: f64,
    modeled_seconds: f64,
    modeled_direct_seconds: f64,
}

fn run_once(
    spec: &BenchmarkSpec,
    workers: usize,
    cost_probing: bool,
    recorder: &Recorder,
) -> PatternOutcome {
    let design = spec.generate();
    let mut graph = design
        .build_graph(fastgr_grid::CostParams::default())
        .expect("suite designs build");
    let stage = PatternStage {
        mode: PatternMode::LShape,
        engine: PatternEngine::GpuFlow(
            DeviceConfig::rtx3090_like().with_host_workers(workers),
        ),
        sorting: SortingScheme::HpwlAscending,
        steiner_passes: 4,
        congestion_aware_planning: false,
        cost_probing,
        validate: false,
    };
    stage
        .run_traced(&design, &mut graph, recorder)
        .expect("suite designs route")
}

/// Wall time of one from-scratch prober build over the spec's empty grid
/// on `workers` rebuild workers — the upfront cost the probe savings must
/// amortise.
fn cache_build_seconds(spec: &BenchmarkSpec, workers: usize) -> f64 {
    let design = spec.generate();
    let graph = design
        .build_graph(fastgr_grid::CostParams::default())
        .expect("suite designs build");
    let pool = HostPool::new(workers);
    let clock = Stopwatch::start();
    let prober = CostProber::build_with_pool(&graph, &pool);
    let elapsed = clock.elapsed_seconds();
    assert_eq!(prober.builds(), 1);
    elapsed
}

fn main() -> ExitCode {
    let mut full = false;
    let mut out_path = String::from("BENCH_pattern.json");
    let mut trace_path: Option<String> = None;
    let mut workers = 0usize;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = path;
            }
            "--trace" => {
                let Some(path) = args.next() else {
                    eprintln!("--trace needs a path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(path);
            }
            "--workers" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::FAILURE;
                };
                workers = n;
            }
            other => {
                eprintln!(
                    "usage: bench_pattern [--full] [--out PATH] [--workers N] [--trace PATH] \
                     (got {other})"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let workers = HostPool::resolve(workers);
    if workers < 2 {
        eprintln!("warning: only {workers} worker(s) resolved; speed-ups will be ~1x");
    }

    let mut specs = suite();
    if !full {
        specs.sort_by_key(|s| s.nets);
        specs.truncate(4);
    }

    // Only the parallel runs are recorded, and only when tracing was
    // requested: the timed legs stay untouched so their wall-clock is
    // comparable with historical snapshots. The prober counters
    // (`pattern.cost_*`) come from a separate untimed serial leg per spec
    // on the always-on `counters` recorder — they are deterministic and
    // worker-count invariant, so the cheap leg reports the same values.
    let recorder = if trace_path.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let counters = Recorder::enabled();

    let mut rows = Vec::with_capacity(specs.len());
    for spec in &specs {
        let serial = run_once(spec, 1, true, &Recorder::disabled());
        let parallel = run_once(spec, workers, true, &recorder);
        let direct = run_once(spec, workers, false, &Recorder::disabled());
        run_once(spec, 1, true, &counters);
        assert_eq!(
            serial.routes, parallel.routes,
            "{}: geometry diverged across worker counts",
            spec.name
        );
        assert_eq!(
            parallel.routes, direct.routes,
            "{}: geometry diverged between probed and direct costs",
            spec.name
        );
        let ms = serial.modeled_gpu_seconds.expect("gpu engine models time");
        let mp = parallel.modeled_gpu_seconds.expect("gpu engine models time");
        let md = direct.modeled_gpu_seconds.expect("gpu engine models time");
        assert_eq!(
            ms.to_bits(),
            mp.to_bits(),
            "{}: modelled seconds diverged across worker counts",
            spec.name
        );
        assert!(
            md >= ms,
            "{}: direct cost walks must model at least the probed work \
             ({md} < {ms})",
            spec.name
        );
        let build = cache_build_seconds(spec, workers);
        println!(
            "{:8} {:6} nets  serial {:8.3}s  x{} {:8.3}s  speedup {:5.2}x  \
             direct {:8.3}s  cache build {:.4}s  modelled {:.6}s (direct {:.6}s)",
            spec.name,
            spec.nets,
            serial.host_seconds,
            workers,
            parallel.host_seconds,
            serial.host_seconds / parallel.host_seconds,
            direct.host_seconds,
            build,
            ms,
            md,
        );
        rows.push(Row {
            name: spec.name,
            nets: spec.nets,
            serial_seconds: serial.host_seconds,
            parallel_seconds: parallel.host_seconds,
            direct_seconds: direct.host_seconds,
            cache_build_seconds: build,
            modeled_seconds: ms,
            modeled_direct_seconds: md,
        });
    }

    let geomean = (rows
        .iter()
        .map(|r| (r.serial_seconds / r.parallel_seconds).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();
    println!("geomean speedup with {workers} workers: {geomean:.2}x");
    let probe_geomean = (rows
        .iter()
        .map(|r| (r.direct_seconds / r.parallel_seconds).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();
    println!("geomean probe speedup (direct / probed): {probe_geomean:.2}x");

    // The prober counters, accumulated across every spec's counters leg.
    let counter_trace = counters.take_trace();
    let counter = |name: &str| counter_trace.counter(name).unwrap_or(0.0);
    let (builds, rows_rebuilt, probes) = (
        counter("pattern.cost_cache_builds"),
        counter("pattern.cost_cache_rows_rebuilt"),
        counter("pattern.cost_probes"),
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"suite\": \"{}\",", if full { "full" } else { "quick" });
    let _ = writeln!(json, "  \"mode\": \"LShape\",");
    let _ = writeln!(json, "  \"parallel_workers\": {workers},");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"geomean_speedup\": {geomean:.4},");
    let _ = writeln!(json, "  \"geomean_probe_speedup\": {probe_geomean:.4},");
    let _ = writeln!(json, "  \"cost_cache_builds\": {builds},");
    let _ = writeln!(json, "  \"cost_cache_rows_rebuilt\": {rows_rebuilt},");
    let _ = writeln!(json, "  \"cost_probes\": {probes},");
    let _ = writeln!(json, "  \"benchmarks\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"nets\": {}, \"serial_seconds\": {:.6}, \"parallel_seconds\": {:.6}, \"speedup\": {:.4}, \"direct_seconds\": {:.6}, \"probe_savings_seconds\": {:.6}, \"cache_build_seconds\": {:.6}, \"modeled_gpu_seconds\": {:.9}, \"modeled_direct_gpu_seconds\": {:.9}}}{}",
            r.name,
            r.nets,
            r.serial_seconds,
            r.parallel_seconds,
            r.serial_seconds / r.parallel_seconds,
            r.direct_seconds,
            r.direct_seconds - r.parallel_seconds,
            r.cache_build_seconds,
            r.modeled_seconds,
            r.modeled_direct_seconds,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if let Some(path) = trace_path {
        let trace = recorder.take_trace();
        if let Err(e) = std::fs::write(&path, trace.to_chrome_trace_json()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote trace to {path} ({} spans, {} kernel events)",
            trace.spans().len(),
            trace.kernels().len()
        );
    }
    ExitCode::SUCCESS
}
