//! Congestion-aware 2-D L-shape pattern routing over the projection.

use std::fmt;

use fastgr_design::Design;
use fastgr_grid::Point2;
use fastgr_steiner::SteinerBuilder;

use crate::projection::Projection;

/// One straight 2-D wire of a plan (direction implied by the endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment2D {
    /// One endpoint.
    pub from: Point2,
    /// The other endpoint (aligned with `from`).
    pub to: Point2,
}

impl Segment2D {
    /// Creates a 2-D segment.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are not aligned.
    pub fn new(from: Point2, to: Point2) -> Self {
        assert!(
            from.is_aligned_with(to),
            "segment endpoints must be aligned"
        );
        Self { from, to }
    }

    /// Whether the segment runs along the x axis (or is a point).
    pub fn is_horizontal(&self) -> bool {
        self.from.y == self.to.y
    }

    /// Length in G-cell edges.
    pub fn length(&self) -> u32 {
        self.from.manhattan_distance(self.to)
    }
}

impl fmt::Display for Segment2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.from, self.to)
    }
}

/// The 2-D routing plan of one net: for every two-pin tree edge (in
/// bottom-up order), the chain of straight segments realising it, plus the
/// tree connectivity needed by the layer assigner.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Plan2D {
    /// Per tree edge (bottom-up order): the straight segments from the
    /// child position to the parent position, in walk order.
    pub edges: Vec<Vec<Segment2D>>,
    /// Pin G-cells of the net (for pin-access vias during assignment).
    pub pins: Vec<Point2>,
}

impl Plan2D {
    /// Total 2-D wirelength of the plan.
    pub fn wirelength(&self) -> u64 {
        self.edges
            .iter()
            .flat_map(|chain| chain.iter())
            .map(|s| s.length() as u64)
            .sum()
    }
}

/// The 2-D pattern router. For every two-pin tree edge it evaluates the two
/// L-shaped candidates under the projected congestion cost, keeps the
/// cheaper one, and commits its demand before the next net (sequential
/// net-by-net, ascending HPWL — the conventional 2-D flow).
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoDRouter {
    _private: (),
}

impl TwoDRouter {
    /// Creates the router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes every net of `design`, committing 2-D demand to `projection`.
    /// Returns one [`Plan2D`] per net (indexed by net id).
    pub fn route_all(&self, design: &Design, projection: &mut Projection) -> Vec<Plan2D> {
        let builder = SteinerBuilder::new();
        let mut plans = vec![Plan2D::default(); design.nets().len()];

        // Ascending HPWL, ties by id — the same ordering the 3-D flow uses.
        let mut order: Vec<u32> = (0..design.nets().len() as u32).collect();
        order.sort_by_key(|&i| (design.nets()[i as usize].hpwl(), i));

        for &net_id in &order {
            let net = &design.nets()[net_id as usize];
            let tree = builder.build(net);
            let mut plan = Plan2D {
                edges: Vec::new(),
                pins: net.distinct_positions(),
            };
            for edge in tree.ordered_edges() {
                let ps = tree.node(edge.child).position;
                let pt = tree.node(edge.parent).position;
                let chain = self.route_edge(projection, ps, pt);
                for s in &chain {
                    projection.add_run_demand(s.from, s.to, 1.0);
                }
                plan.edges.push(chain);
            }
            plans[net_id as usize] = plan;
        }
        plans
    }

    /// Routes one two-pin edge: the cheaper of the two L candidates.
    fn route_edge(&self, projection: &Projection, ps: Point2, pt: Point2) -> Vec<Segment2D> {
        if ps == pt {
            return Vec::new();
        }
        if ps.is_aligned_with(pt) {
            return vec![Segment2D::new(ps, pt)];
        }
        let bend_a = Point2::new(pt.x, ps.y);
        let bend_b = Point2::new(ps.x, pt.y);
        let cost = |bend: Point2| projection.run_cost(ps, bend) + projection.run_cost(bend, pt);
        let bend = if cost(bend_a) <= cost(bend_b) {
            bend_a
        } else {
            bend_b
        };
        vec![Segment2D::new(ps, bend), Segment2D::new(bend, pt)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::{Generator, Net, NetId, Pin};
    use fastgr_grid::{CostParams, GridGraph};

    fn projection() -> Projection {
        let mut g = GridGraph::new(16, 16, 6, CostParams::default()).expect("valid");
        g.fill_capacity(2.0);
        Projection::from_graph(&g)
    }

    #[test]
    fn straight_edges_get_one_segment() {
        let p = projection();
        let r = TwoDRouter::new();
        let chain = r.route_edge(&p, Point2::new(1, 5), Point2::new(9, 5));
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].length(), 8);
    }

    #[test]
    fn bent_edges_pick_the_cheaper_l() {
        let mut p = projection();
        // Congest the row y = 2 so the L through y = 9 wins.
        for x in 0..15 {
            p.add_run_demand(Point2::new(x, 2), Point2::new(x + 1, 2), 7.0);
        }
        let r = TwoDRouter::new();
        let chain = r.route_edge(&p, Point2::new(1, 2), Point2::new(12, 9));
        assert_eq!(chain.len(), 2);
        // First leg should go vertical (away from the congested row).
        assert!(!chain[0].is_horizontal() || chain[0].length() == 0);
    }

    #[test]
    fn plans_cover_every_net_and_demand_matches_wirelength() {
        let design = Generator::tiny(6).generate();
        let mut g = GridGraph::new(16, 16, 5, CostParams::default()).expect("valid");
        g.fill_capacity(4.0);
        let mut p = Projection::from_graph(&g);
        let plans = TwoDRouter::new().route_all(&design, &mut p);
        assert_eq!(plans.len(), design.nets().len());
        // Every multi-position net has at least one routed edge.
        for (net, plan) in design.nets().iter().zip(&plans) {
            if net.distinct_positions().len() > 1 {
                assert!(!plan.edges.is_empty(), "net {} unplanned", net.name());
            }
        }
    }

    #[test]
    fn single_cell_nets_plan_empty() {
        let net = Net::new(NetId(0), "n", vec![Pin::new(Point2::new(3, 3), 0)]);
        let design = fastgr_design::Design::new("d", 8, 8, 4, 2.0, vec![], vec![net]);
        let mut g = GridGraph::new(8, 8, 4, CostParams::default()).expect("valid");
        g.fill_capacity(2.0);
        let mut p = Projection::from_graph(&g);
        let plans = TwoDRouter::new().route_all(&design, &mut p);
        assert!(plans[0].edges.is_empty());
        assert_eq!(plans[0].wirelength(), 0);
    }
}
