//! Fast congestion estimation — the "global routing as a congestion
//! predictor" use case from the paper's introduction.
//!
//! Placement and other design-cycle phases invoke the global router purely
//! to ask *where will it be congested?*; they need the pattern-routing
//! stage's congestion picture, not a fully legalised solution. This module
//! wraps that flow behind one call.

use fastgr_design::Design;
use fastgr_grid::{CongestionReport, CostParams};

use crate::dp::PatternMode;
use crate::error::RouteError;
use crate::ordering::SortingScheme;
use crate::pattern::{PatternEngine, PatternStage};

/// The result of a congestion estimation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionEstimate {
    /// Per-G-cell peak utilisation (row-major `height x width`), the value
    /// a placer would draw as a heat map.
    pub heatmap: Vec<f64>,
    /// Aggregate statistics (overflow, utilisation, peak).
    pub report: CongestionReport,
    /// Number of G-cells whose peak utilisation exceeds 1.0.
    pub hot_cells: usize,
}

impl CongestionEstimate {
    /// Utilisation at G-cell `(x, y)` given the design's width.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is outside the heat map.
    pub fn at(&self, x: u16, y: u16, width: u16) -> f64 {
        self.heatmap[y as usize * width as usize + x as usize]
    }
}

/// Estimates the congestion of `design` with one L-shape pattern routing
/// pass (no rip-up and reroute) — the cheapest pass that still produces a
/// realistic 3-D congestion picture.
///
/// # Errors
///
/// Propagates [`RouteError`] from the pattern stage (degenerate layer
/// counts; cannot happen on generator-produced designs).
///
/// # Example
///
/// ```
/// use fastgr_core::estimate_congestion;
/// use fastgr_design::Generator;
///
/// # fn main() -> Result<(), fastgr_core::RouteError> {
/// let design = Generator::tiny(5).generate();
/// let estimate = estimate_congestion(&design)?;
/// assert_eq!(estimate.heatmap.len(), 16 * 16);
/// assert!(estimate.report.utilization() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn estimate_congestion(design: &Design) -> Result<CongestionEstimate, RouteError> {
    let mut graph = design.build_graph(CostParams::default())?;
    let stage = PatternStage {
        mode: PatternMode::LShape,
        engine: PatternEngine::SequentialCpu,
        sorting: SortingScheme::HpwlAscending,
        steiner_passes: 4,
        congestion_aware_planning: false,
        cost_probing: true,
        validate: false,
    };
    stage.run(design, &mut graph)?;
    let heatmap = graph.congestion_heatmap();
    let hot_cells = heatmap.iter().filter(|&&u| u > 1.0).count();
    Ok(CongestionEstimate {
        heatmap,
        report: graph.report(),
        hot_cells,
    })
}

/// RUDY (Rectangular Uniform wire DensitY) congestion estimate: each net
/// spreads `hpwl / area` demand uniformly over its bounding box. Needs no
/// routing at all, which makes it the standard pre-routing estimator — and
/// the density signal the congestion-aware edge shifting of the planning
/// stage consumes.
///
/// Returns a row-major `height x width` density map.
///
/// # Example
///
/// ```
/// use fastgr_core::rudy_map;
/// use fastgr_design::Generator;
///
/// let design = Generator::tiny(5).generate();
/// let rudy = rudy_map(&design);
/// assert_eq!(rudy.len(), 16 * 16);
/// assert!(rudy.iter().sum::<f64>() > 0.0);
/// ```
pub fn rudy_map(design: &Design) -> Vec<f64> {
    let (w, h) = (design.width() as usize, design.height() as usize);
    let mut density = vec![0.0f64; w * h];
    for net in design.nets() {
        let bbox = net.bounding_box();
        let hpwl = net.hpwl() as f64;
        if hpwl == 0.0 {
            continue;
        }
        let share = hpwl / bbox.area() as f64;
        for y in bbox.lo.y..=bbox.hi.y {
            for x in bbox.lo.x..=bbox.hi.x {
                density[y as usize * w + x as usize] += share;
            }
        }
    }
    density
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_design::{Generator, GeneratorParams};

    #[test]
    fn estimate_covers_the_grid() {
        let design = Generator::tiny(7).generate();
        let e = estimate_congestion(&design).expect("routable");
        assert_eq!(e.heatmap.len(), 256);
        assert!(e.report.total_wire_demand > 0.0);
        assert_eq!(e.at(0, 0, 16), e.heatmap[0]);
    }

    #[test]
    fn congested_designs_have_hot_cells() {
        let design = Generator::new(GeneratorParams {
            width: 16,
            height: 16,
            layers: 5,
            num_nets: 400,
            capacity: 2.0,
            hotspots: 2,
            hotspot_affinity: 0.7,
            seed: 3,
            ..GeneratorParams::default()
        })
        .generate();
        let e = estimate_congestion(&design).expect("routable");
        assert!(e.hot_cells > 0, "expected overflow hot spots");
        assert!(e.report.overflow > 0.0);
    }

    #[test]
    fn rudy_concentrates_where_nets_overlap() {
        use fastgr_design::{Net, NetId, Pin};
        use fastgr_grid::Point2;
        // Two nets overlapping at (4..6, 4..6); a third far away.
        let nets = vec![
            Net::new(
                NetId(0),
                "a",
                vec![
                    Pin::new(Point2::new(2, 4), 0),
                    Pin::new(Point2::new(6, 6), 0),
                ],
            ),
            Net::new(
                NetId(1),
                "b",
                vec![
                    Pin::new(Point2::new(4, 2), 0),
                    Pin::new(Point2::new(6, 6), 0),
                ],
            ),
            Net::new(
                NetId(2),
                "c",
                vec![
                    Pin::new(Point2::new(12, 12), 0),
                    Pin::new(Point2::new(14, 14), 0),
                ],
            ),
        ];
        let design = fastgr_design::Design::new("t", 16, 16, 5, 4.0, vec![], nets);
        let rudy = rudy_map(&design);
        let at = |x: usize, y: usize| rudy[y * 16 + x];
        assert!(at(5, 5) > at(13, 13), "overlap region must be denser");
        assert_eq!(at(0, 15), 0.0);
    }

    #[test]
    fn roomy_designs_have_none() {
        let design = Generator::new(GeneratorParams {
            num_nets: 16,
            capacity: 20.0,
            ..GeneratorParams::default()
        })
        .generate();
        let e = estimate_congestion(&design).expect("routable");
        assert_eq!(e.hot_cells, 0);
    }
}
