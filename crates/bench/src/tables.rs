//! Plain-text table formatting for the experiment reports.

/// Formats a table with a header row, column alignment and a rule line —
/// the same visual layout for every reproduced table.
///
/// # Example
///
/// ```
/// use fastgr_bench::tables::format_table;
///
/// let t = format_table(
///     &["design", "score"],
///     &[vec!["s18t5".into(), "123.4".into()]],
/// );
/// assert!(t.contains("design"));
/// assert!(t.contains("s18t5"));
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{:<w$}", c, w = widths[i])
                } else {
                    format!("{:>w$}", c, w = widths[i])
                }
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with engineering-friendly precision.
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(r: f64) -> String {
    format!("{r:.3}x")
}

/// Geometric mean of positive values (the paper's averaging convention for
/// speedups); 0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["a", "metric"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn secs_picks_units() {
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.0025), "2.50ms");
        assert_eq!(secs(0.0000025), "2.5us");
    }

    #[test]
    fn geomean_matches_hand_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
