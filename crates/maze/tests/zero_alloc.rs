//! Verifies the zero-allocation guarantee of the maze-search hot path:
//! once a [`MazeScratch`] and an output [`Route`] have grown to their
//! high-water marks (one warm-up pass over every net), further
//! [`MazeRouter::route_into`] calls must not touch the heap at all — the
//! property that lets the RRR stage run one scratch per worker thread with
//! no allocator traffic in the steady state.
//!
//! This lives in its own integration-test binary because it installs a
//! counting global allocator — unit tests running concurrently in the
//! library binary would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fastgr_grid::{CostParams, GridGraph, Point2, Route};
use fastgr_maze::{MazeRouter, MazeScratch};

/// Counts every allocation and reallocation passed to the system
/// allocator. Frees are not counted: releasing memory is allowed (and
/// does not happen on the hot path anyway — buffers are recycled).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const W: u16 = 24;
const H: u16 = 24;

/// Deterministic multi-pin nets from a splitmix-style generator — enough
/// variety to exercise multi-source searches, rebinds to windows of many
/// sizes, and heavy congestion.
fn synthetic_nets(count: usize) -> Vec<Vec<Point2>> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u16
    };
    (0..count)
        .map(|_| {
            let pins = 2 + (next() % 3) as usize;
            (0..pins)
                .map(|_| Point2::new(next() % W, next() % H))
                .collect()
        })
        .collect()
}

#[test]
fn route_into_is_allocation_free_in_steady_state() {
    let mut graph = GridGraph::new(W, H, 5, CostParams::default()).expect("valid");
    graph.fill_capacity(3.0);
    let nets = synthetic_nets(48);
    let router = MazeRouter::default();

    let mut scratch = MazeScratch::new();
    let mut out = Route::new();

    // Warm-up pass 1: grows the scratch to its high-water mark and commits
    // every route so later passes run against real congestion.
    for pins in &nets {
        router
            .route_into(&graph, pins, &mut scratch, &mut out)
            .expect("routable");
        graph.commit(&out).expect("valid route");
    }
    // Warm-up pass 2: re-route on the congested graph without committing,
    // so the heap and path buffers reach their congested-search sizes too.
    for pins in &nets {
        router
            .route_into(&graph, pins, &mut scratch, &mut out)
            .expect("routable");
    }

    // Steady state: identical searches through the same scratch must
    // perform zero heap allocations.
    let before = ALLOCS.load(Ordering::SeqCst);
    for pins in &nets {
        router
            .route_into(&graph, pins, &mut scratch, &mut out)
            .expect("routable");
    }
    let steady = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(steady, 0, "{steady} allocations on the steady-state pass");
}
