//! The workspace's single wall-clock.
//!
//! This module is the only place in the workspace allowed to call
//! `std::time::Instant::now()` (enforced by the `timing-instant` rule of
//! the `fastgr-analysis` lint pass). Routing stages, the simulated
//! device, the executor and the bench harness all measure through
//! [`Stopwatch`], so every reported second originates from one clock.

use std::time::Instant;

/// A started wall-clock stopwatch.
///
/// # Example
///
/// ```
/// use fastgr_telemetry::Stopwatch;
///
/// let clock = Stopwatch::start();
/// let seconds = clock.elapsed_seconds();
/// assert!(seconds >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Microseconds elapsed since [`Stopwatch::start`] (the Chrome
    /// `trace_event` time unit).
    pub fn elapsed_micros(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let clock = Stopwatch::start();
        let a = clock.elapsed_seconds();
        let b = clock.elapsed_seconds();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn micros_follow_seconds() {
        let clock = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let s = clock.elapsed_seconds();
        let us = clock.elapsed_micros();
        assert!(us >= s * 1e6 * 0.5, "{us} vs {s}");
    }
}
