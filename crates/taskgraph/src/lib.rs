//! The heterogeneous task graph scheduler of FastGR (paper Section III-B).
//!
//! Routing tasks (net batches in the pattern stage, single nets in the
//! rip-up-and-reroute stage) *conflict* when their bounding boxes overlap —
//! they would mutate the same routing resources, so they must not run
//! concurrently. This crate provides the full scheduling pipeline:
//!
//! * [`ConflictGraph`] — bounding-box conflict detection (bucketised so it
//!   does not degenerate to all-pairs on big designs);
//! * [`extract_batches`] — **Algorithm 1**: greedy maximal independent-set
//!   batch extraction following a caller-provided net order;
//! * [`Schedule`] — the **two-stage task graph scheduler**: extract one root
//!   task batch, then orient every conflict edge (root → non-root, otherwise
//!   smaller task id → larger), yielding a DAG by construction, with
//!   work/span (critical path) accounting;
//! * [`Executor`] — a Taskflow-substitute dependency-graph executor running
//!   the scheduled DAG on CPU worker threads with maximum parallelism.
//!
//! # Example
//!
//! ```
//! use fastgr_grid::{Point2, Rect};
//! use fastgr_taskgraph::{ConflictGraph, Executor, Schedule};
//!
//! let boxes = vec![
//!     Rect::new(Point2::new(0, 0), Point2::new(4, 4)),
//!     Rect::new(Point2::new(2, 2), Point2::new(6, 6)),  // conflicts with 0
//!     Rect::new(Point2::new(8, 8), Point2::new(9, 9)),  // independent
//! ];
//! let conflicts = ConflictGraph::from_bounding_boxes(&boxes);
//! let order: Vec<u32> = vec![0, 1, 2];
//! let schedule = Schedule::build(&order, &conflicts);
//! // Tasks 0 and 2 form the root batch; 1 waits for 0.
//! assert_eq!(schedule.root_batch(), &[0, 2]);
//!
//! let log = std::sync::Mutex::new(Vec::new());
//! Executor::new(2).run(&schedule, |task| {
//!     log.lock().unwrap().push(task);
//! });
//! assert_eq!(log.into_inner().unwrap().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod conflict;
mod executor;
mod schedule;

pub use batch::extract_batches;
pub use conflict::ConflictGraph;
pub use executor::{ExecutionHooks, Executor, ExecutorStats, HookPair, NoHooks, TraceHooks};
pub use schedule::Schedule;
