//! Dynamic-programming layer assignment of fixed 2-D geometry.

use std::collections::HashMap;

use fastgr_design::Design;
use fastgr_grid::{Direction, GridError, GridGraph, Point2, Route, Segment, Via};

use crate::router2d::Plan2D;

/// Assigns the segments of 2-D plans to metal layers of the real 3-D grid.
///
/// Per net, per two-pin chain (in the plan's bottom-up order) a chain
/// dynamic program picks one direction-compatible layer per segment,
/// minimising wire congestion cost plus the via stacks at bends and at the
/// *anchors* — the layer intervals already materialised at shared tree
/// nodes and pins (pins anchor at layer 0). This is the greedy-per-net,
/// DP-per-chain scheme of classic 2-D flows; unlike FastGR's 3-D pattern
/// routing it cannot trade 2-D geometry against layer choice, which is
/// exactly the deficiency the ablation measures.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerAssigner {
    _private: (),
}

impl LayerAssigner {
    /// Creates the assigner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns every net's plan, committing demand to `graph` net by net
    /// (ascending net id — plans already reflect the router's ordering).
    ///
    /// # Errors
    ///
    /// Propagates [`GridError`] on commit failures (internal invariant).
    pub fn assign_all(
        &self,
        design: &Design,
        graph: &mut GridGraph,
        plans: &[Plan2D],
    ) -> Result<Vec<Route>, GridError> {
        assert_eq!(plans.len(), design.nets().len(), "one plan per net");
        let mut routes = Vec::with_capacity(plans.len());
        for plan in plans {
            let route = self.assign_net(graph, plan);
            graph.commit(&route)?;
            routes.push(route);
        }
        Ok(routes)
    }

    /// Assigns one net's plan (without committing).
    pub fn assign_net(&self, graph: &GridGraph, plan: &Plan2D) -> Route {
        let layers = graph.num_layers() as usize;
        let mut route = Route::new();
        // Anchors: layer intervals already materialised per G-cell. Pins
        // seed an anchor at the pin layer 0.
        let mut anchors: HashMap<Point2, (u8, u8)> = HashMap::new();
        for &pin in &plan.pins {
            anchors.insert(pin, (0, 0));
        }

        for chain in &plan.edges {
            if chain.is_empty() {
                continue;
            }
            // Junctions j0 .. jk along the chain.
            let mut junctions = vec![chain[0].from];
            for s in chain {
                junctions.push(s.to);
            }

            // cost[i][l]: best cost with segment i on layer l.
            let k = chain.len();
            let mut cost = vec![vec![f64::INFINITY; layers]; k];
            let mut back = vec![vec![0u8; layers]; k];
            for (i, seg) in chain.iter().enumerate() {
                let dir = if seg.is_horizontal() {
                    Direction::Horizontal
                } else {
                    Direction::Vertical
                };
                for l in 1..layers {
                    if graph.layer(l as u8).direction != dir {
                        continue;
                    }
                    let wire = graph.wire_run_cost(l as u8, seg.from, seg.to);
                    if !wire.is_finite() {
                        continue;
                    }
                    if i == 0 {
                        let connect = anchor_connect_cost(graph, &anchors, junctions[0], l as u8);
                        cost[0][l] = connect + wire;
                    } else {
                        for lp in 1..layers {
                            if !cost[i - 1][lp].is_finite() {
                                continue;
                            }
                            let via = graph.via_stack_cost(junctions[i], lp as u8, l as u8);
                            let c = cost[i - 1][lp] + via + wire;
                            if c < cost[i][l] {
                                cost[i][l] = c;
                                back[i][l] = lp as u8;
                            }
                        }
                    }
                }
            }

            // Close the chain at the parent junction's anchor.
            let mut best = f64::INFINITY;
            let mut best_l = 0usize;
            for (l, &c) in cost[k - 1].iter().enumerate().take(layers).skip(1) {
                if !c.is_finite() {
                    continue;
                }
                let connect = anchor_connect_cost(graph, &anchors, junctions[k], l as u8);
                if c + connect < best {
                    best = c + connect;
                    best_l = l;
                }
            }
            debug_assert!(best.is_finite(), "chain must be assignable");

            // Back-track the layers.
            let mut chosen = vec![0u8; k];
            chosen[k - 1] = best_l as u8;
            for i in (1..k).rev() {
                chosen[i - 1] = back[i][chosen[i] as usize];
            }

            // Emit geometry: wires, bend vias, anchor-extension vias.
            emit_anchor_connection(&mut route, &mut anchors, junctions[0], chosen[0]);
            for (i, seg) in chain.iter().enumerate() {
                route.push_segment(Segment::new(chosen[i], seg.from, seg.to));
                if i + 1 < k {
                    route.push_via(Via::new(junctions[i + 1], chosen[i], chosen[i + 1]));
                }
            }
            emit_anchor_connection(&mut route, &mut anchors, junctions[k], chosen[k - 1]);
        }
        route.normalize();
        debug_assert!(route.is_connected(), "assigned net must stay connected");
        route
    }
}

/// Via cost of connecting layer `l` to the anchor interval at `at`
/// (0 when no anchor exists yet — the junction simply materialises at `l`).
fn anchor_connect_cost(
    graph: &GridGraph,
    anchors: &HashMap<Point2, (u8, u8)>,
    at: Point2,
    l: u8,
) -> f64 {
    match anchors.get(&at) {
        Some(&(lo, hi)) => {
            if l < lo {
                graph.via_stack_cost(at, l, lo)
            } else if l > hi {
                graph.via_stack_cost(at, hi, l)
            } else {
                0.0
            }
        }
        None => 0.0,
    }
}

/// Emits the via stack realising the anchor connection and updates the
/// anchor interval at `at` to include `l`.
fn emit_anchor_connection(
    route: &mut Route,
    anchors: &mut HashMap<Point2, (u8, u8)>,
    at: Point2,
    l: u8,
) {
    match anchors.get_mut(&at) {
        Some(interval) => {
            let (lo, hi) = *interval;
            if l < lo {
                route.push_via(Via::new(at, l, lo));
            } else if l > hi {
                route.push_via(Via::new(at, hi, l));
            }
            *interval = (lo.min(l), hi.max(l));
        }
        None => {
            anchors.insert(at, (l, l));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::Projection;
    use crate::router2d::TwoDRouter;
    use fastgr_design::{Generator, Net, NetId, Pin};
    use fastgr_grid::CostParams;

    fn graph() -> GridGraph {
        let mut g = GridGraph::new(16, 16, 6, CostParams::default()).expect("valid");
        g.fill_capacity(3.0);
        g
    }

    fn assign_design(design: &Design) -> (GridGraph, Vec<Route>) {
        let mut g = graph();
        let mut p = Projection::from_graph(&g);
        let plans = TwoDRouter::new().route_all(design, &mut p);
        let routes = LayerAssigner::new()
            .assign_all(design, &mut g, &plans)
            .expect("valid");
        (g, routes)
    }

    fn two_pin_design(a: (u16, u16), b: (u16, u16)) -> Design {
        Design::new(
            "d",
            16,
            16,
            6,
            3.0,
            vec![],
            vec![Net::new(
                NetId(0),
                "n",
                vec![
                    Pin::new(Point2::new(a.0, a.1), 0),
                    Pin::new(Point2::new(b.0, b.1), 0),
                ],
            )],
        )
    }

    #[test]
    fn two_pin_assignment_connects_pins() {
        let design = two_pin_design((1, 1), (10, 7));
        let (_, routes) = assign_design(&design);
        let r = &routes[0];
        assert!(r.is_connected());
        assert_eq!(r.wirelength(), 15); // L geometry preserved
        let touched = r.touched_points();
        assert!(touched.contains(&Point2::new(1, 1).on_layer(0)));
        assert!(touched.contains(&Point2::new(10, 7).on_layer(0)));
    }

    #[test]
    fn segments_respect_layer_directions() {
        let design = two_pin_design((2, 3), (11, 12));
        let (g, routes) = assign_design(&design);
        for s in routes[0].segments() {
            let dir = if s.is_horizontal() {
                Direction::Horizontal
            } else {
                Direction::Vertical
            };
            assert_eq!(
                g.layer(s.layer).direction,
                dir,
                "segment {s} on wrong layer"
            );
        }
    }

    #[test]
    fn whole_design_assigns_and_connects() {
        let design = Generator::tiny(9).generate();
        let mut g = GridGraph::new(16, 16, 5, CostParams::default()).expect("valid");
        g.fill_capacity(4.0);
        let mut p = Projection::from_graph(&g);
        let plans = TwoDRouter::new().route_all(&design, &mut p);
        let routes = LayerAssigner::new()
            .assign_all(&design, &mut g, &plans)
            .expect("valid");
        for (net, route) in design.nets().iter().zip(&routes) {
            assert!(route.is_connected(), "net {} broken", net.name());
            let pins = net.distinct_positions();
            if pins.len() > 1 {
                let touched = route.touched_points();
                for pin in pins {
                    assert!(touched.contains(&pin.on_layer(0)));
                }
            }
        }
        // Demand on the grid equals the union geometry.
        let wl: u64 = routes.iter().map(Route::wirelength).sum();
        assert_eq!(g.report().total_wire_demand, wl as f64);
    }

    #[test]
    fn congestion_steers_layer_choice() {
        let design = two_pin_design((1, 8), (14, 8));
        let mut g = graph();
        // Saturate M1 along the straight row; M3/M5 remain.
        let mut blocker = Route::new();
        blocker.push_segment(Segment::new(1, Point2::new(0, 8), Point2::new(15, 8)));
        for _ in 0..6 {
            g.commit(&blocker).expect("valid");
        }
        let mut p = Projection::from_graph(&g);
        let plans = TwoDRouter::new().route_all(&design, &mut p);
        let routes = LayerAssigner::new()
            .assign_all(&design, &mut g, &plans)
            .expect("valid");
        assert!(routes[0].segments().iter().all(|s| s.layer != 1));
    }
}
