//! Cross-crate consistency between the pattern DP and the maze router:
//! both optimise the same cost model, so on an empty grid the maze route of
//! a two-pin net can never cost more than the pattern route (it searches a
//! superset of the pattern paths), and both must connect the same pins.
//!
//! Tolerances: the pattern DP evaluates costs in the Q44.20 fixed-point
//! domain of the prefix-sum cost prober (each edge rounds by at most
//! 2^-21), while `GridGraph::route_cost` sums raw f64 — so pattern-vs-maze
//! comparisons allow 1e-3 of quantisation drift. Pattern-vs-pattern
//! comparisons are quantised on both sides and stay at 1e-9.

use fastgr::core::{PatternDp, PatternMode};
use fastgr::design::{Net, NetId, Pin};
use fastgr::grid::{CostParams, GridGraph, Point2};
use fastgr::maze::MazeRouter;
use fastgr::steiner::SteinerBuilder;

fn graph() -> GridGraph {
    let mut g = GridGraph::new(24, 24, 6, CostParams::default()).expect("valid");
    g.fill_capacity(6.0);
    g
}

fn two_pin(a: (u16, u16), b: (u16, u16)) -> Net {
    Net::new(
        NetId(0),
        "n",
        vec![
            Pin::new(Point2::new(a.0, a.1), 0),
            Pin::new(Point2::new(b.0, b.1), 0),
        ],
    )
}

#[test]
fn maze_never_loses_to_patterns_on_an_empty_grid() {
    let g = graph();
    let cases = [
        ((1, 1), (20, 15)),
        ((3, 19), (18, 2)),
        ((0, 0), (23, 23)),
        ((5, 5), (5, 18)),
    ];
    for (a, b) in cases {
        let net = two_pin(a, b);
        let tree = SteinerBuilder::new().build(&net);
        let pattern = PatternDp::new(&g, PatternMode::LShape)
            .route_net(&tree)
            .expect("routable");
        let maze_route = MazeRouter::default()
            .route(&g, &net.distinct_positions())
            .expect("routable");
        let maze_cost = g.route_cost(&maze_route);
        assert!(
            maze_cost <= pattern.cost + 1e-3,
            "maze {maze_cost} must not exceed pattern {} for {a:?}->{b:?}",
            pattern.cost
        );
    }
}

#[test]
fn hybrid_pattern_closes_the_gap_to_maze() {
    // On an empty grid the best hybrid path cost must lie between the maze
    // optimum and the L-shape cost.
    let g = graph();
    let net = two_pin((2, 3), (21, 17));
    let tree = SteinerBuilder::new().build(&net);
    let l = PatternDp::new(&g, PatternMode::LShape)
        .route_net(&tree)
        .expect("ok");
    let h = PatternDp::new(&g, PatternMode::HybridAll)
        .route_net(&tree)
        .expect("ok");
    let maze_route = MazeRouter::default()
        .route(&g, &net.distinct_positions())
        .expect("ok");
    let m = g.route_cost(&maze_route);
    assert!(m <= h.cost + 1e-3);
    assert!(h.cost <= l.cost + 1e-9);
}

#[test]
fn pattern_and_maze_agree_on_straight_connections() {
    // A straight two-pin net on an empty grid: both find the same optimum.
    let g = graph();
    let net = two_pin((3, 10), (19, 10));
    let tree = SteinerBuilder::new().build(&net);
    let pattern = PatternDp::new(&g, PatternMode::LShape)
        .route_net(&tree)
        .expect("routable");
    let maze_route = MazeRouter::default()
        .route(&g, &net.distinct_positions())
        .expect("routable");
    assert!((g.route_cost(&maze_route) - pattern.cost).abs() < 1e-3);
    assert_eq!(maze_route.wirelength(), pattern.route.wirelength());
}

#[test]
fn maze_beats_patterns_around_a_blockage() {
    // Block the straight corridor on every horizontal layer: the L pattern
    // is forced through the blockage penalty while the maze detours.
    let mut g = graph();
    use fastgr::grid::Rect;
    for layer in [1u8, 3, 5] {
        g.scale_region_capacity(
            layer,
            Rect::new(Point2::new(8, 8), Point2::new(14, 12)),
            0.0,
        );
    }
    let net = two_pin((2, 10), (21, 10));
    let tree = SteinerBuilder::new().build(&net);
    let pattern = PatternDp::new(&g, PatternMode::LShape)
        .route_net(&tree)
        .expect("routable");
    let maze_route = MazeRouter::default()
        .route(&g, &net.distinct_positions())
        .expect("routable");
    assert!(g.route_cost(&maze_route) < pattern.cost - 1e-6);
}
