//! Bounding-box conflict graph construction.

use std::fmt;

use fastgr_grid::Rect;

/// The task conflict graph: tasks are vertices, an edge joins every pair of
/// tasks whose bounding boxes overlap (they would touch the same routing
/// resources and must not execute concurrently).
///
/// Construction uses a uniform bucket grid so the expected cost is close to
/// linear in the number of tasks plus the number of actual conflicts,
/// instead of the all-pairs `O(n^2)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    adjacency: Vec<Vec<u32>>,
    edge_count: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph of `boxes` (task `i` owns `boxes[i]`).
    pub fn from_bounding_boxes(boxes: &[Rect]) -> Self {
        let n = boxes.len();
        let mut adjacency = vec![Vec::new(); n];
        if n == 0 {
            return Self {
                adjacency,
                edge_count: 0,
            };
        }

        // Bucket size: aim for a few boxes per bucket.
        let max_x = boxes.iter().map(|b| b.hi.x).max().unwrap_or(0) as usize + 1;
        let max_y = boxes.iter().map(|b| b.hi.y).max().unwrap_or(0) as usize + 1;
        let target_buckets = (n as f64).sqrt().ceil() as usize + 1;
        let bucket_w = (max_x / target_buckets).max(1);
        let bucket_h = (max_y / target_buckets).max(1);
        let cols = max_x.div_ceil(bucket_w);
        let rows = max_y.div_ceil(bucket_h);

        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cols * rows];
        for (i, b) in boxes.iter().enumerate() {
            let c0 = b.lo.x as usize / bucket_w;
            let c1 = b.hi.x as usize / bucket_w;
            let r0 = b.lo.y as usize / bucket_h;
            let r1 = b.hi.y as usize / bucket_h;
            for r in r0..=r1 {
                for c in c0..=c1 {
                    buckets[r * cols + c].push(i as u32);
                }
            }
        }

        let mut edge_count = 0;
        let mut seen_pair = std::collections::HashSet::new();
        for bucket in &buckets {
            for (k, &i) in bucket.iter().enumerate() {
                for &j in &bucket[k + 1..] {
                    let (a, b) = (i.min(j), i.max(j));
                    if boxes[a as usize].intersects(&boxes[b as usize]) && seen_pair.insert((a, b))
                    {
                        adjacency[a as usize].push(b);
                        adjacency[b as usize].push(a);
                        edge_count += 1;
                    }
                }
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        Self {
            adjacency,
            edge_count,
        }
    }

    /// Builds the conflict graph by the naive all-pairs scan — the `O(n²)`
    /// reference implementation the bucketised construction is checked
    /// against (differentially tested here and by `cargo xtask check`).
    pub fn from_bounding_boxes_naive(boxes: &[Rect]) -> Self {
        let n = boxes.len();
        let mut adjacency = vec![Vec::new(); n];
        let mut edge_count = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                if boxes[a].intersects(&boxes[b]) {
                    adjacency[a].push(b as u32);
                    adjacency[b].push(a as u32);
                    edge_count += 1;
                }
            }
        }
        Self {
            adjacency,
            edge_count,
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of conflict edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The tasks conflicting with `task`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn neighbors(&self, task: u32) -> &[u32] {
        &self.adjacency[task as usize]
    }

    /// Whether tasks `a` and `b` conflict.
    pub fn conflicts(&self, a: u32, b: u32) -> bool {
        self.adjacency[a as usize].binary_search(&b).is_ok()
    }
}

impl fmt::Display for ConflictGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflict graph: {} tasks, {} edges",
            self.task_count(),
            self.edge_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastgr_grid::Point2;
    use proptest::prelude::*;

    fn rect(x0: u16, y0: u16, x1: u16, y1: u16) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = ConflictGraph::from_bounding_boxes(&[]);
        assert_eq!(g.task_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn detects_overlaps_and_ignores_disjoint() {
        let g = ConflictGraph::from_bounding_boxes(&[
            rect(0, 0, 4, 4),
            rect(3, 3, 8, 8),
            rect(20, 20, 25, 25),
        ]);
        assert!(g.conflicts(0, 1));
        assert!(g.conflicts(1, 0));
        assert!(!g.conflicts(0, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edge_touching_counts_as_conflict() {
        let g = ConflictGraph::from_bounding_boxes(&[rect(0, 0, 2, 2), rect(2, 2, 4, 4)]);
        assert!(g.conflicts(0, 1));
    }

    #[test]
    fn no_self_edges() {
        let g = ConflictGraph::from_bounding_boxes(&[rect(0, 0, 4, 4)]);
        assert!(g.neighbors(0).is_empty());
    }

    proptest! {
        /// Bucketised construction must agree exactly with the all-pairs
        /// reference for arbitrary boxes.
        #[test]
        fn matches_all_pairs_reference(
            raw in proptest::collection::vec((0u16..50, 0u16..50, 0u16..12, 0u16..12), 0..40)
        ) {
            let boxes: Vec<Rect> = raw
                .iter()
                .map(|&(x, y, w, h)| rect(x, y, x + w, y + h))
                .collect();
            let g = ConflictGraph::from_bounding_boxes(&boxes);
            for i in 0..boxes.len() {
                for j in (i + 1)..boxes.len() {
                    let expect = boxes[i].intersects(&boxes[j]);
                    prop_assert_eq!(
                        g.conflicts(i as u32, j as u32),
                        expect,
                        "pair ({}, {}) expected {}", i, j, expect
                    );
                }
            }
            // The whole structure (adjacency lists, edge count) must equal
            // the all-pairs reference, not just the membership queries.
            prop_assert_eq!(g, ConflictGraph::from_bounding_boxes_naive(&boxes));
        }
    }
}
