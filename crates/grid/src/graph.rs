//! The routing-resource graph: capacities, demands and edge costs.
//!
//! Demand is stored in lock-free fixed-point [`AtomicU64`] cells so that
//! conflict-free rip-up-and-reroute tasks can commit and uncommit routes
//! concurrently through a shared `&GridGraph` — see
//! [`GridGraph::commit_atomic`] for the exact contract.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::congestion::CongestionReport;
use crate::cost::CostParams;
use crate::error::GridError;
use crate::geom::{Point2, Rect};
use crate::layer::{Direction, LayerInfo};
use crate::route::Route;

/// Number of fractional bits in the fixed-point demand representation.
///
/// Demand updates are commutative exact-integer additions, so the final
/// state of any concurrent mix of commits and uncommits is bit-identical to
/// the same multiset of updates applied sequentially — the property the
/// atomic-parity proptest pins down. A 2^-20 resolution keeps the common
/// track increments (±1.0 and small dyadic fractions) exactly representable.
const DEMAND_FRAC_BITS: u32 = 20;
const DEMAND_SCALE: f64 = (1u64 << DEMAND_FRAC_BITS) as f64;

/// Converts a (possibly negative) demand amount to its fixed-point form.
fn demand_to_fixed(amount: f64) -> i64 {
    debug_assert!(amount.is_finite());
    (amount * DEMAND_SCALE).round() as i64
}

/// Converts a fixed-point cell (two's-complement `i64` stored in `u64`)
/// back to a demand value.
fn fixed_to_demand(raw: u64) -> f64 {
    raw as i64 as f64 / DEMAND_SCALE
}

/// Number of fractional bits in the fixed-point (Q44.20) *cost* domain
/// shared by [`GridGraph::wire_run_cost_fixed`] and the prefix-sum
/// [`crate::CostProber`].
///
/// Edge costs are nonnegative and bounded (the logistic congestion model
/// saturates; the zero-capacity sentinel is `overflow_weight * 16`), so a
/// row-length prefix sum stays far below 2^53 and converts back to `f64`
/// exactly. Because quantisation happens *per edge* before summation,
/// integer prefix differences are bit-identical to naive integer summation
/// — the exactness property the prober's proptests pin down.
pub(crate) const COST_FRAC_BITS: u32 = 20;
const COST_SCALE: f64 = (1u64 << COST_FRAC_BITS) as f64;

/// Quantises a finite nonnegative edge cost to the Q44.20 cost domain.
pub(crate) fn cost_to_fixed(cost: f64) -> u64 {
    debug_assert!(cost.is_finite() && cost >= 0.0);
    (cost * COST_SCALE).round() as u64
}

/// Converts a Q44.20 cost sum back to `f64` (exact below 2^53).
pub(crate) fn fixed_cost_to_f64(raw: u64) -> f64 {
    raw as f64 / COST_SCALE
}

/// Per-layer storage of wire-edge capacity, demand and history cost.
///
/// Demand lives in atomic fixed-point cells (see [`demand_to_fixed`]) so
/// routes can be committed and ripped up from many threads without a lock.
/// Capacity and history stay plain `f64`: they are only mutated between
/// iterations through `&mut self`, so they never race with the shared-state
/// demand updates.
#[derive(Debug)]
struct Plane {
    capacity: Vec<f64>,
    demand: Vec<AtomicU64>,
    /// Accumulated negotiation history (NTHU-Route / Archer style): edges
    /// that keep overflowing accrue extra cost so later iterations learn to
    /// avoid them even when their instantaneous congestion looks tolerable.
    history: Vec<f64>,
}

impl Plane {
    fn demand_at(&self, i: usize) -> f64 {
        fixed_to_demand(self.demand[i].load(Ordering::Relaxed))
    }
}

impl Clone for Plane {
    fn clone(&self) -> Self {
        Self {
            capacity: self.capacity.clone(),
            demand: self
                .demand
                .iter()
                .map(|d| AtomicU64::new(d.load(Ordering::Relaxed)))
                .collect(),
            history: self.history.clone(),
        }
    }
}

fn zeroed_atomics(n: usize) -> Vec<AtomicU64> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

/// Lock-free tracker of the wire edges whose demand changed since the last
/// [`GridGraph::clear_dirty`].
///
/// One bit per wire edge (planes concatenated in layer order) plus a
/// conservative bounding rectangle over the lower endpoints of dirtied
/// edges, used as a cheap prefilter before per-edge bit tests. Everything is
/// updated with relaxed atomics; the tracker is only *read* between RRR
/// iterations, after the executor has joined its workers, so the thread join
/// supplies the happens-before edge the relaxed stores rely on.
#[derive(Debug)]
struct DirtyTracker {
    words: Vec<AtomicU64>,
    /// Number of distinct edges dirtied since the last clear.
    count: AtomicU64,
    min_x: AtomicU32,
    min_y: AtomicU32,
    max_x: AtomicU32,
    max_y: AtomicU32,
}

impl DirtyTracker {
    fn new(bits: usize) -> Self {
        Self {
            words: zeroed_atomics(bits.div_ceil(64)),
            count: AtomicU64::new(0),
            min_x: AtomicU32::new(u32::MAX),
            min_y: AtomicU32::new(u32::MAX),
            max_x: AtomicU32::new(0),
            max_y: AtomicU32::new(0),
        }
    }

    /// Marks edge bit `bit` dirty; `p` is the edge's lower endpoint.
    fn mark(&self, bit: usize, p: Point2) {
        let mask = 1u64 << (bit & 63);
        if self.words[bit >> 6].fetch_or(mask, Ordering::Relaxed) & mask == 0 {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        self.min_x.fetch_min(p.x as u32, Ordering::Relaxed);
        self.min_y.fetch_min(p.y as u32, Ordering::Relaxed);
        self.max_x.fetch_max(p.x as u32, Ordering::Relaxed);
        self.max_y.fetch_max(p.y as u32, Ordering::Relaxed);
    }

    fn is_set(&self, bit: usize) -> bool {
        self.words[bit >> 6].load(Ordering::Relaxed) & (1u64 << (bit & 63)) != 0
    }

    fn clear(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
        *self.count.get_mut() = 0;
        *self.min_x.get_mut() = u32::MAX;
        *self.min_y.get_mut() = u32::MAX;
        *self.max_x.get_mut() = 0;
        *self.max_y.get_mut() = 0;
    }

    /// Bounding rectangle of all dirty edge endpoints, `None` when clean.
    fn rect(&self) -> Option<Rect> {
        if self.count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some(Rect::new(
            Point2::new(
                self.min_x.load(Ordering::Relaxed) as u16,
                self.min_y.load(Ordering::Relaxed) as u16,
            ),
            Point2::new(
                self.max_x.load(Ordering::Relaxed) as u16,
                self.max_y.load(Ordering::Relaxed) as u16,
            ),
        ))
    }
}

impl Clone for DirtyTracker {
    fn clone(&self) -> Self {
        Self {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
            min_x: AtomicU32::new(self.min_x.load(Ordering::Relaxed)),
            min_y: AtomicU32::new(self.min_y.load(Ordering::Relaxed)),
            max_x: AtomicU32::new(self.max_x.load(Ordering::Relaxed)),
            max_y: AtomicU32::new(self.max_y.load(Ordering::Relaxed)),
        }
    }
}

/// The 3-D global-routing grid graph `G(V, E)`.
///
/// One vertex per G-cell per metal layer. Wire edges join adjacent G-cells
/// on the same layer *along the layer's preferred direction only*; via edges
/// join vertically stacked G-cells on adjacent layers. Each wire edge tracks
/// a `capacity` (available tracks) and a `demand` (tracks consumed by
/// committed routes); via edges track demand against a per-G-cell via
/// capacity from [`CostParams`].
///
/// Demand is quantised to multiples of 2^-20 tracks and stored in atomic
/// cells, so [`GridGraph::commit_atomic`] / [`GridGraph::uncommit_atomic`]
/// work through a shared reference and concurrent updates from disjoint
/// tasks never contend on a lock. All read accessors return the quantised
/// value; integral and small dyadic amounts round-trip exactly.
///
/// Layer 0 is the pin layer: it carries no routing capacity by convention
/// (its capacity defaults to 0 and [`GridGraph::fill_capacity`] leaves it
/// untouched), so routes must immediately via up from pins.
///
/// # Example
///
/// ```
/// use fastgr_grid::{CostParams, GridGraph, Point2};
///
/// # fn main() -> Result<(), fastgr_grid::GridError> {
/// let mut g = GridGraph::new(8, 8, 4, CostParams::default())?;
/// g.fill_capacity(4.0);
///
/// // Horizontal run on M1 (horizontal layer): finite cost.
/// let c = g.wire_run_cost(1, Point2::new(0, 0), Point2::new(5, 0));
/// assert!(c.is_finite());
///
/// // A vertical run on a horizontal layer is not a legal pattern leg.
/// let c = g.wire_run_cost(1, Point2::new(0, 0), Point2::new(0, 5));
/// assert!(c.is_infinite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GridGraph {
    width: u16,
    height: u16,
    layers: Vec<LayerInfo>,
    params: CostParams,
    planes: Vec<Plane>,
    /// First dirty-bitset bit of each plane's wire edges (prefix sums of
    /// plane sizes, pin layer included for uniform indexing).
    edge_offsets: Vec<usize>,
    /// Via demand indexed `[boundary * w * h + y * w + x]` where `boundary`
    /// is the lower layer of the hop (0..layers-1).
    via_demand: Vec<AtomicU64>,
    dirty: DirtyTracker,
    /// Dirty bits over `via_demand` cells, same indexing, consumed by the
    /// [`crate::CostProber`] to rebuild only the via columns whose demand
    /// changed since the last [`GridGraph::clear_dirty`].
    via_dirty: DirtyTracker,
}

impl GridGraph {
    /// Creates a grid with `layers` metal layers, all wire capacities zero.
    ///
    /// Layer directions alternate with M1 horizontal
    /// ([`Direction::of_layer`]).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidDimensions`] when `width < 2`,
    /// `height < 2` or `layers < 2`.
    pub fn new(width: u16, height: u16, layers: u8, params: CostParams) -> Result<Self, GridError> {
        if width < 2 || height < 2 || layers < 2 {
            return Err(GridError::InvalidDimensions {
                width,
                height,
                layers,
            });
        }
        let infos: Vec<LayerInfo> = (0..layers).map(|l| LayerInfo::new(l, 0.0)).collect();
        let mut edge_offsets = Vec::with_capacity(infos.len());
        let mut total_edges = 0usize;
        let planes = infos
            .iter()
            .map(|info| {
                let n = match info.direction {
                    Direction::Horizontal => (width as usize - 1) * height as usize,
                    Direction::Vertical => width as usize * (height as usize - 1),
                };
                edge_offsets.push(total_edges);
                total_edges += n;
                Plane {
                    capacity: vec![0.0; n],
                    demand: zeroed_atomics(n),
                    history: vec![0.0; n],
                }
            })
            .collect();
        let via_cells = (layers as usize - 1) * width as usize * height as usize;
        let via_demand = zeroed_atomics(via_cells);
        Ok(Self {
            width,
            height,
            layers: infos,
            params,
            planes,
            edge_offsets,
            via_demand,
            dirty: DirtyTracker::new(total_edges),
            via_dirty: DirtyTracker::new(via_cells),
        })
    }

    /// Grid width in G-cells.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in G-cells.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of metal layers (including the unroutable pin layer 0).
    pub fn num_layers(&self) -> u8 {
        self.layers.len() as u8
    }

    /// Static description of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: u8) -> &LayerInfo {
        &self.layers[l as usize]
    }

    /// The cost-model parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Whether `p` lies on the grid.
    pub fn contains(&self, p: Point2) -> bool {
        p.x < self.width && p.y < self.height
    }

    /// The full grid extent as a [`Rect`].
    pub fn extent(&self) -> Rect {
        Rect::new(
            Point2::new(0, 0),
            Point2::new(self.width - 1, self.height - 1),
        )
    }

    /// Sets every wire edge on every *routable* layer (1..) to `capacity`.
    pub fn fill_capacity(&mut self, capacity: f64) {
        for (l, plane) in self.planes.iter_mut().enumerate() {
            if l == 0 {
                continue;
            }
            plane.capacity.fill(capacity);
            self.layers[l].default_capacity = capacity;
        }
    }

    /// Sets every wire edge of layer `l` to `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn set_layer_capacity(&mut self, l: u8, capacity: f64) {
        self.planes[l as usize].capacity.fill(capacity);
        self.layers[l as usize].default_capacity = capacity;
    }

    /// Scales the capacity of all wire edges of layer `l` whose *lower*
    /// endpoint lies in `region` — used to model blockages/macros.
    pub fn scale_region_capacity(&mut self, l: u8, region: Rect, factor: f64) {
        let dir = self.layers[l as usize].direction;
        let (w, h) = (self.width, self.height);
        let plane = &mut self.planes[l as usize];
        for y in region.lo.y..=region.hi.y.min(h - 1) {
            for x in region.lo.x..=region.hi.x.min(w - 1) {
                if let Some(idx) = Self::edge_index_raw(dir, w, h, Point2::new(x, y)) {
                    plane.capacity[idx] *= factor;
                }
            }
        }
    }

    /// Index of the wire edge whose lower endpoint is `p`, if it exists.
    fn edge_index_raw(dir: Direction, w: u16, h: u16, p: Point2) -> Option<usize> {
        match dir {
            Direction::Horizontal => {
                (p.x + 1 < w && p.y < h).then(|| p.y as usize * (w as usize - 1) + p.x as usize)
            }
            Direction::Vertical => {
                (p.y + 1 < h && p.x < w).then(|| p.x as usize * (h as usize - 1) + p.y as usize)
            }
        }
    }

    fn edge_index(&self, l: u8, p: Point2) -> Option<usize> {
        Self::edge_index_raw(
            self.layers[l as usize].direction,
            self.width,
            self.height,
            p,
        )
    }

    /// Capacity of the wire edge on layer `l` leaving `p` in the preferred
    /// direction, or `None` if no such edge exists.
    pub fn wire_capacity(&self, l: u8, p: Point2) -> Option<f64> {
        self.edge_index(l, p)
            .map(|i| self.planes[l as usize].capacity[i])
    }

    /// Demand of the wire edge on layer `l` leaving `p` in the preferred
    /// direction, or `None` if no such edge exists.
    pub fn wire_demand(&self, l: u8, p: Point2) -> Option<f64> {
        self.edge_index(l, p)
            .map(|i| self.planes[l as usize].demand_at(i))
    }

    /// Via demand through the boundary between layers `l` and `l + 1` at
    /// G-cell `p`, or `None` when out of range.
    pub fn via_demand(&self, l: u8, p: Point2) -> Option<f64> {
        self.via_index(l, p)
            .map(|i| fixed_to_demand(self.via_demand[i].load(Ordering::Relaxed)))
    }

    fn via_index(&self, lower: u8, p: Point2) -> Option<usize> {
        ((lower as usize) < self.layers.len() - 1 && self.contains(p)).then(|| {
            lower as usize * self.width as usize * self.height as usize
                + p.y as usize * self.width as usize
                + p.x as usize
        })
    }

    /// Cost of the single wire edge on layer `l` leaving `p` in the layer's
    /// preferred direction (`cw` of the paper for one unit edge), including
    /// any accumulated history cost.
    ///
    /// Returns `f64::INFINITY` when the edge does not exist.
    pub fn wire_edge_cost(&self, l: u8, p: Point2) -> f64 {
        match self.edge_index(l, p) {
            Some(i) => {
                let plane = &self.planes[l as usize];
                self.params
                    .wire_edge_cost(plane.demand_at(i), plane.capacity[i])
                    + plane.history[i]
            }
            None => f64::INFINITY,
        }
    }

    /// Accumulated history cost of the wire edge leaving `p` on layer `l`.
    pub fn wire_history(&self, l: u8, p: Point2) -> Option<f64> {
        self.edge_index(l, p)
            .map(|i| self.planes[l as usize].history[i])
    }

    /// Adds `increment` history cost to every currently overflowing wire
    /// edge (one negotiation round). Returns the number of edges penalised.
    pub fn add_history_on_overflow(&mut self, increment: f64) -> usize {
        let mut penalised = 0;
        for plane in self.planes.iter_mut().skip(1) {
            for i in 0..plane.demand.len() {
                if fixed_to_demand(*plane.demand[i].get_mut()) > plane.capacity[i] {
                    plane.history[i] += increment;
                    penalised += 1;
                }
            }
        }
        penalised
    }

    /// Clears all accumulated history cost.
    pub fn clear_history(&mut self) {
        for plane in &mut self.planes {
            plane.history.fill(0.0);
        }
    }

    /// Cost of the via edge between layers `l` and `l + 1` at `p`.
    ///
    /// Returns `f64::INFINITY` when out of range.
    pub fn via_edge_cost(&self, l: u8, p: Point2) -> f64 {
        match self.via_index(l, p) {
            Some(i) => self
                .params
                .via_edge_cost(fixed_to_demand(self.via_demand[i].load(Ordering::Relaxed))),
            None => f64::INFINITY,
        }
    }

    /// Q44.20 quantised cost of the wire edge at flat plane index `i` on
    /// layer `l` (congestion model + history, quantised per edge). Used by
    /// the prefix-sum [`crate::CostProber`] and the quantised reference
    /// walks below; keeping a single quantisation site guarantees the two
    /// agree bit-for-bit.
    pub(crate) fn wire_edge_cost_fixed_at(&self, l: usize, i: usize) -> u64 {
        let plane = &self.planes[l];
        cost_to_fixed(
            self.params
                .wire_edge_cost(plane.demand_at(i), plane.capacity[i])
                + plane.history[i],
        )
    }

    /// Q44.20 quantised cost of the via hop between layers `l` and `l + 1`
    /// at flat G-cell index `pos` (`y * width + x`).
    pub(crate) fn via_edge_cost_fixed_at(&self, l: usize, pos: usize) -> u64 {
        let i = l * self.width as usize * self.height as usize + pos;
        cost_to_fixed(
            self.params
                .via_edge_cost(fixed_to_demand(self.via_demand[i].load(Ordering::Relaxed))),
        )
    }

    /// First dirty-bitset bit of layer `l`'s wire edges.
    pub(crate) fn edge_offset(&self, l: usize) -> usize {
        self.edge_offsets[l]
    }

    /// Raw words of the wire-edge dirty bitset (for dirty harvesting).
    pub(crate) fn dirty_words(&self) -> &[AtomicU64] {
        &self.dirty.words
    }

    /// Raw words of the via-cell dirty bitset (for dirty harvesting).
    pub(crate) fn via_dirty_words(&self) -> &[AtomicU64] {
        &self.via_dirty.words
    }

    /// Cost `cw(a, b, l)` of a straight run on layer `l` between aligned
    /// G-cells `a` and `b`.
    ///
    /// Returns 0 for `a == b`; returns `f64::INFINITY` when the run does not
    /// follow the layer's preferred direction, leaves the grid, or `l` is
    /// out of range — so the value can be fed to the pattern-routing DP
    /// directly, where illegal candidates simply never win the `min`.
    pub fn wire_run_cost(&self, l: u8, a: Point2, b: Point2) -> f64 {
        if a == b {
            return 0.0;
        }
        if (l as usize) >= self.layers.len() || !self.contains(a) || !self.contains(b) {
            return f64::INFINITY;
        }
        let dir = self.layers[l as usize].direction;
        let run_dir = if a.y == b.y {
            Direction::Horizontal
        } else if a.x == b.x {
            Direction::Vertical
        } else {
            return f64::INFINITY;
        };
        if dir != run_dir {
            return f64::INFINITY;
        }
        let plane = &self.planes[l as usize];
        let mut total = 0.0;
        match dir {
            Direction::Horizontal => {
                let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
                let base = a.y as usize * (self.width as usize - 1);
                for x in x0..x1 {
                    let i = base + x as usize;
                    total += self
                        .params
                        .wire_edge_cost(plane.demand_at(i), plane.capacity[i])
                        + plane.history[i];
                }
            }
            Direction::Vertical => {
                let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
                let base = a.x as usize * (self.height as usize - 1);
                for y in y0..y1 {
                    let i = base + y as usize;
                    total += self
                        .params
                        .wire_edge_cost(plane.demand_at(i), plane.capacity[i])
                        + plane.history[i];
                }
            }
        }
        total
    }

    /// Cost `cv(p, l1, l2)` of a via stack at `p` from layer `l1` to `l2`.
    ///
    /// Returns 0 when `l1 == l2`; `f64::INFINITY` when out of range.
    pub fn via_stack_cost(&self, p: Point2, l1: u8, l2: u8) -> f64 {
        let (lo, hi) = (l1.min(l2), l1.max(l2));
        if hi as usize >= self.layers.len() || !self.contains(p) {
            return f64::INFINITY;
        }
        let mut total = 0.0;
        for l in lo..hi {
            total += self.via_edge_cost(l, p);
        }
        total
    }

    /// [`GridGraph::wire_run_cost`] in the Q44.20 quantised cost domain:
    /// each unit edge is quantised with `cost_to_fixed` *before* summation
    /// and the integer total converted back to `f64` (exact below 2^53).
    ///
    /// This is the naive reference the prefix-sum [`crate::CostProber`]
    /// matches bit-for-bit, and the arithmetic the pattern DP uses in its
    /// direct (prober-off) mode so probed and direct routing agree exactly.
    pub fn wire_run_cost_fixed(&self, l: u8, a: Point2, b: Point2) -> f64 {
        if a == b {
            return 0.0;
        }
        if (l as usize) >= self.layers.len() || !self.contains(a) || !self.contains(b) {
            return f64::INFINITY;
        }
        let dir = self.layers[l as usize].direction;
        let run_dir = if a.y == b.y {
            Direction::Horizontal
        } else if a.x == b.x {
            Direction::Vertical
        } else {
            return f64::INFINITY;
        };
        if dir != run_dir {
            return f64::INFINITY;
        }
        let mut total = 0u64;
        match dir {
            Direction::Horizontal => {
                let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
                let base = a.y as usize * (self.width as usize - 1);
                for x in x0..x1 {
                    total += self.wire_edge_cost_fixed_at(l as usize, base + x as usize);
                }
            }
            Direction::Vertical => {
                let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
                let base = a.x as usize * (self.height as usize - 1);
                for y in y0..y1 {
                    total += self.wire_edge_cost_fixed_at(l as usize, base + y as usize);
                }
            }
        }
        fixed_cost_to_f64(total)
    }

    /// [`GridGraph::via_stack_cost`] in the Q44.20 quantised cost domain;
    /// the naive reference for [`crate::CostProber::via_stack_cost`].
    pub fn via_stack_cost_fixed(&self, p: Point2, l1: u8, l2: u8) -> f64 {
        let (lo, hi) = (l1.min(l2), l1.max(l2));
        if hi as usize >= self.layers.len() || !self.contains(p) {
            return f64::INFINITY;
        }
        let pos = p.y as usize * self.width as usize + p.x as usize;
        let mut total = 0u64;
        for l in lo..hi {
            total += self.via_edge_cost_fixed_at(l as usize, pos);
        }
        fixed_cost_to_f64(total)
    }

    /// Adds `amount` demand (may be negative) to every unit wire edge of the
    /// straight run `a -> b` on layer `l`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-bounds coordinates and wrong-direction runs.
    pub fn add_wire_demand(
        &mut self,
        l: u8,
        a: Point2,
        b: Point2,
        amount: f64,
    ) -> Result<(), GridError> {
        self.add_wire_demand_shared(l, a, b, amount)
    }

    fn add_wire_demand_shared(
        &self,
        l: u8,
        a: Point2,
        b: Point2,
        amount: f64,
    ) -> Result<(), GridError> {
        if a == b {
            return Ok(());
        }
        if (l as usize) >= self.layers.len() || !self.contains(a) || !self.contains(b) {
            return Err(GridError::OutOfBounds {
                point: if self.contains(a) { b } else { a },
                layer: Some(l),
            });
        }
        let seg = crate::route::Segment::new(l, a, b);
        let dir = self.layers[l as usize].direction;
        let seg_dir = if seg.is_horizontal() {
            Direction::Horizontal
        } else {
            Direction::Vertical
        };
        if dir != seg_dir {
            return Err(GridError::WrongDirection { segment: seg });
        }
        let fx = demand_to_fixed(amount) as u64;
        let plane = &self.planes[l as usize];
        let offset = self.edge_offsets[l as usize];
        for (from, _to) in seg.unit_edges() {
            let idx = self.edge_index(l, from).expect("validated in-bounds");
            plane.demand[idx].fetch_add(fx, Ordering::Relaxed);
            self.dirty.mark(offset + idx, from);
        }
        Ok(())
    }

    /// Adds `amount` via demand for every hop of the stack `l1..l2` at `p`.
    ///
    /// # Errors
    ///
    /// Rejects out-of-bounds coordinates and inverted/out-of-range spans.
    pub fn add_via_demand(
        &mut self,
        p: Point2,
        l1: u8,
        l2: u8,
        amount: f64,
    ) -> Result<(), GridError> {
        self.add_via_demand_shared(p, l1, l2, amount)
    }

    fn add_via_demand_shared(
        &self,
        p: Point2,
        l1: u8,
        l2: u8,
        amount: f64,
    ) -> Result<(), GridError> {
        let (lo, hi) = (l1.min(l2), l1.max(l2));
        if !self.contains(p) {
            return Err(GridError::OutOfBounds {
                point: p,
                layer: Some(lo),
            });
        }
        if hi as usize >= self.layers.len() {
            return Err(GridError::InvalidViaSpan { lo, hi });
        }
        let fx = demand_to_fixed(amount) as u64;
        for l in lo..hi {
            let i = self.via_index(l, p).expect("validated in-bounds");
            self.via_demand[i].fetch_add(fx, Ordering::Relaxed);
            self.via_dirty.mark(i, p);
        }
        Ok(())
    }

    /// Commits the demand of `route` (adds 1 track to every covered edge).
    ///
    /// # Errors
    ///
    /// Fails without partial effects being rolled back if the route contains
    /// out-of-grid or wrong-direction geometry; validate routes first when
    /// that matters (router-produced routes are always valid).
    pub fn commit(&mut self, route: &Route) -> Result<(), GridError> {
        self.apply_shared(route, 1.0)
    }

    /// Removes the demand of a previously committed `route`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GridGraph::commit`].
    pub fn uncommit(&mut self, route: &Route) -> Result<(), GridError> {
        self.apply_shared(route, -1.0)
    }

    /// Commits the demand of `route` through a shared reference.
    ///
    /// Every covered edge gains one track of demand via a relaxed
    /// `fetch_add` on its fixed-point cell; tasks whose routes touch
    /// disjoint edges never contend, and overlapping updates are exact
    /// commutative integer additions, so the final demand state is
    /// bit-identical to any sequential ordering of the same operations.
    ///
    /// **Benign-race contract**: a concurrent *reader* (a maze search
    /// costing edges inside its window margin) may observe another task's
    /// route half-committed. This is the congestion-staleness approximation
    /// the paper makes for bounding-box-disjoint tasks — the task-graph
    /// schedule serializes tasks whose inflated boxes overlap, and margin
    /// reads outside the box only perturb costs, never correctness.
    /// Aggregate accounting ([`GridGraph::report`],
    /// [`GridGraph::route_has_overflow`], history updates) must only run
    /// between iterations, after worker threads have been joined.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GridGraph::commit`].
    pub fn commit_atomic(&self, route: &Route) -> Result<(), GridError> {
        self.apply_shared(route, 1.0)
    }

    /// Removes the demand of a previously committed `route` through a
    /// shared reference; the exact inverse of [`GridGraph::commit_atomic`],
    /// with the same contract.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GridGraph::commit`].
    pub fn uncommit_atomic(&self, route: &Route) -> Result<(), GridError> {
        self.apply_shared(route, -1.0)
    }

    fn apply_shared(&self, route: &Route, amount: f64) -> Result<(), GridError> {
        for s in route.segments() {
            self.add_wire_demand_shared(s.layer, s.from, s.to, amount)?;
        }
        for v in route.vias() {
            self.add_via_demand_shared(v.at, v.lo, v.hi, amount)?;
        }
        Ok(())
    }

    /// Number of distinct wire edges whose demand changed since the last
    /// [`GridGraph::clear_dirty`] (vias are excluded: they have no capacity
    /// and can never overflow).
    pub fn dirty_edges(&self) -> u64 {
        self.dirty.count.load(Ordering::Relaxed)
    }

    /// Resets the dirty-edge tracker (wire *and* via bits); subsequent
    /// demand updates start a new dirty set. Requires `&mut self` and
    /// therefore quiescence.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
        self.via_dirty.clear();
    }

    /// Whether any unit wire edge covered by `route` is in the current
    /// dirty set — i.e. whether the route's overflow status may have
    /// changed since [`GridGraph::clear_dirty`].
    ///
    /// A bounding-rectangle prefilter rejects routes far from the dirtied
    /// region before any per-edge bit tests run. Conservative: may return
    /// `true` for a route whose overflow status is unchanged, never `false`
    /// for one whose status changed (every demand update marks its edge).
    pub fn route_touches_dirty(&self, route: &Route) -> bool {
        let Some(rect) = self.dirty.rect() else {
            return false;
        };
        for s in route.segments() {
            if !Rect::new(s.from, s.to).intersects(&rect) {
                continue;
            }
            let offset = self.edge_offsets[s.layer as usize];
            for (from, _to) in s.unit_edges() {
                if let Some(i) = self.edge_index(s.layer, from) {
                    if self.dirty.is_set(offset + i) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Evaluates the current cost of `route` against the present demand
    /// state (counting the route's own demand if committed).
    pub fn route_cost(&self, route: &Route) -> f64 {
        let mut total = 0.0;
        for s in route.segments() {
            total += self.wire_run_cost(s.layer, s.from, s.to);
        }
        for v in route.vias() {
            total += self.via_stack_cost(v.at, v.lo, v.hi);
        }
        total
    }

    /// Whether any unit wire edge covered by `route` is overflowing
    /// (demand > capacity) in the current state.
    pub fn route_has_overflow(&self, route: &Route) -> bool {
        for s in route.segments() {
            let l = s.layer as usize;
            for (from, _) in s.unit_edges() {
                if let Some(i) = self.edge_index(s.layer, from) {
                    if self.planes[l].demand_at(i) > self.planes[l].capacity[i] {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Aggregated congestion statistics over the whole grid.
    pub fn report(&self) -> CongestionReport {
        let mut r = CongestionReport::default();
        for plane in self.planes.iter().skip(1) {
            for (d, &c) in plane.demand.iter().zip(&plane.capacity) {
                let d = fixed_to_demand(d.load(Ordering::Relaxed));
                r.total_wire_demand += d;
                r.total_wire_capacity += c;
                if d > c {
                    r.overflow += d - c;
                    r.overflowing_edges += 1;
                }
                if c > 0.0 {
                    r.max_utilization = r.max_utilization.max(d / c);
                }
            }
        }
        r.total_via_demand = self
            .via_demand
            .iter()
            .map(|d| fixed_to_demand(d.load(Ordering::Relaxed)))
            .sum();
        r
    }

    /// Per-G-cell 2-D congestion heat: for every cell the maximum
    /// utilisation (demand/capacity) over the wire edges leaving it on any
    /// routable layer. Row-major `height x width`.
    pub fn congestion_heatmap(&self) -> Vec<f64> {
        let mut heat = vec![0.0f64; self.width as usize * self.height as usize];
        for (l, plane) in self.planes.iter().enumerate().skip(1) {
            for y in 0..self.height {
                for x in 0..self.width {
                    let p = Point2::new(x, y);
                    if let Some(i) =
                        Self::edge_index_raw(self.layers[l].direction, self.width, self.height, p)
                    {
                        if plane.capacity[i] > 0.0 {
                            let u = plane.demand_at(i) / plane.capacity[i];
                            let cell = y as usize * self.width as usize + x as usize;
                            if u > heat[cell] {
                                heat[cell] = u;
                            }
                        }
                    }
                }
            }
        }
        heat
    }
}

impl Clone for GridGraph {
    fn clone(&self) -> Self {
        Self {
            width: self.width,
            height: self.height,
            layers: self.layers.clone(),
            params: self.params,
            planes: self.planes.clone(),
            edge_offsets: self.edge_offsets.clone(),
            via_demand: self
                .via_demand
                .iter()
                .map(|d| AtomicU64::new(d.load(Ordering::Relaxed)))
                .collect(),
            dirty: self.dirty.clone(),
            via_dirty: self.via_dirty.clone(),
        }
    }
}

impl fmt::Display for GridGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid {}x{} with {} layers",
            self.width,
            self.height,
            self.layers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Segment, Via};

    fn graph() -> GridGraph {
        let mut g = GridGraph::new(10, 10, 5, CostParams::default()).expect("valid dims");
        g.fill_capacity(4.0);
        g
    }

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(matches!(
            GridGraph::new(1, 10, 5, CostParams::default()),
            Err(GridError::InvalidDimensions { .. })
        ));
        assert!(matches!(
            GridGraph::new(10, 10, 1, CostParams::default()),
            Err(GridError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn pin_layer_keeps_zero_capacity() {
        let g = graph();
        assert_eq!(g.wire_capacity(0, Point2::new(3, 3)), Some(0.0));
        assert_eq!(g.wire_capacity(1, Point2::new(3, 3)), Some(4.0));
    }

    #[test]
    fn run_cost_respects_preferred_direction() {
        let g = graph();
        // M1 horizontal, M2 vertical.
        assert!(g
            .wire_run_cost(1, Point2::new(0, 0), Point2::new(4, 0))
            .is_finite());
        assert!(g
            .wire_run_cost(1, Point2::new(0, 0), Point2::new(0, 4))
            .is_infinite());
        assert!(g
            .wire_run_cost(2, Point2::new(0, 0), Point2::new(0, 4))
            .is_finite());
        assert!(g
            .wire_run_cost(2, Point2::new(0, 0), Point2::new(4, 0))
            .is_infinite());
        // Diagonal runs are never legal.
        assert!(g
            .wire_run_cost(1, Point2::new(0, 0), Point2::new(3, 3))
            .is_infinite());
        // Zero-length runs are free on any layer.
        assert_eq!(
            g.wire_run_cost(2, Point2::new(5, 5), Point2::new(5, 5)),
            0.0
        );
    }

    #[test]
    fn run_cost_scales_with_length_when_uncongested() {
        let g = graph();
        let c1 = g.wire_run_cost(1, Point2::new(0, 0), Point2::new(1, 0));
        let c5 = g.wire_run_cost(1, Point2::new(0, 0), Point2::new(5, 0));
        assert!((c5 - 5.0 * c1).abs() < 1e-9);
    }

    #[test]
    fn commit_uncommit_is_reversible() {
        let mut g = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(1, 2), Point2::new(6, 2)));
        route.push_via(Via::new(Point2::new(6, 2), 1, 2));
        route.push_segment(Segment::new(2, Point2::new(6, 2), Point2::new(6, 7)));

        let before = g.report();
        g.commit(&route).expect("valid route");
        let mid = g.report();
        assert_eq!(mid.total_wire_demand, before.total_wire_demand + 10.0);
        assert_eq!(mid.total_via_demand, before.total_via_demand + 1.0);
        g.uncommit(&route).expect("valid route");
        let after = g.report();
        assert_eq!(after.total_wire_demand, before.total_wire_demand);
        assert_eq!(after.total_via_demand, before.total_via_demand);
    }

    #[test]
    fn atomic_commit_matches_exclusive_commit() {
        let mut exclusive = graph();
        let shared = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(1, 2), Point2::new(6, 2)));
        route.push_via(Via::new(Point2::new(6, 2), 1, 2));
        route.push_segment(Segment::new(2, Point2::new(6, 2), Point2::new(6, 7)));

        exclusive.commit(&route).expect("valid route");
        shared.commit_atomic(&route).expect("valid route");
        assert_eq!(
            exclusive.report().total_wire_demand,
            shared.report().total_wire_demand
        );
        assert_eq!(
            exclusive.wire_demand(1, Point2::new(1, 2)),
            shared.wire_demand(1, Point2::new(1, 2))
        );

        shared.uncommit_atomic(&route).expect("valid route");
        assert_eq!(shared.report().total_wire_demand, 0.0);
        assert_eq!(shared.report().total_via_demand, 0.0);
    }

    #[test]
    fn fixed_point_round_trips_track_amounts() {
        for amount in [1.0, -1.0, 0.5, 2.25, -3.75, 1024.0] {
            let fx = demand_to_fixed(amount);
            assert_eq!(fixed_to_demand(fx as u64), amount);
        }
        // Negative totals round-trip through the two's-complement store.
        let cell = AtomicU64::new(0);
        cell.fetch_add(demand_to_fixed(-2.5) as u64, Ordering::Relaxed);
        cell.fetch_add(demand_to_fixed(1.0) as u64, Ordering::Relaxed);
        assert_eq!(fixed_to_demand(cell.load(Ordering::Relaxed)), -1.5);
    }

    #[test]
    fn dirty_tracking_follows_demand_updates() {
        let mut g = graph();
        assert_eq!(g.dirty_edges(), 0);

        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(2, 2), Point2::new(5, 2)));
        g.commit(&route).expect("valid");
        assert_eq!(g.dirty_edges(), 3);
        assert!(g.route_touches_dirty(&route));

        // Re-committing the same edges does not grow the dirty count.
        g.commit(&route).expect("valid");
        assert_eq!(g.dirty_edges(), 3);

        // A distant route is rejected by the rect prefilter.
        let mut far = Route::new();
        far.push_segment(Segment::new(2, Point2::new(9, 6), Point2::new(9, 9)));
        assert!(!g.route_touches_dirty(&far));

        // A route overlapping the dirty rect but covering only clean edges.
        let mut near = Route::new();
        near.push_segment(Segment::new(2, Point2::new(3, 1), Point2::new(3, 4)));
        assert!(!g.route_touches_dirty(&near));

        g.clear_dirty();
        assert_eq!(g.dirty_edges(), 0);
        assert!(!g.route_touches_dirty(&route));

        // Uncommits dirty their edges too.
        g.uncommit(&route).expect("valid");
        assert_eq!(g.dirty_edges(), 3);
        assert!(g.route_touches_dirty(&route));
    }

    #[test]
    fn clone_preserves_demand_and_dirty_state() {
        let mut g = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(4, 0)));
        g.commit(&route).expect("valid");
        let copy = g.clone();
        assert_eq!(copy.wire_demand(1, Point2::new(1, 0)), Some(1.0));
        assert_eq!(copy.dirty_edges(), g.dirty_edges());
        assert!(copy.route_touches_dirty(&route));
        // The copy's demand cells are independent of the original's.
        copy.commit_atomic(&route).expect("valid");
        assert_eq!(g.wire_demand(1, Point2::new(1, 0)), Some(1.0));
        assert_eq!(copy.wire_demand(1, Point2::new(1, 0)), Some(2.0));
    }

    #[test]
    fn committing_raises_cost() {
        let mut g = graph();
        let from = Point2::new(0, 5);
        let to = Point2::new(7, 5);
        let base = g.wire_run_cost(1, from, to);
        let mut route = Route::new();
        route.push_segment(Segment::new(1, from, to));
        for _ in 0..4 {
            g.commit(&route).expect("valid");
        }
        assert!(g.wire_run_cost(1, from, to) > base);
    }

    #[test]
    fn overflow_detection_tracks_capacity() {
        let mut g = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(3, 0)));
        for _ in 0..4 {
            g.commit(&route).expect("valid");
            assert!(!g.route_has_overflow(&route));
        }
        g.commit(&route).expect("valid");
        assert!(g.route_has_overflow(&route));
        let r = g.report();
        assert_eq!(r.overflowing_edges, 3);
        assert!((r.overflow - 3.0).abs() < 1e-9);
        assert!((r.shorts() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_direction_commit_is_rejected() {
        let mut g = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(0, 3)));
        assert!(matches!(
            g.commit(&route),
            Err(GridError::WrongDirection { .. })
        ));
    }

    #[test]
    fn out_of_bounds_demand_is_rejected() {
        let mut g = graph();
        assert!(g
            .add_wire_demand(1, Point2::new(0, 0), Point2::new(50, 0), 1.0)
            .is_err());
        assert!(g.add_via_demand(Point2::new(50, 0), 1, 2, 1.0).is_err());
        assert!(matches!(
            g.add_via_demand(Point2::new(1, 1), 1, 9, 1.0),
            Err(GridError::InvalidViaSpan { .. })
        ));
    }

    #[test]
    fn via_stack_cost_sums_hops() {
        let g = graph();
        let p = Point2::new(4, 4);
        let one = g.via_stack_cost(p, 1, 2);
        let three = g.via_stack_cost(p, 1, 4);
        assert!((three - 3.0 * one).abs() < 1e-9);
        assert_eq!(g.via_stack_cost(p, 2, 2), 0.0);
        assert!(g.via_stack_cost(p, 1, 9).is_infinite());
    }

    #[test]
    fn region_blockage_raises_cost() {
        let mut g = graph();
        let free = g.wire_run_cost(1, Point2::new(0, 8), Point2::new(4, 8));
        g.scale_region_capacity(1, Rect::new(Point2::new(0, 0), Point2::new(5, 5)), 0.0);
        let blocked = g.wire_run_cost(1, Point2::new(0, 3), Point2::new(4, 3));
        assert!(blocked > free * 10.0);
    }

    #[test]
    fn heatmap_reflects_commits() {
        let mut g = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(2, 2), Point2::new(6, 2)));
        g.commit(&route).expect("valid");
        g.commit(&route).expect("valid");
        let heat = g.congestion_heatmap();
        let idx = 2 * 10 + 3;
        assert!((heat[idx] - 0.5).abs() < 1e-9);
        assert_eq!(heat[0], 0.0);
    }

    #[test]
    fn history_raises_cost_only_on_overflowed_edges() {
        let mut g = graph();
        let quiet = g.wire_edge_cost(1, Point2::new(0, 0));
        // Overflow one edge.
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(1, 0)));
        for _ in 0..5 {
            g.commit(&route).expect("valid");
        }
        let penalised = g.add_history_on_overflow(10.0);
        assert_eq!(penalised, 1);
        assert_eq!(g.wire_history(1, Point2::new(0, 0)), Some(10.0));
        assert_eq!(g.wire_history(1, Point2::new(5, 5)), Some(0.0));
        // The history persists even after the demand is removed.
        for _ in 0..5 {
            g.uncommit(&route).expect("valid");
        }
        let haunted = g.wire_edge_cost(1, Point2::new(0, 0));
        assert!((haunted - (quiet + 10.0)).abs() < 1e-9);
        g.clear_history();
        assert!((g.wire_edge_cost(1, Point2::new(0, 0)) - quiet).abs() < 1e-9);
    }

    #[test]
    fn history_accumulates_over_rounds() {
        let mut g = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(2, Point2::new(3, 0), Point2::new(3, 4)));
        for _ in 0..5 {
            g.commit(&route).expect("valid");
        }
        g.add_history_on_overflow(1.5);
        g.add_history_on_overflow(1.5);
        assert_eq!(g.wire_history(2, Point2::new(3, 1)), Some(3.0));
    }

    #[test]
    fn route_cost_matches_manual_sum() {
        let g = graph();
        let mut route = Route::new();
        route.push_segment(Segment::new(1, Point2::new(0, 0), Point2::new(4, 0)));
        route.push_via(Via::new(Point2::new(4, 0), 1, 2));
        route.push_segment(Segment::new(2, Point2::new(4, 0), Point2::new(4, 3)));
        let expected = g.wire_run_cost(1, Point2::new(0, 0), Point2::new(4, 0))
            + g.via_stack_cost(Point2::new(4, 0), 1, 2)
            + g.wire_run_cost(2, Point2::new(4, 0), Point2::new(4, 3));
        assert!((g.route_cost(&route) - expected).abs() < 1e-9);
    }
}
