//! The routing topology tree and its bottom-up DFS ordering.

use std::fmt;

use fastgr_grid::Point2;

/// One node of a [`RouteTree`]: a pin or an inserted Steiner point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// 2-D G-cell the node occupies.
    pub position: Point2,
    /// Parent node index; `None` for the root.
    pub parent: Option<u32>,
    /// Child node indices.
    pub children: Vec<u32>,
    /// Whether the node carries a pin (Steiner points do not).
    pub is_pin: bool,
}

/// One two-pin net of the decomposition: the tree edge from a `child` node
/// up to its `parent` node.
///
/// In the paper's notation the edge is the two-pin net `Ps -> Pt` with
/// `Ps` = child position, `Pt` = parent position; the *children* of this
/// two-pin net are the edges from the child node's own children into the
/// child node (their DP results feed the bottom-children cost, Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeEdge {
    /// Child node index (`Ps` side).
    pub child: u32,
    /// Parent node index (`Pt` side).
    pub parent: u32,
}

/// A rooted rectilinear routing tree for one net.
///
/// Node 0 is always the root. Every non-root node has exactly one parent,
/// so edges are identified by their child node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTree {
    nodes: Vec<TreeNode>,
}

impl RouteTree {
    /// Builds a tree from parent links.
    ///
    /// `parents[i]` is the parent of node `i` (`parents[0]` is ignored; node
    /// 0 is the root). `is_pin[i]` marks pin nodes.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent, a parent index is out of
    /// range, or the links contain a cycle (i.e. they do not form a tree
    /// rooted at node 0).
    pub fn from_parents(positions: Vec<Point2>, parents: Vec<u32>, is_pin: Vec<bool>) -> Self {
        assert_eq!(positions.len(), parents.len());
        assert_eq!(positions.len(), is_pin.len());
        assert!(!positions.is_empty(), "a tree needs at least one node");
        let n = positions.len();
        let mut nodes: Vec<TreeNode> = positions
            .into_iter()
            .zip(is_pin)
            .map(|(position, is_pin)| TreeNode {
                position,
                parent: None,
                children: Vec::new(),
                is_pin,
            })
            .collect();
        for i in 1..n {
            let p = parents[i] as usize;
            assert!(p < n, "parent index out of range");
            nodes[i].parent = Some(parents[i]);
            nodes[p].children.push(i as u32);
        }
        let tree = Self { nodes };
        // Reject cycles / forests: every node must reach the root.
        let order = tree.dfs_preorder();
        assert_eq!(
            order.len(),
            n,
            "parent links do not form a tree rooted at node 0"
        );
        tree
    }

    /// A single-node tree (a net whose pins share one G-cell).
    pub fn singleton(position: Point2) -> Self {
        Self {
            nodes: vec![TreeNode {
                position,
                parent: None,
                children: Vec::new(),
                is_pin: true,
            }],
        }
    }

    /// The nodes; node 0 is the root.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// One node by index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: u32) -> &TreeNode {
        &self.nodes[i as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Root node index (always 0).
    pub fn root(&self) -> u32 {
        0
    }

    /// Total rectilinear length of all tree edges (lower bound on routed
    /// wirelength).
    pub fn wirelength(&self) -> u64 {
        self.nodes
            .iter()
            .filter_map(|n| {
                n.parent.map(|p| {
                    n.position
                        .manhattan_distance(self.nodes[p as usize].position)
                        as u64
                })
            })
            .sum()
    }

    /// DFS preorder over node indices starting at the root, children in
    /// index order (deterministic).
    fn dfs_preorder(&self) -> Vec<u32> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0u32];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(i) = stack.pop() {
            if seen[i as usize] {
                continue;
            }
            seen[i as usize] = true;
            order.push(i);
            // Push children reversed so they pop in ascending order.
            for &c in self.nodes[i as usize].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// The two-pin nets in **bottom-up routing order** (Section II-D): the
    /// reverse of the DFS visit sequence, so every edge appears *after* all
    /// edges in its child subtree — exactly the order the pattern-routing
    /// dynamic program needs.
    ///
    /// # Example
    ///
    /// ```
    /// use fastgr_grid::Point2;
    /// use fastgr_steiner::RouteTree;
    ///
    /// // A path root(0) - 1 - 2: the deepest edge must come first.
    /// let tree = RouteTree::from_parents(
    ///     vec![Point2::new(0, 0), Point2::new(1, 0), Point2::new(2, 0)],
    ///     vec![0, 0, 1],
    ///     vec![true, true, true],
    /// );
    /// let edges = tree.ordered_edges();
    /// assert_eq!(edges[0].child, 2);
    /// assert_eq!(edges[1].child, 1);
    /// ```
    pub fn ordered_edges(&self) -> Vec<TreeEdge> {
        let mut out = Vec::new();
        self.ordered_edges_into(&mut Vec::new(), &mut out);
        out
    }

    /// [`RouteTree::ordered_edges`] writing into caller-owned buffers:
    /// `stack` is DFS working space, `out` receives the edges. Both are
    /// cleared first and reuse their capacity, so routing many nets
    /// through the same buffers allocates nothing in steady state.
    /// The edge order is identical to [`RouteTree::ordered_edges`].
    ///
    /// Construction validates that the parent links form a tree, so the
    /// traversal here needs no visited set.
    pub fn ordered_edges_into(&self, stack: &mut Vec<u32>, out: &mut Vec<TreeEdge>) {
        stack.clear();
        out.clear();
        stack.push(0);
        while let Some(i) = stack.pop() {
            if let Some(p) = self.nodes[i as usize].parent {
                out.push(TreeEdge {
                    child: i,
                    parent: p,
                });
            }
            // Push children reversed so they pop in ascending order,
            // matching `dfs_preorder`.
            for &c in self.nodes[i as usize].children.iter().rev() {
                stack.push(c);
            }
        }
        out.reverse();
    }

    /// The child edges of the two-pin net identified by `edge`: the edges
    /// whose parent node is `edge.child` (the `P_s^(i) -> P_s` of Eq. 2).
    pub fn child_edges(&self, edge: TreeEdge) -> Vec<TreeEdge> {
        self.nodes[edge.child as usize]
            .children
            .iter()
            .map(|&c| TreeEdge {
                child: c,
                parent: edge.child,
            })
            .collect()
    }
}

impl fmt::Display for RouteTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "route tree: {} nodes, wl {}",
            self.nodes.len(),
            self.wirelength()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 4 example: a path P6(root) - P5 - P4 - P3 - P2 - P1.
    fn fig4_tree() -> RouteTree {
        let positions = (0..6).map(|i| Point2::new(i as u16, 0)).collect();
        RouteTree::from_parents(positions, vec![0, 0, 1, 2, 3, 4], vec![true; 6])
    }

    #[test]
    fn fig4_ordering_is_leaf_to_root() {
        let tree = fig4_tree();
        let edges = tree.ordered_edges();
        let children: Vec<u32> = edges.iter().map(|e| e.child).collect();
        // e1 is the deepest edge (P1 -> P2), e5 the root edge (P5 -> P6).
        assert_eq!(children, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn child_edges_appear_before_parent_edge() {
        let tree = RouteTree::from_parents(
            vec![
                Point2::new(5, 5),
                Point2::new(3, 5),
                Point2::new(3, 2),
                Point2::new(1, 5),
                Point2::new(7, 7),
            ],
            vec![0, 0, 1, 1, 0],
            vec![true; 5],
        );
        let edges = tree.ordered_edges();
        let pos = |child: u32| {
            edges
                .iter()
                .position(|e| e.child == child)
                .expect("edge exists")
        };
        for e in &edges {
            for c in tree.child_edges(*e) {
                assert!(
                    pos(c.child) < pos(e.child),
                    "child edge must be ordered first"
                );
            }
        }
    }

    #[test]
    fn ordered_edges_into_matches_allocating_variant() {
        let tree = RouteTree::from_parents(
            vec![
                Point2::new(5, 5),
                Point2::new(3, 5),
                Point2::new(3, 2),
                Point2::new(1, 5),
                Point2::new(7, 7),
            ],
            vec![0, 0, 1, 1, 0],
            vec![true; 5],
        );
        let mut stack = vec![99u32; 8]; // stale contents must not matter
        let mut out = Vec::new();
        tree.ordered_edges_into(&mut stack, &mut out);
        assert_eq!(out, tree.ordered_edges());
        // Reuse with a different tree.
        let path = fig4_tree();
        path.ordered_edges_into(&mut stack, &mut out);
        assert_eq!(out, path.ordered_edges());
    }

    #[test]
    fn singleton_has_no_edges() {
        let t = RouteTree::singleton(Point2::new(3, 3));
        assert!(t.ordered_edges().is_empty());
        assert_eq!(t.wirelength(), 0);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn wirelength_sums_edge_lengths() {
        let tree = fig4_tree();
        assert_eq!(tree.wirelength(), 5);
    }

    #[test]
    #[should_panic(expected = "do not form a tree")]
    fn cyclic_links_panic() {
        // 1 -> 2 -> 1 cycle disconnected from the root.
        let _ = RouteTree::from_parents(
            vec![Point2::new(0, 0), Point2::new(1, 0), Point2::new(2, 0)],
            vec![0, 2, 1],
            vec![true; 3],
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_tree_panics() {
        let _ = RouteTree::from_parents(vec![], vec![], vec![]);
    }
}
