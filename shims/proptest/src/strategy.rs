//! The `Strategy` trait and the built-in strategies fastgr uses:
//! integer ranges, tuples, and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Unlike the real proptest this shim has no value trees / shrinking;
/// `sample` directly produces a value.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value (`Just` in the real proptest).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128 % width) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end as u128) - (start as u128) + 1;
                    start + ((rng.next_u64() as u128 % width) as $t)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
