//! Micro-benchmarks of the pattern-routing kernels: the L-shape flow vs
//! the hybrid flow, on two-pin nets of growing size. The absolute host
//! times here are the *sequential scalar* cost — the quantity the paper's
//! GPU kernels divide by.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fastgr_core::{PatternDp, PatternMode, SelectionThresholds};
use fastgr_design::{Net, NetId, Pin};
use fastgr_grid::{CostParams, GridGraph, Point2};
use fastgr_steiner::SteinerBuilder;

fn graph(side: u16, layers: u8) -> GridGraph {
    let mut g = GridGraph::new(side, side, layers, CostParams::default()).expect("valid");
    g.fill_capacity(8.0);
    g
}

fn two_pin_net(span: u16) -> Net {
    Net::new(
        NetId(0),
        "bench",
        vec![
            Pin::new(Point2::new(1, 1), 0),
            Pin::new(Point2::new(span, span / 2), 0),
        ],
    )
}

fn bench_kernels(c: &mut Criterion) {
    let g = graph(128, 10);
    let mut group = c.benchmark_group("pattern_kernels");
    for span in [8u16, 24, 48, 96] {
        let tree = SteinerBuilder::new().build(&two_pin_net(span));
        // Probed: costs are O(1) prefix differences against the prober
        // built once per `PatternDp::new`. Direct: the same quantised
        // cost domain summed edge by edge — the O(span) baseline the
        // prober removes. Identical routes, different work.
        group.bench_with_input(BenchmarkId::new("l_shape", span), &span, |b, _| {
            let dp = PatternDp::new(&g, PatternMode::LShape);
            b.iter(|| black_box(dp.route_net(&tree)));
        });
        group.bench_with_input(BenchmarkId::new("l_shape_direct", span), &span, |b, _| {
            let dp = PatternDp::direct(&g, PatternMode::LShape);
            b.iter(|| black_box(dp.route_net(&tree)));
        });
        group.bench_with_input(BenchmarkId::new("hybrid", span), &span, |b, _| {
            let dp = PatternDp::new(&g, PatternMode::HybridAll);
            b.iter(|| black_box(dp.route_net(&tree)));
        });
        group.bench_with_input(BenchmarkId::new("hybrid_direct", span), &span, |b, _| {
            let dp = PatternDp::direct(&g, PatternMode::HybridAll);
            b.iter(|| black_box(dp.route_net(&tree)));
        });
        group.bench_with_input(BenchmarkId::new("z_shape", span), &span, |b, _| {
            let dp = PatternDp::new(&g, PatternMode::ZShape);
            b.iter(|| black_box(dp.route_net(&tree)));
        });
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    // The selection technique's effect on a single medium vs large net.
    let g = graph(128, 10);
    let mut group = c.benchmark_group("selection");
    let sel = SelectionThresholds::new(10, 50);
    for (label, span) in [("small", 6u16), ("medium", 30), ("large", 100)] {
        let tree = SteinerBuilder::new().build(&two_pin_net(span));
        group.bench_function(BenchmarkId::new("hybrid_selected", label), |b| {
            let dp = PatternDp::new(&g, PatternMode::Hybrid(sel));
            b.iter(|| black_box(dp.route_net(&tree)));
        });
    }
    group.finish();
}

fn bench_multi_pin(c: &mut Criterion) {
    let g = graph(96, 10);
    let mut group = c.benchmark_group("multi_pin_dp");
    for pins in [3usize, 8, 16] {
        let net = Net::new(
            NetId(0),
            "bench",
            (0..pins)
                .map(|i| {
                    let t = i as u16;
                    Pin::new(Point2::new((t * 37) % 90 + 1, (t * 53) % 90 + 1), 0)
                })
                .collect(),
        );
        let tree = SteinerBuilder::new().build(&net);
        group.bench_with_input(BenchmarkId::new("l_shape", pins), &pins, |b, _| {
            let dp = PatternDp::new(&g, PatternMode::LShape);
            b.iter(|| black_box(dp.route_net(&tree)));
        });
    }
    group.finish();
}

fn bench_parallel_launch(c: &mut Criterion) {
    // One simulated-device launch routing a conflict-free batch of 64
    // nets, serial host execution vs the worker pool. The modelled device
    // time is identical in both; only wall-clock differs.
    use fastgr_gpu::{Device, DeviceConfig};

    let g = graph(96, 10);
    let trees: Vec<_> = (0..64u16)
        .map(|i| {
            let net = Net::new(
                NetId(u32::from(i)),
                "bench",
                vec![
                    Pin::new(Point2::new((i * 31) % 90 + 1, (i * 17) % 90 + 1), 0),
                    Pin::new(Point2::new((i * 53) % 90 + 1, (i * 41) % 90 + 1), 0),
                ],
            );
            SteinerBuilder::new().build(&net)
        })
        .collect();
    let mut group = c.benchmark_group("device_launch");
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("hybrid_batch64", workers),
            &workers,
            |b, &w| {
                let dp = PatternDp::new(&g, PatternMode::HybridAll);
                let mut device = Device::new(DeviceConfig::rtx3090_like().with_host_workers(w));
                b.iter(|| {
                    device.launch("pattern", trees.len(), |t| {
                        black_box(dp.route_net(&trees[t]).expect("routable")).profile
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_selection,
    bench_multi_pin,
    bench_parallel_launch
);
criterion_main!(benches);
